"""Serving-layer chaos benchmark: goodput, latency, and zero wrong
results under fault injection, overload, and backend failure.

Standalone (argparse, not pytest) so CI and developers can run it at any
scale and get a machine-readable JSON verdict:

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --scale 13 --queries 10000 --budget 64m --out BENCH_PR9.json

Four phases over one published RMAT snapshot:

* **fault-free** — closed-loop multi-tenant clients drive a mixed
  bfs/sssp/components/triangles workload; every result is checked
  against the precomputed direct-call answer on the same snapshot.
  This sets the goodput baseline.
* **chaos** — the same workload with ``serve.exec`` faults armed
  (probabilistic ``OutOfMemory`` on query attempts).  Retries with
  seeded backoff must absorb the faults: the acceptance criteria are
  **zero wrong results** and goodput >= ``--min-goodput`` (default 0.9)
  of the fault-free baseline.  The two phases run as *interleaved
  rounds* (fault-free block, chaos block, repeat) so slow environmental
  drift — CPU throttling under sustained load, allocator growth —
  cancels out of the ratio instead of being billed to fault handling.
* **overload** — an open-loop burst far past queue capacity onto a
  throttled server; the bounded admission queue must shed with
  ``Overloaded`` (never hang or grow unboundedly) while every admitted
  request still returns the exact answer.
* **breaker** — a deliberately broken primary backend: queries must
  transparently fail over (correct answers throughout), the breaker
  must trip open, and after the backend heals half-open probes must
  restore it.

Peak RSS (VmHWM delta over the fault-free + chaos serving phases) must
stay within ``--budget * --rss-factor``; every request runs under a
per-request governor context carrying that budget.  The serving fallback
chain is ``("scipy", "reference")`` — sparse first — because the dense
reference backend materializes n-squared intermediates (512 MiB at
scale 13), which is exactly what a production large-graph deployment
would avoid; the overload and breaker phases that deliberately drive
the server into degraded regimes run after the RSS envelope is read.
"""

from __future__ import annotations

import argparse
import json
import threading
import time

_SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_bytes(text: str) -> int:
    text = text.strip().lower()
    scale = 1
    if text and text[-1] in _SUFFIX:
        scale = _SUFFIX[text[-1]]
        text = text[:-1]
    return int(text) * scale


def peak_rss_bytes() -> int:
    """VmHWM (the process peak RSS high-water mark) in bytes."""
    with open("/proc/self/status", encoding="ascii") as f:
        for line in f:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) << 10
    raise RuntimeError("VmHWM not found in /proc/self/status")


def rmat_edges(scale: int, edge_factor: int, seed: int):
    import numpy as np

    a, b, c = 0.57, 0.19, 0.19
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        right = (r >= a) & (r < a + b)
        lower = (r >= a + b) & (r < a + b + c)
        both = r >= a + b + c
        bit = np.int64(1 << level)
        rows += bit * (lower | both)
        cols += bit * (right | both)
    off = rows != cols
    return n, rows[off], cols[off]


# --------------------------------------------------------------------------
# workload
# --------------------------------------------------------------------------

def build_workload(snapshot, sources, rng):
    """The mixed query set and its precomputed direct-call answers.

    Returns (jobs, expected): jobs is a list of (algo, params, key);
    expected maps key -> the exact answer a direct call produces on the
    published snapshot.  Serving the same snapshot must reproduce these
    bit-for-bit — any mismatch is a wrong result.
    """
    from repro.lagraph import bfs, connected_components, sssp, triangle_count

    expected = {}
    for s in sources:
        expected[("bfs", s)] = bfs(int(s), snapshot)[0]
        expected[("sssp", s)] = sssp(int(s), snapshot)
    expected[("components",)] = connected_components(snapshot)
    expected[("triangles",)] = triangle_count(snapshot)

    def draw():
        r = rng.random()
        s = int(sources[rng.integers(0, len(sources))])
        if r < 0.40:
            return ("bfs", {"source": s}, ("bfs", s))
        if r < 0.70:
            return ("sssp", {"source": s}, ("sssp", s))
        if r < 0.90:
            return ("components", {}, ("components",))
        return ("triangles", {}, ("triangles",))

    return draw, expected


def check(value, want) -> bool:
    if isinstance(want, (int, float)):
        return value == want
    return value.isequal(want)


def run_phase(server, draw, expected, queries, tenants, clients):
    """Closed-loop clients: each submits synchronously, so the queue
    stays shallow and goodput measures the serving path, not shedding."""
    import numpy as np

    lock = threading.Lock()
    stats = {"ok": 0, "wrong": 0, "failed": 0, "retries": 0, "failovers": 0}
    exec_ms, e2e_ms, wait_ms = [], [], []
    remaining = [queries]  # shared work counter: no per-client stragglers

    def client(k):
        tenant = f"tenant{k % tenants}"
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
                algo, params, key = draw()
            t = server.submit(algo, graph="g", tenant=tenant, **params)
            try:
                value = t.result(timeout=300)
            except Exception:
                with lock:
                    stats["failed"] += 1
                continue
            ok = check(value, expected[key])
            with lock:
                stats["ok" if ok else "wrong"] += 1
                stats["retries"] += t.retries
                stats["failovers"] += t.failovers
                exec_ms.append(t.exec_s * 1e3)
                e2e_ms.append((t.t_done - t.t_submit) * 1e3)
                wait_ms.append(t.queue_wait_s * 1e3)

    threads = [threading.Thread(target=client, args=(k,))
               for k in range(clients)]
    t0 = time.perf_counter()
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    elapsed = time.perf_counter() - t0

    return {
        **stats,
        "queries": queries,
        "elapsed_s": elapsed,
        "_exec_ms": exec_ms,
        "_e2e_ms": e2e_ms,
        "_wait_ms": wait_ms,
    }


def merge_rounds(parts) -> dict:
    """Pool per-round phase results into one summary with percentiles."""
    import numpy as np

    merged = {}
    for p in parts:
        for k, v in p.items():
            if k.startswith("_"):
                merged.setdefault(k, []).extend(v)
            else:
                merged[k] = merged.get(k, 0) + v

    def pct(xs, q):
        return float(np.percentile(xs, q)) if xs else 0.0

    exec_ms = merged.pop("_exec_ms", [])
    e2e_ms = merged.pop("_e2e_ms", [])
    wait_ms = merged.pop("_wait_ms", [])
    elapsed = merged["elapsed_s"]
    merged.update(
        goodput_qps=merged["ok"] / elapsed if elapsed else 0.0,
        exec_p50_ms=pct(exec_ms, 50),
        exec_p99_ms=pct(exec_ms, 99),
        e2e_p50_ms=pct(e2e_ms, 50),
        e2e_p99_ms=pct(e2e_ms, 99),
        queue_wait_p50_ms=pct(wait_ms, 50),
        queue_wait_p99_ms=pct(wait_ms, 99),
    )
    return merged


def run_overload(n, src, dst, expected, sources, queries, budget) -> dict:
    """Open-loop burst onto a deliberately throttled server: the bounded
    queue must shed rather than hang, and the survivors stay exact."""
    from repro.serve import GraphServer, Overloaded

    with GraphServer(workers=2, queue_depth=32, deadline_s=None,
                     memory_budget=budget,
                     fallbacks=("scipy", "reference")) as srv:
        _serve_graph(srv, n, src, dst)
        tickets, shed_reasons = [], {}
        t0 = time.perf_counter()
        for i in range(queries):
            try:
                tickets.append(srv.submit(
                    "bfs", graph="g", tenant=f"tenant{i % 4}",
                    source=int(sources[i % len(sources)]),
                ))
            except Overloaded as exc:
                shed_reasons[exc.reason] = shed_reasons.get(exc.reason, 0) + 1
        submit_elapsed = time.perf_counter() - t0
        wrong = 0
        for t in tickets:
            if not check(t.result(timeout=300),
                         expected[("bfs", t.params["source"])]):
                wrong += 1
        shed = sum(shed_reasons.values())
        return {
            "submitted": queries,
            "admitted": len(tickets),
            "shed": shed,
            "shed_reasons": shed_reasons,
            "wrong": wrong,
            "submit_elapsed_s": submit_elapsed,
            "max_depth_bound": 64,  # soft cap: < 2 * queue_depth
            "queue_bounded": bool(shed > 0),
        }


def run_breaker(n, src, dst, expected, sources, budget) -> dict:
    """A broken primary backend: transparent fallback, breaker trip,
    half-open recovery once it heals."""
    from repro.graphblas import backends
    from repro.graphblas.errors import OutOfMemory
    from repro.graphblas.plan import TABLE1_OPS
    from repro.serve import GraphServer

    state = {"broken": True}

    class ChaosBackend(backends.KernelBackend):
        name = "chaos"
        fallback = None

        def __init__(self):
            inner = backends.get_backend("optimized")
            for op in TABLE1_OPS:
                setattr(self, op, self._wrap(getattr(inner, op)))

        @staticmethod
        def _wrap(inner_op):
            def call(plan):
                if state["broken"]:
                    raise OutOfMemory("chaos backend down")
                return inner_op(plan)
            return call

    backends.register_backend("chaos", ChaosBackend, replace=True)
    with GraphServer(workers=2, deadline_s=None, memory_budget=budget,
                     backend="chaos", fallbacks=("scipy", "reference"),
                     attempts=1, breaker_threshold=3, breaker_reset_s=0.2,
                     breaker_probes=2) as srv:
        _serve_graph(srv, n, src, dst)
        wrong = fell_back = 0
        for i in range(10):  # broken phase: every query fails over
            t = srv.submit("bfs", graph="g",
                           source=int(sources[i % len(sources)]))
            if not check(t.result(300), expected[("bfs", t.params["source"])]):
                wrong += 1
            if t.backend != "chaos":
                fell_back += 1
        tripped = srv.stats()["breakers"]["chaos"]["state"] == "open"
        state["broken"] = False
        time.sleep(0.3)  # past the reset timeout: half-open probing
        restored = 0
        for i in range(8):
            t = srv.submit("bfs", graph="g",
                           source=int(sources[i % len(sources)]))
            if not check(t.result(300), expected[("bfs", t.params["source"])]):
                wrong += 1
            if t.backend == "chaos":
                restored += 1
        snap = srv.stats()["breakers"]["chaos"]
        return {
            "wrong": wrong,
            "fell_back": fell_back,
            "tripped": bool(tripped),
            "opened_total": snap["opened_total"],
            "probes_total": snap["probes_total"],
            "restored_queries": restored,
            "closed_after_recovery": snap["state"] == "closed",
        }


def _serve_graph(srv, n, src, dst):
    import numpy as np

    from repro.stream import GraphStream

    stream = GraphStream(n, width=1e18)
    srv.add_graph("g", stream=stream)
    srv.ingest("g", src, dst, np.zeros(src.size))
    srv.publish("g")


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=13,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--queries", type=int, default=10000,
                        help="total queries across all phases")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=12,
                        help="closed-loop client threads")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--sources", type=int, default=8,
                        help="distinct bfs/sssp source vertices")
    parser.add_argument("--rounds", type=int, default=4,
                        help="interleaved fault-free/chaos round pairs")
    parser.add_argument("--fault-probability", type=float, default=0.05,
                        help="serve.exec OutOfMemory probability (chaos)")
    parser.add_argument("--budget", default="64m",
                        help="per-request governor budget and the "
                             "peak-RSS envelope (k/m/g suffixes)")
    parser.add_argument("--rss-factor", type=float, default=1.5)
    parser.add_argument("--min-goodput", type=float, default=0.9,
                        help="chaos goodput floor, as a fraction of the "
                             "fault-free baseline")
    parser.add_argument("--out", default="BENCH_PR9.json")
    args = parser.parse_args(argv)

    import numpy as np

    from repro.graphblas import faults
    from repro.serve import GraphServer

    budget = parse_bytes(args.budget)
    n, src, dst = rmat_edges(args.scale, args.edge_factor, seed=9)
    # phase split: 40% fault-free, 40% chaos, 20% overload burst
    q_base = (args.queries * 2) // 5
    q_burst = args.queries - 2 * q_base

    results = {
        "scale": args.scale,
        "edge_factor": args.edge_factor,
        "n": int(n),
        "edges": int(src.size),
        "queries": args.queries,
        "workers": args.workers,
        "clients": args.clients,
        "tenants": args.tenants,
        "fault_probability": args.fault_probability,
        "budget": args.budget,
        "budget_bytes": budget,
    }

    with GraphServer(workers=args.workers, queue_depth=256,
                     deadline_s=None, memory_budget=budget,
                     fallbacks=("scipy", "reference")) as srv:
        _serve_graph(srv, n, src, dst)
        snapshot = srv.snapshot("g")
        rng = np.random.default_rng(17)
        # sources with at least one outgoing edge, so bfs has work to do
        sources = np.unique(src)[:args.sources]
        draw, expected = build_workload(snapshot, sources, rng)

        # unmeasured warm-up so the first measured block is not penalised
        # for first-touch costs (allocator growth, cold caches)
        warm = max(50, q_base // 10)
        run_phase(srv, draw, expected, warm, args.tenants, args.clients)
        results["warmup_queries"] = warm

        baseline_rss = peak_rss_bytes()

        # interleaved rounds: drift hits both phases equally
        rounds = max(1, min(args.rounds, q_base // max(1, args.clients)))
        ff_parts, ch_parts = [], []
        for r in range(rounds):
            block = q_base // rounds + (1 if r < q_base % rounds else 0)
            ff_parts.append(run_phase(
                srv, draw, expected, block, args.tenants, args.clients))
            with faults.inject("serve.exec",
                               probability=args.fault_probability,
                               seed=23 + r, max_fires=None) as plan:
                part = run_phase(
                    srv, draw, expected, block, args.tenants, args.clients)
            part["faults_fired"] = plan.fires
            ch_parts.append(part)

        results["fault_free"] = ff = merge_rounds(ff_parts)
        results["chaos"] = ch = merge_rounds(ch_parts)
        results["rounds"] = rounds
        print(f"fault-free: {ff['ok']}/{ff['queries']} ok, "
              f"{ff['goodput_qps']:.0f} q/s, "
              f"e2e p50 {ff['e2e_p50_ms']:.1f} ms / "
              f"p99 {ff['e2e_p99_ms']:.1f} ms")
        ratio = (ch["goodput_qps"] / ff["goodput_qps"]
                 if ff["goodput_qps"] else 0.0)
        ch["goodput_ratio"] = ratio
        print(f"chaos: {ch['ok']}/{ch['queries']} ok, "
              f"{ch['faults_fired']} faults fired, {ch['retries']} retries, "
              f"{ch['goodput_qps']:.0f} q/s "
              f"({ratio:.1%} of fault-free), "
              f"e2e p99 {ch['e2e_p99_ms']:.1f} ms")

        serve_stats = srv.stats()
        results["server"] = {
            "outcomes": serve_stats["outcomes"],
            "admitted": serve_stats["admitted"],
            "breakers": serve_stats["breakers"],
        }
        # the RSS envelope covers the 10k-query goodput phases; the
        # overload/breaker phases below intentionally enter degraded
        # regimes (VmHWM is monotonic, so read it here)
        goodput_peak_rss = peak_rss_bytes()

    results["overload"] = ov = run_overload(
        n, src, dst, expected, sources, q_burst, budget)
    print(f"overload: {ov['admitted']} admitted / {ov['shed']} shed of "
          f"{ov['submitted']} burst-submitted ({ov['shed_reasons']}), "
          f"{ov['wrong']} wrong")

    results["breaker"] = br = run_breaker(
        n, src, dst, expected, sources, budget)
    print(f"breaker: tripped={br['tripped']}, {br['fell_back']} fallbacks, "
          f"{br['probes_total']} probes, "
          f"recovered={br['closed_after_recovery']}, {br['wrong']} wrong")

    rss_delta = goodput_peak_rss - baseline_rss
    results["rss"] = {
        "baseline_bytes": baseline_rss,
        "peak_delta_bytes": rss_delta,
        "envelope_bytes": int(budget * args.rss_factor),
        "within": bool(rss_delta <= budget * args.rss_factor),
    }
    print(f"peak RSS delta {rss_delta / (1 << 20):.1f} MiB over the "
          f"goodput phases vs envelope "
          f"{budget * args.rss_factor / (1 << 20):.0f} MiB: "
          f"{'WITHIN' if results['rss']['within'] else 'OVER'}")

    wrong_total = ff["wrong"] + ch["wrong"] + ov["wrong"] + br["wrong"]
    results["wrong_total"] = wrong_total

    # the artifact is written before the verdict so a failing run still
    # leaves its numbers behind for diagnosis
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.out}")

    assert wrong_total == 0, f"{wrong_total} wrong results"
    assert ch["failed"] == 0, f"{ch['failed']} queries failed under chaos"
    assert ratio >= args.min_goodput, (
        f"chaos goodput {ratio:.1%} below {args.min_goodput:.0%} floor"
    )
    assert ov["queue_bounded"], "overload burst never shed"
    assert br["tripped"] and br["closed_after_recovery"], (
        "breaker did not trip and recover"
    )
    assert results["rss"]["within"], "peak RSS exceeded the envelope"
    return results


if __name__ == "__main__":
    main()
