"""E5 — section IV: O(1) move-semantics import/export.

The paper's Discussion: exporting a CSC/CSR matrix should hand the three
arrays (Ap, Ai, Ax) to the caller in O(1) time with no new memory, versus
Omega(e) for GrB_extractTuples; the import is symmetric, and an export
followed by an import reconstructs the matrix perfectly.

Reproduction (shape): move export+import time stays flat as e grows while
the extractTuples+build path grows linearly; round trips are exact and
zero-copy (asserted via np.shares_memory).
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import random_matrix
from repro.graphblas import Matrix, export_matrix, import_matrix
from repro.harness import Table

SIZES = [10_000, 40_000, 160_000, 640_000]


def _matrix_with_e(e, seed=0):
    n = max(100, int(np.sqrt(e / 0.01)))
    A = random_matrix(n, n, e / (n * n), seed=seed)
    return A


def move_roundtrip(A):
    ex = export_matrix(A, "csr")
    return import_matrix(ex)


def copy_roundtrip(A):
    r, c, v = A.extract_tuples()  # Omega(e)
    B = Matrix(A.dtype, A.nrows, A.ncols)
    B.build(r, c, v, dup=None)  # Omega(e log e)
    return B


def test_e5_table(benchmark):
    def run():
        t = Table(
            "E5: move import/export vs extractTuples+build round trip",
            ["nvals", "move (s)", "copy (s)", "copy/move"],
        )
        for e in SIZES:
            A = _matrix_with_e(e)
            t_copy = wall(lambda: copy_roundtrip(A), repeat=2)

            def timed_move():
                nonlocal A
                B = move_roundtrip(A)
                A = B  # the handle moves; keep the chain alive

            t_move = wall(timed_move, repeat=3)
            t.add(A.nvals, t_move, t_copy, f"{t_copy / max(t_move, 1e-9):.0f}x")
        t.note("claim: export of a matching format is O(1); extractTuples is Omega(e)")
        emit(t, "e5_import_export")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e5_move_time_flat_copy_time_grows():
    small = _matrix_with_e(SIZES[0])
    big = _matrix_with_e(SIZES[-1])
    t_copy_small = wall(lambda: copy_roundtrip(small), repeat=3)
    t_copy_big = wall(lambda: copy_roundtrip(big), repeat=3)
    holder = {"m": small.dup()}

    def mv():
        holder["m"] = move_roundtrip(holder["m"])

    t_move_small = wall(mv, repeat=5)
    holder["m"] = big.dup()
    t_move_big = wall(mv, repeat=5)
    # copy grows ~linearly in e (64x entries); move must grow far slower
    assert t_copy_big > 5 * t_copy_small
    assert t_move_big < 5 * max(t_move_small, 1e-6)


def test_e5_perfect_reconstruction_and_zero_copy():
    A = _matrix_with_e(50_000, seed=3)
    expect = A.dup()
    vals_before = A.by_row().values
    ex = export_matrix(A, "csr")
    assert ex.Ax is vals_before  # O(1): ownership moved, nothing copied
    B = import_matrix(ex)
    assert np.shares_memory(B.by_row().values, vals_before)
    assert B.isequal(expect)  # "perfectly reconstructed"


@pytest.mark.parametrize("path", ["move", "copy"])
def test_bench_e5(benchmark, path):
    A = _matrix_with_e(100_000, seed=1)
    if path == "copy":
        benchmark(lambda: copy_roundtrip(A))
    else:
        holder = {"m": A}

        def mv():
            holder["m"] = move_roundtrip(holder["m"])

        benchmark(mv)
