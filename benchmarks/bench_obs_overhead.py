"""O1 — observability overhead: disabled, enabled, and fully traced.

ISSUE 7's acceptance gate: with observability *disabled* the Table-I
workload must run within noise of the plain-telemetry baseline (the
instrumented sites still pay exactly one ``if telemetry.ENABLED:``
module-attribute read — nothing new was added to the disabled path), and
the *enabled* cost (per-thread sharded counters + log2 histograms, no
collector, no events) must stay a small bounded multiple.

Three columns over the Table-I kernels:

* ``disabled`` — shipped state: no collector, no sink;
* ``metrics`` — ``obs.enable()`` only: every op feeds the process-wide
  registry (two dict writes per record on the owning thread's shard);
* ``metrics+explain`` — worst case: sink installed *and* per-plan events
  captured under ``telemetry.plan_capture`` with a collector attached.

Plus microbenchmarks of the disabled guard and one registry write, and a
machine-readable summary written to ``benchmarks/results/obs_overhead.json``
(the CI metrics-smoke leg asserts the budget from it; ``BENCH_PR7.json``
commits one run).
"""

import json
import math
import os
import time

import pytest

from _common import RESULTS_DIR, emit, wall
from repro import obs
from repro.generators import random_matrix, random_vector
from repro.graphblas import Matrix, Vector, telemetry
from repro.graphblas import operations as ops
from repro.harness import Table

N = 1500
DENSITY = 0.004

# the enabled-path budget asserted by CI.  Metrics cost is a constant
# per executed plan (a handful of shard writes plus the plan.done
# record), so the fair gate is two-sided: ops long enough for the
# constant to wash out must stay under the ratio, and µs-scale ops
# (transpose on a 1500² sparse matrix runs in ~15 µs) must keep the
# absolute per-op overhead bounded.
ENABLED_BUDGET_RATIO = 1.5
ENABLED_BUDGET_ABS_S = 50e-6


@pytest.fixture(scope="module")
def workload():
    A = random_matrix(N, N, DENSITY, seed=1)
    B = random_matrix(N, N, DENSITY, seed=2)
    u = random_vector(N, 0.05, seed=4)
    return A, B, u


def _cases(A, B, u):
    return {
        "mxm": lambda: ops.mxm(Matrix("FP64", N, N), A, B, "PLUS_TIMES"),
        "mxv": lambda: ops.mxv(Vector("FP64", N), A, u),
        "eWiseAdd": lambda: ops.ewise_add(Matrix("FP64", N, N), A, B, "PLUS"),
        "apply": lambda: ops.apply(Matrix("FP64", N, N), A, "AINV"),
        "reduce": lambda: ops.reduce_rowwise(Vector("FP64", N), A, "PLUS"),
        "transpose": lambda: ops.transpose(Matrix("FP64", N, N), A),
    }


def test_obs_overhead(benchmark, workload):
    """Disabled vs metrics-enabled vs fully-traced Table-I kernels."""
    A, B, u = workload

    def run():
        obs.reset()
        t = Table(
            "Observability overhead "
            f"(n={N}, density={DENSITY}; seconds, best of 3)",
            ["operation", "disabled", "metrics", "metrics+explain",
             "metrics/disabled"],
        )
        summary = {"n": N, "density": DENSITY, "ops": {}}
        ratios = []
        for name, fn in _cases(A, B, u).items():
            assert not telemetry.ENABLED
            off = wall(fn, repeat=3)

            obs.enable()
            on = wall(fn, repeat=3)

            with telemetry.plan_capture():
                with telemetry.collect():
                    traced = wall(fn, repeat=3)
            obs.disable()

            ratio = on / off
            ratios.append(ratio)
            t.add(name, f"{off:.6f}", f"{on:.6f}", f"{traced:.6f}",
                  f"{ratio:.3f}")
            summary["ops"][name] = {
                "disabled_s": off, "metrics_s": on, "traced_s": traced,
                "metrics_ratio": ratio,
            }

        # microbenchmarks: the disabled guard and one registry write
        reps = 1_000_000
        t0 = time.perf_counter()
        for _ in range(reps):
            if telemetry.ENABLED:
                telemetry.tally("guard", calls=1)
        per_guard = (time.perf_counter() - t0) / reps

        reg = obs.registry()
        reps = 200_000
        t0 = time.perf_counter()
        for _ in range(reps):
            reg.counter_inc("bench_total", 1, {"op": "mxm"})
            reg.observe("bench_seconds", 1e-4, {"op": "mxm"})
        per_write = (time.perf_counter() - t0) / reps
        obs.reset()

        t.add("guard (1e6 calls)", f"{per_guard * 1e9:.1f} ns", "-", "-", "-")
        t.add("counter+observe", "-", f"{per_write * 1e9:.1f} ns", "-", "-")
        t.note("metrics column = sharded registry writes, no collector")
        emit(t, "obs_overhead")

        summary["guard_ns"] = per_guard * 1e9
        summary["registry_write_ns"] = per_write * 1e9
        summary["metrics_ratio_worst"] = max(ratios)
        summary["metrics_ratio_geomean"] = math.exp(
            sum(math.log(r) for r in ratios) / len(ratios)
        )
        summary["budget_ratio"] = ENABLED_BUDGET_RATIO
        summary["budget_abs_s"] = ENABLED_BUDGET_ABS_S
        summary["within_budget"] = all(
            o["metrics_ratio"] <= ENABLED_BUDGET_RATIO
            or o["metrics_s"] - o["disabled_s"] <= ENABLED_BUDGET_ABS_S
            for o in summary["ops"].values()
        )
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, "obs_overhead.json"), "w",
                  encoding="utf-8") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
        assert summary["within_budget"], (
            f"metrics-enabled overhead exceeds {ENABLED_BUDGET_RATIO}x "
            f"(or {ENABLED_BUDGET_ABS_S * 1e6:.0f}µs absolute) budget: "
            f"{summary['ops']}"
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
