"""T1 — telemetry wiring overhead when disabled.

The telemetry subsystem (:mod:`repro.graphblas.telemetry`) threads counters,
timers and decision events through every Table-I operation.  Like the fault
harness it rides the module-attribute fast path: with no collector active,
each operation pays one ``if telemetry.ENABLED:`` read (plus one decorator
frame on the instrumented entry points) and nothing else.  This bench
quantifies the claim two ways:

* the Table-I workload timed with telemetry in its shipped state (disabled)
  versus actively collecting (counters + decision events, burble off) —
  the enabled column bounds the cost of turning diagnostics on;
* a microbenchmark of the disabled guard itself.

Acceptance (ISSUE 2): the disabled column must sit within noise of the
pre-telemetry baseline — the wiring is unmeasurable next to numpy kernels.
"""

import time

import pytest

from _common import emit, wall
from repro.generators import random_matrix, random_vector
from repro.graphblas import Matrix, Vector, telemetry
from repro.graphblas import operations as ops
from repro.harness import Table

N = 1500
DENSITY = 0.004


@pytest.fixture(scope="module")
def workload():
    A = random_matrix(N, N, DENSITY, seed=1)
    B = random_matrix(N, N, DENSITY, seed=2)
    u = random_vector(N, 0.05, seed=4)
    return A, B, u


def _cases(A, B, u):
    return {
        "mxm": lambda: ops.mxm(Matrix("FP64", N, N), A, B, "PLUS_TIMES"),
        "mxv": lambda: ops.mxv(Vector("FP64", N), A, u),
        "eWiseAdd": lambda: ops.ewise_add(Matrix("FP64", N, N), A, B, "PLUS"),
        "apply": lambda: ops.apply(Matrix("FP64", N, N), A, "AINV"),
        "reduce": lambda: ops.reduce_rowwise(Vector("FP64", N), A, "PLUS"),
        "transpose": lambda: ops.transpose(Matrix("FP64", N, N), A),
    }


def test_disabled_overhead(benchmark, workload):
    """Disabled telemetry vs collecting telemetry on Table-I kernels."""
    A, B, u = workload

    def run():
        t = Table(
            "Telemetry wiring overhead "
            f"(n={N}, density={DENSITY}; seconds, best of 3)",
            ["operation", "disabled", "collecting", "collecting/disabled"],
        )
        assert not telemetry.ENABLED
        for name, fn in _cases(A, B, u).items():
            off = wall(fn, repeat=3)
            with telemetry.collect():
                assert telemetry.ENABLED
                on = wall(fn, repeat=3)
            t.add(name, f"{off:.6f}", f"{on:.6f}", f"{on / off:.3f}")

        # the guard itself: one disabled check costs ~an attribute read
        reps = 1_000_000
        t0 = time.perf_counter()
        for _ in range(reps):
            if telemetry.ENABLED:
                telemetry.tally("guard", calls=1)
        per_guard = (time.perf_counter() - t0) / reps
        t.add("guard (1e6 calls)", f"{per_guard * 1e9:.1f} ns", "-", "-")
        t.note("disabled wiring is one module-attribute read per operation")
        emit(t, "telemetry_overhead")

    benchmark.pedantic(run, rounds=1, iterations=1)
