"""Engine-on vs engine-off: the PR's headline speedup measurement.

Standalone (argparse, not pytest) so CI and developers can run it at any
scale and get a machine-readable JSON verdict:

    PYTHONPATH=src python benchmarks/bench_parallel_engine.py \
        --scale 14 --workers 4 --out BENCH_PR5.json

Measures two hot paths on an undirected RMAT graph:

* ``mxm`` — ``C = A*A`` (PLUS_TIMES, Gustavson), where the engine's
  specialized kernels and composite-key sorting carry the win;
* pull-phase transposed ``mxv`` — ``w = A^T u`` with ``method="pull"``,
  where engine-off re-converts the matrix orientation on every call and
  engine-on reads the cached dual-format twin.

Engine-off runs first so the twin cache can never leak into the baseline.
"""

from __future__ import annotations

import argparse
import json
import time


def _best(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=14,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of-N wall clock per measurement")
    parser.add_argument("--out", default="BENCH_PR5.json")
    args = parser.parse_args(argv)

    from repro.generators import rmat_graph
    from repro.graphblas import Matrix, Vector, engine
    from repro.graphblas import operations as ops

    g = rmat_graph(args.scale, args.edge_factor, seed=7, kind="undirected")
    A = g.structure("FP64")
    A.wait()
    n, nvals = A.nrows, A.nvals
    print(f"RMAT scale {args.scale}: n={n}, nvals={nvals}, "
          f"workers={args.workers}")

    u = Vector("FP64", n)
    for k in range(0, n, 2):
        u.set_element(k, 1.0 + (k % 7))
    u.wait()

    def run_mxm():
        C = Matrix("FP64", n, n)
        ops.mxm(C, A, A, "PLUS_TIMES", method="gustavson")
        return C

    def run_mxv():
        w = Vector("FP64", n)
        ops.mxv(w, A, u, "PLUS_TIMES", method="pull", desc="T0")
        return w

    results = {
        "scale": args.scale,
        "edge_factor": args.edge_factor,
        "n": n,
        "nvals": nvals,
        "workers": args.workers,
        "repeat": args.repeat,
    }

    # -- baseline first: engine fully off, no caches to leak ---------------
    engine.reset()
    engine.set_engine(False)
    mxm_off = _best(run_mxm, args.repeat)
    mxv_off = _best(run_mxv, args.repeat)

    # -- engine on: specialized kernels + warm dual-format twin ------------
    engine.reset()
    engine.set_engine(True, workers=args.workers)
    run_mxv()  # warm the orientation twin once; steady-state is what BFS sees
    mxm_on = _best(run_mxm, args.repeat)
    mxv_on = _best(run_mxv, args.repeat)

    # the two sides must agree bit for bit before any timing is reported
    engine.set_engine(True, workers=args.workers)
    C_on = run_mxm()
    w_on = run_mxv()
    engine.set_engine(False)
    assert C_on.isequal(run_mxm()), "engine-on mxm diverged from engine-off"
    assert w_on.isequal(run_mxv()), "engine-on mxv diverged from engine-off"
    engine.set_engine(True)

    results["mxm"] = {
        "engine_on_s": mxm_on,
        "engine_off_s": mxm_off,
        "speedup": mxm_off / mxm_on,
        "ops_per_s_on": 1.0 / mxm_on,
        "ops_per_s_off": 1.0 / mxm_off,
    }
    results["mxv_pull"] = {
        "engine_on_s": mxv_on,
        "engine_off_s": mxv_off,
        "speedup": mxv_off / mxv_on,
        "ops_per_s_on": 1.0 / mxv_on,
        "ops_per_s_off": 1.0 / mxv_off,
    }

    for op in ("mxm", "mxv_pull"):
        r = results[op]
        print(f"{op}: on={r['engine_on_s']:.4f}s off={r['engine_off_s']:.4f}s "
              f"speedup={r['speedup']:.2f}x")

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return results


if __name__ == "__main__":
    main()
