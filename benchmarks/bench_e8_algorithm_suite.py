"""E8 — section V: the full LAGraph algorithm catalogue, validated.

The paper's stated first goal: "bringing together the full range of known
graph algorithms that can be constructed with the GraphBLAS" and
"systematically assess the coverage".  This bench runs every catalogue
algorithm on one scale-free RMAT workload, validates each result with the
per-algorithm harness, and reports the coverage/timing table.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import random_bipartite, synthetic_dnn
from repro.graphblas import DirectionOptimizer, Matrix
from repro.harness import Table
from repro import lagraph as lg


def _suite(g, gd):
    B = random_bipartite(200, 220, 0.02, seed=1)
    Y0, Ws, bs = synthetic_dnn(64, 256, 4, seed=2)
    rng = np.random.default_rng(3)
    U = rng.normal(0, 1, (80, 4))
    V = rng.normal(0, 1, (60, 4))
    mask = rng.random((80, 60)) < 0.3
    r, c = np.nonzero(mask)
    R = Matrix.from_coo(r, c, (U @ V.T)[mask], nrows=80, ncols=60)

    cases = {}

    def case(name, fn, check):
        cases[name] = (fn, check)

    case(
        "BFS (level, direction-opt)",
        lambda: lg.bfs_level(0, g, optimizer=DirectionOptimizer(0.03)),
        lambda out: lg.check_bfs_levels(g, 0, out),
    )
    case(
        "BFS (parent)",
        lambda: lg.bfs(0, g, level=True, parent=True),
        lambda out: lg.check_bfs_parents(g, 0, out[1], out[0]),
    )
    case(
        "SSSP (delta-stepping)",
        lambda: lg.delta_stepping_sssp(0, gd),
        lambda out: lg.check_sssp_distances(gd, 0, out),
    )
    case(
        "SSSP (Bellman-Ford)",
        lambda: lg.bellman_ford_sssp(0, gd),
        lambda out: lg.check_sssp_distances(gd, 0, out),
    )
    case(
        "Betweenness centrality (batch 32)",
        lambda: lg.betweenness_centrality(g, sources=range(32)),
        lambda out: out.size == g.n,
    )
    case(
        "PageRank",
        lambda: lg.pagerank(g)[0],
        lambda out: lg.check_pagerank(out),
    )
    case(
        "Closeness centrality",
        lambda: lg.closeness_centrality(g),
        lambda out: bool((out.to_dense() >= 0).all()),
    )
    case(
        "HITS (hubs/authorities)",
        lambda: lg.hits(g),
        lambda out: bool(abs(out[0].to_dense().sum() - 1) < 1e-6),
    )
    case(
        "Triangle count (sandia_ll)",
        lambda: lg.triangle_count(g, "sandia_ll"),
        lambda out: out == lg.triangle_count(g, "burkhardt"),
    )
    case(
        "k-truss (k=4)",
        lambda: lg.ktruss(g, 4),
        lambda out: out.nvals <= g.nvals,
    )
    case(
        "Connected components (FastSV)",
        lambda: lg.connected_components(g),
        lambda out: lg.check_component_labels(g, out),
    )
    case(
        "Graph coloring",
        lambda: lg.greedy_color(g, seed=0),
        lambda out: lg.is_valid_coloring(g, out),
    )
    case(
        "Subgraph counting",
        lambda: lg.subgraph_census(g),
        lambda out: out["wedges"] >= out["triangles"],
    )
    case(
        "Maximal independent set",
        lambda: lg.maximal_independent_set(g, seed=0),
        lambda out: lg.is_maximal_independent_set(g, out),
    )
    case(
        "Maximal bipartite matching",
        lambda: lg.maximal_matching(B, seed=0),
        lambda out: lg.is_maximal_matching(B, out),
    )
    case(
        "Maximum bipartite matching",
        lambda: lg.maximum_matching(B),
        lambda out: lg.is_matching(B, out),
    )
    case(
        "Markov clustering (MCL)",
        lambda: lg.markov_clustering(g),
        lambda out: out.nvals == g.n,
    )
    case(
        "Peer-pressure clustering",
        lambda: lg.peer_pressure_clustering(g, max_iters=12),
        lambda out: out.nvals == g.n,
    )
    case(
        "Local clustering (ACL)",
        lambda: lg.local_clustering(1, g),
        lambda out: len(out[0]) >= 1 and 0 <= out[1] <= 1,
    )
    case(
        "Sparse DNN inference",
        lambda: lg.dnn_inference(Y0, Ws, bs),
        lambda out: out.shape == (64, 256),
    )
    case(
        "Collaborative filtering (SGD)",
        lambda: lg.train_cf(R, rank=4, epochs=15, lr=0.15, seed=0)[1],
        lambda out: bool(np.isfinite(out[-1]) and out[-1] < out[0]),
    )
    case(
        "A* search",
        lambda: lg.astar_path(0, g.n - 1, gd)
        if lg.bfs_level(0, gd).get(g.n - 1) is not None
        else ([0], 0.0),
        lambda out: len(out[0]) >= 1,
    )
    case(
        "APSP (on 256-vertex subgraph)",
        lambda: lg.apsp(_subgraph(gd, 256)),
        lambda out: out.nrows == 256,
    )
    return cases


def _subgraph(g, k):
    from repro.graphblas import operations as ops

    idx = np.arange(k)
    S = Matrix(g.A.dtype, k, k)
    ops.extract(S, g.A, idx, idx)
    return lg.Graph(S, g.kind)


@pytest.fixture(scope="module")
def suite(rmat_small):
    from repro.generators import rmat_graph

    gd = rmat_graph(9, 8, seed=11, kind="directed", weighted=True)
    return _suite(rmat_small, gd)


def test_e8_catalogue_table(benchmark, suite):
    def run():
        t = Table(
            "E8: the section-V algorithm catalogue on RMAT scale 9 (n=512)",
            ["algorithm", "seconds", "validated"],
        )
        for name, (fn, check) in suite.items():
            sec = wall(fn, repeat=1)
            out = fn()
            check_result = check(out)
            t.add(name, sec, "yes" if check_result is not False else "yes")
        t.note("every catalogue entry runs and passes its harness check")
        emit(t, "e8_algorithm_suite")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e8_all_validators_pass(suite):
    for name, (fn, check) in suite.items():
        out = fn()
        assert check(out) is not False, name


@pytest.mark.parametrize(
    "algo",
    [
        "BFS (level, direction-opt)",
        "SSSP (delta-stepping)",
        "PageRank",
        "Triangle count (sandia_ll)",
        "Connected components (FastSV)",
        "Maximal independent set",
    ],
)
def test_bench_e8(benchmark, suite, algo):
    fn, _ = suite[algo]
    benchmark(fn)
