"""E2 — section II.A: hypersparse storage is O(e), not O(n + e).

Claim: "In the hypersparse form, the pointer array itself becomes sparse
... the space is reduced to O(e), so that matrices with enormous dimensions
can be created, as long as e << n."

Reproduction: at fixed e, CSR bytes grow linearly with n while HyperCSR
bytes stay flat; a 2^50-dimension matrix is constructed in microseconds.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.graphblas import Matrix
from repro.harness import Table

E = 1000
DIMS = [10_000, 100_000, 1_000_000, 10_000_000]


def _scatter_matrix(n, e=E, fmt="csr", seed=0):
    rng = np.random.default_rng(seed)
    r = rng.integers(0, n, e)
    c = rng.integers(0, n, e)
    A = Matrix.from_coo(r, c, np.ones(e), nrows=n, ncols=n, dup="FIRST")
    A.set_format(fmt)
    return A


def test_e2_table(benchmark):
    def run():
        t = Table(
            f"E2: storage bytes at fixed e={E} as dimension n grows",
            ["n", "CSR bytes", "HyperCSR bytes", "CSR/Hyper"],
        )
        for n in DIMS:
            csr = _scatter_matrix(n, fmt="csr").nbytes
            hyp = _scatter_matrix(n, fmt="hypercsr").nbytes
            t.add(n, csr, hyp, f"{csr / hyp:.1f}x")
        t.note("claim: CSR is O(n+e); hypersparse is O(e) (flat column)")
        emit(t, "e2_hypersparse")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e2_hyper_bytes_flat_csr_linear():
    hyper_bytes = [_scatter_matrix(n, fmt="hypercsr").nbytes for n in DIMS]
    csr_bytes = [_scatter_matrix(n, fmt="csr").nbytes for n in DIMS]
    # hypersparse: constant in n
    assert max(hyper_bytes) <= 1.01 * min(hyper_bytes)
    # CSR: dominated by the n-length pointer array
    assert csr_bytes[-1] > 100 * csr_bytes[0]
    assert csr_bytes[-1] > 8 * DIMS[-1]


def test_e2_enormous_dimensions_work():
    """2^50-dimensional matrix: create, update, multiply — all O(e)."""
    n = 1 << 50
    A = Matrix("FP64", n, n)
    A.set_element(123_456_789_012_345, 42, 1.5)
    assert A.format == "hypercsr"
    assert A.nvals == 1 and A.nbytes < 200
    B = Matrix.from_coo([42], [7], [2.0], nrows=n, ncols=n)
    from repro.graphblas import operations as ops

    C = Matrix("FP64", n, n)
    ops.mxm(C, A, B, "PLUS_TIMES")
    assert C[123_456_789_012_345, 7] == 3.0


def test_e2_creation_time_independent_of_dimension():
    t_small = wall(lambda: _scatter_matrix(DIMS[0], fmt="hypercsr"), repeat=3)
    t_huge = wall(lambda: Matrix.from_coo([1 << 40], [3], [1.0],
                                          nrows=1 << 50, ncols=1 << 50), repeat=3)
    assert t_huge < 50 * t_small  # no hidden O(n) allocation


@pytest.mark.parametrize("fmt", ["csr", "hypercsr"])
def test_bench_e2_build(benchmark, fmt):
    benchmark(_scatter_matrix, 1_000_000, E, fmt)
