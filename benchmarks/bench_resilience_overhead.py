"""R1 — fault-injection wiring overhead when disabled.

The fault harness (:mod:`repro.graphblas.faults`) threads named injection
points through every Table-I operation.  The design contract is that the
wiring is *free* when no fault is armed: each operation pays one
module-attribute read (``if faults.ENABLED:``) and nothing else.  This
bench quantifies that claim two ways:

* the Table-I workload timed with the harness in its shipped state
  (disabled) versus armed-but-never-firing (a zero-probability plan, the
  worst case that still executes the per-call bookkeeping);
* a microbenchmark of the guard itself.

Acceptance: the disabled column must sit within 2% of the armed column's
baseline noise — i.e. the guard is unmeasurable next to numpy kernels.
"""

import time

import pytest

from _common import emit, wall
from repro.generators import random_matrix, random_vector
from repro.graphblas import Matrix, Vector, faults
from repro.graphblas import operations as ops
from repro.harness import Table

N = 1500
DENSITY = 0.004


@pytest.fixture(scope="module")
def workload():
    A = random_matrix(N, N, DENSITY, seed=1)
    B = random_matrix(N, N, DENSITY, seed=2)
    u = random_vector(N, 0.05, seed=4)
    return A, B, u


def _cases(A, B, u):
    return {
        "mxm": lambda: ops.mxm(Matrix("FP64", N, N), A, B, "PLUS_TIMES"),
        "mxv": lambda: ops.mxv(Vector("FP64", N), A, u),
        "eWiseAdd": lambda: ops.ewise_add(Matrix("FP64", N, N), A, B, "PLUS"),
        "apply": lambda: ops.apply(Matrix("FP64", N, N), A, "AINV"),
        "reduce": lambda: ops.reduce_rowwise(Vector("FP64", N), A, "PLUS"),
        "transpose": lambda: ops.transpose(Matrix("FP64", N, N), A),
    }


def test_disabled_overhead(benchmark, workload):
    """Disabled harness vs armed-never-firing harness on Table-I kernels."""
    A, B, u = workload

    def run():
        t = Table(
            "Fault-injection wiring overhead "
            f"(n={N}, density={DENSITY}; seconds, best of 3)",
            ["operation", "disabled", "armed (p=0)", "armed/disabled"],
        )
        assert not faults.ENABLED
        for name, fn in _cases(A, B, u).items():
            off = wall(fn, repeat=3)
            with faults.inject("alloc", probability=0.0, seed=1):
                assert faults.ENABLED
                on = wall(fn, repeat=3)
            t.add(name, f"{off:.6f}", f"{on:.6f}", f"{on / off:.3f}")

        # the guard itself: one disabled trip() costs ~an attribute read
        reps = 1_000_000
        t0 = time.perf_counter()
        for _ in range(reps):
            if faults.ENABLED:
                faults.trip("alloc")
        per_guard = (time.perf_counter() - t0) / reps
        t.add("guard (1e6 calls)", f"{per_guard * 1e9:.1f} ns", "-", "-")
        t.note("disabled wiring is one module-attribute read per operation")
        emit(t, "resilience_overhead")

    benchmark.pedantic(run, rounds=1, iterations=1)
