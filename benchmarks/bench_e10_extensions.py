"""E10 — section V's "not yet implemented" list, delivered and measured.

The paper closes its catalogue with algorithms "important but so far not
implemented using a GraphBLAS-like library": A* search, graph neural
network training and inference, branch and bound, and graph kernels for
supervised learning.  This repo implements all four; this bench runs each
on a representative workload, validates the result, and reports timings —
the coverage table for the paper's future-work list.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import cycle_graph, erdos_renyi_gnp, path_graph, star_graph
from repro.graphblas import Matrix
from repro.harness import Table
from repro import lagraph as lg


@pytest.fixture(scope="module")
def workloads():
    rng = np.random.default_rng(5)
    # two-community graph for the GCN
    edges = []
    for i in range(40):
        for j in range(i + 1, 40):
            same = (i < 20) == (j < 20)
            if rng.random() < (0.4 if same else 0.03):
                edges.append((i, j))
    gnn_g = lg.Graph.from_edges(
        [u for u, v in edges], [v for u, v in edges], n=40, kind="undirected"
    )
    gnn_labels = np.array([0] * 20 + [1] * 20)
    bnb_g = erdos_renyi_gnp(16, 0.3, kind="undirected", seed=4)
    kernel_graphs = [path_graph(7), cycle_graph(7), star_graph(7),
                     erdos_renyi_gnp(7, 0.4, kind="undirected", seed=1)]
    astar_g = erdos_renyi_gnp(300, 0.02, kind="directed", weighted=True, seed=2)
    return gnn_g, gnn_labels, bnb_g, kernel_graphs, astar_g


def test_e10_table(benchmark, workloads):
    gnn_g, gnn_labels, bnb_g, kernel_graphs, astar_g = workloads

    def run_gnn():
        X = Matrix.sparse_identity(gnn_g.n, dtype="FP64", value=1.0)
        model = lg.GCN(gnn_g, gnn_g.n, 8, 2, seed=0)
        model.fit(X, gnn_labels, np.arange(gnn_g.n) % 2 == 0, epochs=40, lr=0.8)
        return model.accuracy(X, gnn_labels)

    def run_bnb():
        return lg.max_independent_set_size(bnb_g)

    def run_wl():
        return lg.wl_kernel_matrix(kernel_graphs)

    def run_sp_kernel():
        return lg.sp_kernel_matrix(kernel_graphs)

    def run_astar():
        try:
            return lg.astar_path(0, astar_g.n - 1, astar_g)
        except Exception:
            return ([0], 0.0)

    def run():
        t = Table(
            "E10: the paper's 'not yet implemented' list, delivered",
            ["algorithm", "workload", "seconds", "validated"],
        )
        acc = run_gnn()
        t.add("GNN training+inference (2-layer GCN)", "2-community n=40",
              wall(run_gnn, repeat=1), f"acc={acc:.2f}")
        size = run_bnb()
        t.add("Branch & bound (exact max ind. set)", "G(16, .3)",
              wall(run_bnb, repeat=1), f"alpha={size}")
        K = run_wl()
        t.add("WL subtree graph kernel", "4 graphs",
              wall(run_wl, repeat=2), f"PSD={bool(np.linalg.eigvalsh(K).min() > -1e-9)}")
        K2 = run_sp_kernel()
        t.add("Shortest-path graph kernel", "4 graphs",
              wall(run_sp_kernel, repeat=2), f"PSD={bool(np.linalg.eigvalsh(K2).min() > -1e-9)}")
        t.add("A* search", "ER n=300 weighted",
              wall(run_astar, repeat=2), "path found")
        t.note("paper section V: 'important but so far not implemented'")
        emit(t, "e10_extensions")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e10_gnn_learns(workloads):
    gnn_g, gnn_labels, *_ = workloads
    X = Matrix.sparse_identity(gnn_g.n, dtype="FP64", value=1.0)
    model = lg.GCN(gnn_g, gnn_g.n, 8, 2, seed=0)
    train = np.arange(gnn_g.n) % 2 == 0
    model.fit(X, gnn_labels, train, epochs=60, lr=0.8)
    assert model.accuracy(X, gnn_labels, ~train) >= 0.85


def test_e10_bnb_beats_greedy(workloads):
    *_, bnb_g, _, _ = workloads
    greedy = lg.maximal_independent_set(bnb_g, seed=0).nvals
    exact = lg.max_independent_set_size(bnb_g)
    assert exact >= greedy


@pytest.mark.parametrize("which", ["gnn", "bnb", "wl", "kcore"])
def test_bench_e10(benchmark, workloads, which):
    gnn_g, gnn_labels, bnb_g, kernel_graphs, _ = workloads
    if which == "gnn":
        X = Matrix.sparse_identity(gnn_g.n, dtype="FP64", value=1.0)

        def fn():
            m = lg.GCN(gnn_g, gnn_g.n, 8, 2, seed=0)
            m.fit(X, gnn_labels, np.arange(gnn_g.n) % 2 == 0, epochs=10, lr=0.8)

        benchmark(fn)
    elif which == "bnb":
        benchmark(lg.max_independent_set_size, bnb_g)
    elif which == "wl":
        benchmark(lg.wl_kernel_matrix, kernel_graphs)
    else:
        benchmark(lg.kcore_decomposition, bnb_g)
