"""Shared helpers for the benchmark harness.

Every bench reproduces one paper artifact (table, figure, or quantitative
claim — see DESIGN.md's per-experiment index) and emits its reproduction
table to stdout *and* to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can quote the measured output.

With ``pytest benchmarks --telemetry`` every emitted table also gets a
``<name>.telemetry.json`` sibling holding the thread's telemetry snapshot
(per-op counters, decision tallies, spans) accumulated since the previous
emit — the machine-readable record behind the human-readable table.
"""

from __future__ import annotations

import json
import os
import time

from repro.graphblas import telemetry
from repro.harness import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Flipped by the --telemetry pytest option (see conftest.py).
TELEMETRY = False


def emit(table: Table, name: str) -> None:
    """Print a reproduction table and persist it under benchmarks/results."""
    text = table.render()
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as f:
        f.write(text + "\n")
    if TELEMETRY and telemetry.active() is not None:
        snap = telemetry.snapshot()
        path = os.path.join(RESULTS_DIR, f"{name}.telemetry.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"bench": name, "telemetry": snap}, f, indent=2, sort_keys=True)
        telemetry.reset()  # each bench's snapshot covers only its own ops


def wall(fn, *args, repeat: int = 3, **kwargs) -> float:
    """Best-of-N wall-clock seconds for quick in-table measurements."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best
