"""Shared helpers for the benchmark harness.

Every bench reproduces one paper artifact (table, figure, or quantitative
claim — see DESIGN.md's per-experiment index) and emits its reproduction
table to stdout *and* to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can quote the measured output.
"""

from __future__ import annotations

import os
import time

from repro.harness import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(table: Table, name: str) -> None:
    """Print a reproduction table and persist it under benchmarks/results."""
    text = table.render()
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as f:
        f.write(text + "\n")


def wall(fn, *args, repeat: int = 3, **kwargs) -> float:
    """Best-of-N wall-clock seconds for quick in-table measurements."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best
