"""E7 — section II.A: terminal-monoid early exit in the dot product.

Claim: "a current prototype adds an early exit mechanism for the MIN, MAX,
OR, and AND monoids, where a dot product can terminate as soon as a
terminal value is found ... this will enable a fast direction-optimizing
BFS" — the pull step is a dot product over the OR monoid that can stop at
the first hit.

Reproduction: on adversarial long dense rows whose first inner product
term already yields OR's terminal ``true``, the terminal-aware dot kernel
beats an identical monoid stripped of its terminal annotation.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.graphblas import Matrix, compiled, make_monoid, make_semiring, telemetry
from repro.graphblas import operations as ops
from repro.graphblas.monoid import Monoid
from repro.graphblas.ops import binary
from repro.harness import Table

# LOR with and without the terminal annotation: same algebra, no early exit
LOR_TERMINAL = make_monoid("LOR", identity=False, terminal=True, name="lor_term")
LOR_NO_TERMINAL = make_monoid("LOR", identity=False, terminal=None, name="lor_noterm")
SR_TERM = make_semiring(LOR_TERMINAL, "LAND", name="lor_land_term")
SR_NOTERM = make_semiring(LOR_NO_TERMINAL, "LAND", name="lor_land_noterm")


def _adversarial(n_rows=64, width=200_000):
    """Rows whose very first column pairs hit: OR's terminal on term one."""
    rows = np.repeat(np.arange(n_rows), width)
    cols = np.tile(np.arange(width), n_rows)
    A = Matrix.from_coo(
        rows, cols, np.ones(rows.size, bool), nrows=n_rows, ncols=width, dtype=bool
    )
    B = Matrix.from_coo(
        np.arange(width),
        np.zeros(width, dtype=np.int64),
        np.ones(width, bool),
        nrows=width,
        ncols=1,
        dtype=bool,
    )
    mask = Matrix.from_coo(
        np.arange(n_rows),
        np.zeros(n_rows, dtype=np.int64),
        np.ones(n_rows, bool),
        nrows=n_rows,
        ncols=1,
        dtype=bool,
    )
    return A, B, mask


def _dot(A, B, mask, sr):
    C = Matrix("BOOL", A.nrows, B.ncols)
    ops.mxm(C, A, B, sr, mask=mask, desc="RS", method="dot")
    return C


def test_e7_results_identical():
    A, B, mask = _adversarial(16, 20_000)
    assert _dot(A, B, mask, SR_TERM).isequal(_dot(A, B, mask, SR_NOTERM))


def test_e7_table(benchmark):
    A, B, mask = _adversarial()

    def run():
        t = Table(
            "E7: OR-monoid early exit in masked dot products "
            f"({A.nrows} rows x {A.ncols} terms, first term hits)",
            ["kernel", "seconds"],
        )
        t_term = wall(lambda: _dot(A, B, mask, SR_TERM), repeat=3)
        t_noterm = wall(lambda: _dot(A, B, mask, SR_NOTERM), repeat=3)
        t.add("dot, terminal monoid (early exit)", t_term)
        t.add("dot, no terminal (full scan)", t_noterm)
        t.note(f"speedup {t_noterm / t_term:.1f}x on adversarial rows")
        emit(t, "e7_early_exit")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e7_early_exit_wins():
    A, B, mask = _adversarial()
    t_term = wall(lambda: _dot(A, B, mask, SR_TERM), repeat=3)
    t_noterm = wall(lambda: _dot(A, B, mask, SR_NOTERM), repeat=3)
    assert t_term < t_noterm / 2  # early exit must at least halve the scan


@pytest.mark.parametrize("kernel", ["terminal", "no-terminal"])
def test_bench_e7(benchmark, kernel):
    A, B, mask = _adversarial(32, 100_000)
    sr = SR_TERM if kernel == "terminal" else SR_NOTERM
    benchmark(_dot, A, B, mask, sr)


# -- PR10: the compiled tier's per-element exit vs the vectorized one ---------

def _dot_builtin(A, B, mask, backend):
    """Same adversarial workload over the *builtin* LOR_LAND (the
    compiled tier declines user-defined monoids, so the with/without-
    terminal pair above stays on the vectorized engine)."""
    C = Matrix("BOOL", A.nrows, B.ncols)
    ops.mxm(C, A, B, "LOR_LAND", mask=mask, desc="RS", method="dot",
            backend=backend)
    return C


@pytest.mark.skipif(not compiled.available(),
                    reason="no compiled toolchain (numba or cc) available")
def test_e7_compiled_table(benchmark):
    """Vectorized early exit (64-wide block granularity) vs the compiled
    scalar loop that bails on the exact terminal term, with the measured
    mean hit depth from the kernel's exit statistics."""
    A, B, mask = _adversarial()
    _dot_builtin(A, B, mask, "compiled")  # absorb the JIT build

    def run():
        t = Table(
            "E7b: vectorized vs compiled early exit, builtin LOR_LAND "
            f"({A.nrows} rows x {A.ncols} terms, first term hits)",
            ["kernel", "seconds"],
        )
        t_vec = wall(lambda: _dot_builtin(A, B, mask, "optimized"), repeat=3)
        t_cmp = wall(lambda: _dot_builtin(A, B, mask, "compiled"), repeat=3)
        with telemetry.collect() as col:
            _dot_builtin(A, B, mask, "compiled")
        exits = [e["args"] for e in col.events
                 if e["type"] == "decision"
                 and e["name"] == "compiled.early_exit"]
        ex = exits[-1] if exits else {}
        terminated = int(ex.get("terminated", 0))
        t.add("vectorized dot, block early exit", t_vec)
        t.add("compiled dot, per-element early exit", t_cmp)
        t.note(f"speedup {t_vec / t_cmp:.1f}x")
        if terminated:
            t.note(f"{terminated}/{ex.get('dots', 0)} dots terminated, "
                   f"mean hit depth "
                   f"{ex.get('depth_sum', 0) / terminated:.1f} of "
                   f"{A.ncols} terms")
        emit(t, "e7_early_exit_compiled")
        assert terminated > 0

    benchmark.pedantic(run, rounds=1, iterations=1)
