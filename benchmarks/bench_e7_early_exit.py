"""E7 — section II.A: terminal-monoid early exit in the dot product.

Claim: "a current prototype adds an early exit mechanism for the MIN, MAX,
OR, and AND monoids, where a dot product can terminate as soon as a
terminal value is found ... this will enable a fast direction-optimizing
BFS" — the pull step is a dot product over the OR monoid that can stop at
the first hit.

Reproduction: on adversarial long dense rows whose first inner product
term already yields OR's terminal ``true``, the terminal-aware dot kernel
beats an identical monoid stripped of its terminal annotation.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.graphblas import Matrix, make_monoid, make_semiring
from repro.graphblas import operations as ops
from repro.graphblas.monoid import Monoid
from repro.graphblas.ops import binary
from repro.harness import Table

# LOR with and without the terminal annotation: same algebra, no early exit
LOR_TERMINAL = make_monoid("LOR", identity=False, terminal=True, name="lor_term")
LOR_NO_TERMINAL = make_monoid("LOR", identity=False, terminal=None, name="lor_noterm")
SR_TERM = make_semiring(LOR_TERMINAL, "LAND", name="lor_land_term")
SR_NOTERM = make_semiring(LOR_NO_TERMINAL, "LAND", name="lor_land_noterm")


def _adversarial(n_rows=64, width=200_000):
    """Rows whose very first column pairs hit: OR's terminal on term one."""
    rows = np.repeat(np.arange(n_rows), width)
    cols = np.tile(np.arange(width), n_rows)
    A = Matrix.from_coo(
        rows, cols, np.ones(rows.size, bool), nrows=n_rows, ncols=width, dtype=bool
    )
    B = Matrix.from_coo(
        np.arange(width),
        np.zeros(width, dtype=np.int64),
        np.ones(width, bool),
        nrows=width,
        ncols=1,
        dtype=bool,
    )
    mask = Matrix.from_coo(
        np.arange(n_rows),
        np.zeros(n_rows, dtype=np.int64),
        np.ones(n_rows, bool),
        nrows=n_rows,
        ncols=1,
        dtype=bool,
    )
    return A, B, mask


def _dot(A, B, mask, sr):
    C = Matrix("BOOL", A.nrows, B.ncols)
    ops.mxm(C, A, B, sr, mask=mask, desc="RS", method="dot")
    return C


def test_e7_results_identical():
    A, B, mask = _adversarial(16, 20_000)
    assert _dot(A, B, mask, SR_TERM).isequal(_dot(A, B, mask, SR_NOTERM))


def test_e7_table(benchmark):
    A, B, mask = _adversarial()

    def run():
        t = Table(
            "E7: OR-monoid early exit in masked dot products "
            f"({A.nrows} rows x {A.ncols} terms, first term hits)",
            ["kernel", "seconds"],
        )
        t_term = wall(lambda: _dot(A, B, mask, SR_TERM), repeat=3)
        t_noterm = wall(lambda: _dot(A, B, mask, SR_NOTERM), repeat=3)
        t.add("dot, terminal monoid (early exit)", t_term)
        t.add("dot, no terminal (full scan)", t_noterm)
        t.note(f"speedup {t_noterm / t_term:.1f}x on adversarial rows")
        emit(t, "e7_early_exit")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e7_early_exit_wins():
    A, B, mask = _adversarial()
    t_term = wall(lambda: _dot(A, B, mask, SR_TERM), repeat=3)
    t_noterm = wall(lambda: _dot(A, B, mask, SR_NOTERM), repeat=3)
    assert t_term < t_noterm / 2  # early exit must at least halve the scan


@pytest.mark.parametrize("kernel", ["terminal", "no-terminal"])
def test_bench_e7(benchmark, kernel):
    A, B, mask = _adversarial(32, 100_000)
    sr = SR_TERM if kernel == "terminal" else SR_NOTERM
    benchmark(_dot, A, B, mask, sr)
