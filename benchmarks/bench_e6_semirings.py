"""E6 — section II.A: the built-in semiring census (960 / 600).

Claim: SuiteSparse's code generator expands into "the 960 unique semirings
supported by the built-in operators"; "using the built-in types and
operators from the GraphBLAS C API, 600 unique semirings can be
constructed."

Reproduction: enumerate both families from first principles, match the
totals exactly, and demonstrate usability by driving mxm through a
representative of every (monoid x op-class x domain-class) cell.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import random_matrix
from repro.graphblas import (
    Matrix,
    enumerate_builtin_semirings,
    semiring,
    semiring_census,
)
from repro.graphblas import operations as ops
from repro.harness import Table

PAPER_COUNTS = {"suitesparse": 960, "c-api": 600}


def test_e6_census_table(benchmark):
    def run():
        t = Table(
            "E6: built-in semiring census vs the paper's counts",
            ["family", "arithmetic", "comparison", "boolean", "total", "paper"],
        )
        for fam, paper in PAPER_COUNTS.items():
            c = semiring_census(fam)
            t.add(fam, c["arithmetic"], c["comparison"], c["boolean"],
                  c["total"], paper)
        t.note("960 = 17 ops x 4 monoids x 10 types + 6 cmp x 4 bool-monoids x 10"
               " + 10 bool ops x 4 bool-monoids")
        t.note("600 = same with the C API's 8 arithmetic multiply ops")
        emit(t, "e6_semirings")

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("family,expected", list(PAPER_COUNTS.items()))
def test_e6_census_matches_paper_exactly(family, expected):
    assert semiring_census(family)["total"] == expected


def test_e6_every_semiring_class_runs_mxm():
    """One mxm per distinct (monoid, mult-op) pair of the 960 family."""
    A = random_matrix(40, 40, 0.1, seed=0)
    B = random_matrix(40, 40, 0.1, seed=1)
    Ab = random_matrix(40, 40, 0.1, dtype=np.bool_, seed=2)
    seen = set()
    ran = 0
    for add, mult, dtype in enumerate_builtin_semirings("suitesparse"):
        key = (add, mult)
        if key in seen:
            continue
        seen.add(key)
        sr = semiring(f"{add}_{mult}")
        lhs = Ab if dtype.name == "BOOL" else A
        rhs = Ab if dtype.name == "BOOL" else B
        C = Matrix(sr.out_type(lhs.dtype, rhs.dtype), 40, 40)
        ops.mxm(C, lhs, rhs, sr)
        ran += 1
    assert ran == len(seen) >= 100  # every distinct algebraic kernel ran


def test_e6_timing_per_semiring_class(benchmark, rmat_small):
    A = rmat_small.structure("FP64")

    def run():
        t = Table(
            f"E6 detail: mxm time across representative semirings (n={A.nrows})",
            ["semiring", "seconds"],
        )
        for name in ("PLUS_TIMES", "MIN_PLUS", "MAX_MIN", "PLUS_ONEB",
                     "LOR_LAND", "MIN_FIRST", "ANY_SECOND"):
            sr = semiring(name)
            out = Matrix(sr.out_type(A.dtype, A.dtype), A.nrows, A.ncols)
            t.add(name, wall(lambda: ops.mxm(out, A, A, sr), repeat=2))
        emit(t, "e6_semiring_timings")

    benchmark.pedantic(run, rounds=1, iterations=1)
