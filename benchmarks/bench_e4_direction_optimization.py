"""E4 — section II.E / Figure 3: direction-optimized (push-pull) traversal.

GraphBLAST's key optimization, folded into GrB_mxv: push (SpMSpV) when the
frontier is sparse, pull (SpMV against the dense form) when it is dense,
switching on a density threshold with hysteresis.

Reproduction targets (shape):
* push wins at low frontier density, pull wins at high density, and the
  crossover sits near the threshold regime (per-density table);
* on a scale-free BFS, the auto policy tracks the better of push/pull and
  actually switches directions mid-traversal.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import random_vector
from repro.graphblas import DirectionOptimizer, Matrix, Vector
from repro.graphblas import operations as ops
from repro.harness import Table
from repro.lagraph.bfs import bfs_level

DENSITIES = [0.001, 0.01, 0.05, 0.2, 0.6]


def _mxv(A, u, method):
    w = Vector("FP64", A.nrows)
    ops.mxv(w, A, u, "PLUS_TIMES", method=method)
    return w


def test_e4_density_sweep_table(benchmark, rmat_medium):
    # GraphBLAST's dual-orientation storage: both CSR and CSC kept alive
    A = rmat_medium.structure("FP64").keep_both_orientations(True)
    A.by_col(), A.by_row()

    def run():
        t = Table(
            f"E4: push vs pull across frontier density (RMAT scale 11, n={A.nrows})",
            ["density", "push (s)", "pull (s)", "winner"],
        )
        for d in DENSITIES:
            u = random_vector(A.nrows, d, seed=int(d * 1e4))
            tp = wall(_mxv, A, u, "push", repeat=3)
            tl = wall(_mxv, A, u, "pull", repeat=3)
            t.add(d, tp, tl, "push" if tp < tl else "pull")
        t.note("claim (Beamer/GraphBLAST): push wins sparse, pull wins dense")
        emit(t, "e4_direction_optimization")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e4_push_wins_sparse_pull_wins_dense(rmat_medium):
    A = rmat_medium.structure("FP64").keep_both_orientations(True)
    A.by_col(), A.by_row()
    sparse_u = random_vector(A.nrows, 0.001, seed=1)
    dense_u = random_vector(A.nrows, 0.8, seed=2)
    t_push_sparse = wall(_mxv, A, sparse_u, "push", repeat=3)
    t_pull_sparse = wall(_mxv, A, sparse_u, "pull", repeat=3)
    t_push_dense = wall(_mxv, A, dense_u, "push", repeat=3)
    t_pull_dense = wall(_mxv, A, dense_u, "pull", repeat=3)
    assert t_push_sparse < t_pull_sparse  # sparse frontier: push wins
    assert t_pull_dense < 1.5 * t_push_dense  # dense frontier: pull competitive


def test_e4_bfs_auto_switches_and_tracks_best(rmat_medium):
    opt = DirectionOptimizer(threshold=0.03)
    t_auto = wall(lambda: bfs_level(0, rmat_medium, optimizer=DirectionOptimizer(0.03)), repeat=2)
    bfs_level(0, rmat_medium, optimizer=opt)  # capture history
    t_push = wall(lambda: bfs_level(0, rmat_medium, method="push"), repeat=2)
    t_pull = wall(lambda: bfs_level(0, rmat_medium, method="pull"), repeat=2)
    # the optimizer must actually use both directions on a scale-free BFS
    assert {"push", "pull"} <= set(opt.history)
    # and auto must not lose badly to the best fixed direction
    assert t_auto < 1.6 * min(t_push, t_pull)


def test_e4_per_level_direction_table(benchmark, rmat_medium):
    def run():
        opt = DirectionOptimizer(threshold=0.03)
        n = rmat_medium.n
        frontier = Vector("BOOL", n)
        frontier.set_element(0, True)
        levels = Vector("INT64", n)
        t = Table(
            "E4 detail: frontier density and chosen direction per BFS level",
            ["level", "frontier nvals", "density", "direction"],
        )
        depth = 0
        AT = rmat_medium.AT
        while frontier.nvals > 0:
            nv = frontier.nvals
            ops.assign(levels, depth, ops.ALL, mask=frontier, desc="S")
            ops.mxv(frontier, AT, frontier, "LOR_LAND", mask=levels,
                    desc="RSC", optimizer=opt)
            t.add(depth, nv, round(nv / n, 4), opt.history[-1])
            depth += 1
        t.note("the GraphBLAST rule: switch on threshold crossing, else keep")
        emit(t, "e4_per_level_directions")

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("method", ["push", "pull", "auto"])
def test_bench_e4_bfs(benchmark, rmat_medium, method):
    if method == "auto":
        benchmark(lambda: bfs_level(0, rmat_medium, optimizer=DirectionOptimizer(0.03)))
    else:
        benchmark(lambda: bfs_level(0, rmat_medium, method=method))
