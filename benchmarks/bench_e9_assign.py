"""E9 — section II.A: fast submatrix assignment.

Claim: "Submatrix assignment (C(I,J)=A) can be 100x faster than in MATLAB,
even when non-blocking mode is not exploited" — the point being that a
*vectorized* assign kernel beats element-at-a-time updates by orders of
magnitude.  Our MATLAB analogue is the per-element setElement loop in
blocking mode (each update reassembles the matrix, as interpreted MATLAB
effectively does).

Reproduction (shape): one GrB_assign call beats the element-wise blocking
loop by >= 2 orders of magnitude at moderate sizes, with identical results.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import random_matrix
from repro.graphblas import Matrix, blocking, nonblocking
from repro.graphblas import operations as ops
from repro.harness import Table

N = 3000


def _workload(k, seed=0):
    rng = np.random.default_rng(seed)
    C = random_matrix(N, N, 0.002, seed=seed)
    I = np.sort(rng.choice(N, size=k, replace=False))
    J = np.sort(rng.choice(N, size=k, replace=False))
    A = random_matrix(k, k, 0.05, seed=seed + 1)
    return C, I, J, A


def assign_one_call(C, I, J, A):
    out = C.dup()
    ops.assign(out, A, I, J)
    return out


def assign_elementwise_blocking(C, I, J, A):
    out = C.dup()
    ar, ac, av = A.extract_tuples()
    with blocking():
        # clear the region, then write entries, one at a time
        region_rows = set(I.tolist())
        region_cols = set(J.tolist())
        cr, cc, _ = out.extract_tuples()
        for i, j in zip(cr, cc):
            if int(i) in region_rows and int(j) in region_cols:
                out.remove_element(int(i), int(j))
        for i, j, v in zip(ar, ac, av):
            out.set_element(int(I[i]), int(J[j]), v)
    return out


def assign_elementwise_nonblocking(C, I, J, A):
    out = C.dup()
    ar, ac, av = A.extract_tuples()
    with nonblocking():
        region_rows = set(I.tolist())
        region_cols = set(J.tolist())
        cr, cc, _ = out.extract_tuples()
        for i, j in zip(cr, cc):
            if int(i) in region_rows and int(j) in region_cols:
                out.remove_element(int(i), int(j))
        for i, j, v in zip(ar, ac, av):
            out.set_element(int(I[i]), int(J[j]), v)
        out.wait()
    return out


def test_e9_results_identical():
    C, I, J, A = _workload(150)
    fast = assign_one_call(C, I, J, A)
    slow = assign_elementwise_blocking(C, I, J, A)
    lazy = assign_elementwise_nonblocking(C, I, J, A)
    assert fast.isequal(slow)
    assert fast.isequal(lazy)


def test_e9_table(benchmark):
    def run():
        t = Table(
            f"E9: submatrix assign C(I,J)=A on a {N}x{N} matrix",
            ["k (|I|=|J|)", "GrB_assign (s)", "per-element blocking (s)",
             "per-element nonblocking (s)", "assign speedup vs blocking"],
        )
        for k in (100, 300):
            C, I, J, A = _workload(k)
            tf = wall(assign_one_call, C, I, J, A, repeat=2)
            tb = wall(assign_elementwise_blocking, C, I, J, A, repeat=1)
            tn = wall(assign_elementwise_nonblocking, C, I, J, A, repeat=1)
            t.add(k, tf, tb, tn, f"{tb / tf:.0f}x")
        t.note("paper: vectorized assign ~100x over per-element updates")
        emit(t, "e9_assign")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e9_assign_is_orders_of_magnitude_faster():
    C, I, J, A = _workload(300)
    tf = wall(assign_one_call, C, I, J, A, repeat=2)
    tb = wall(assign_elementwise_blocking, C, I, J, A, repeat=1)
    assert tb / tf > 20  # conservative floor for the ~100x claim


@pytest.mark.parametrize("path", ["assign", "elementwise-nonblocking"])
def test_bench_e9(benchmark, path):
    C, I, J, A = _workload(200)
    fn = assign_one_call if path == "assign" else assign_elementwise_nonblocking
    benchmark(fn, C, I, J, A)
