"""E3 — section II.A: the three SpGEMM kernels and their masked variants.

SuiteSparse code-generates Gustavson, dot-product, and heap methods, "all
with masked variants".  The reproduction targets:

* all three methods produce identical results (asserted);
* with a *sparse output mask* (the masked-triangle-counting pattern), the
  masked dot method beats computing the full product and masking after —
  the structural win that motivates having several kernels;
* the heap method is the fidelity implementation (slowest here, as a
  Python-loop merge — no paper claim orders the three).
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.graphblas import Matrix, engine
from repro.graphblas import operations as ops
from repro.graphblas.descriptor import Descriptor
from repro.harness import Table

_RS = Descriptor(replace=True, structural_mask=True)


def _adjacency(g):
    A = Matrix("FP64", g.n, g.n)
    ops.select(A, g.structure("FP64"), "OFFDIAG")
    return A


def _run(A, method, mask=None):
    C = Matrix("FP64", A.nrows, A.ncols)
    ops.mxm(C, A, A, "PLUS_TIMES", mask=mask, desc=_RS if mask is not None else None,
            method=method)
    return C


def test_e3_methods_identical(rmat_small):
    A = _adjacency(rmat_small)
    full = [_run(A, m) for m in ("gustavson", "dot", "heap")]
    assert full[0].isequal(full[1]) and full[0].isequal(full[2])
    masked = [_run(A, m, mask=A) for m in ("gustavson", "dot", "heap")]
    assert masked[0].isequal(masked[1]) and masked[0].isequal(masked[2])


def test_e3_table(benchmark, rmat_medium):
    A = _adjacency(rmat_medium)

    def run():
        t = Table(
            f"E3: SpGEMM methods on A*A, RMAT scale 11 (n={A.nrows}, "
            f"nvals={A.nvals})",
            ["method", "mask", "seconds"],
        )
        for m in ("gustavson", "dot", "heap"):
            reps = 1 if m in ("heap", "dot") else 2
            t.add(m, "none", wall(_run, A, m, repeat=reps))
        for m in ("gustavson", "dot"):
            t.add(m, "A (structural)", wall(_run, A, m, mask=A, repeat=2))
        t.note("masked dot computes only the A-pattern entries of A*A")
        emit(t, "e3_spgemm_methods")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e3_masked_dot_beats_unmasked_when_mask_sparse(rmat_medium):
    """The masked variant's payoff: with mask nnz << output nnz, computing
    only masked entries (dot) is faster than the full product.

    Measured with the performance engine off: the claim compares the two
    *methods*, and the engine's specialized kernels accelerate the
    vectorized Gustavson expansion far more than the per-entry dot loop,
    which would turn this into a test of the engine rather than of the
    masked kernel's work bound.
    """
    A = _adjacency(rmat_medium)
    engine.set_engine(False)
    try:
        t_full = wall(_run, A, "gustavson", repeat=2)
        t_masked = wall(_run, A, "dot", mask=A, repeat=2)
    finally:
        engine.reset()
    # structural claim: the masked kernel must not be slower than computing
    # everything (it usually wins by a lot; keep the bound conservative)
    assert t_masked < 1.5 * t_full


@pytest.mark.parametrize("method", ["gustavson", "dot"])
@pytest.mark.parametrize("masked", [False, True])
def test_bench_e3(benchmark, rmat_small, method, masked):
    A = _adjacency(rmat_small)
    benchmark(_run, A, method, A if masked else None)
