"""T1 — Table I: every GraphBLAS operation, exercised and timed.

The paper's Table I is the mathematical inventory of the GraphBLAS
(mxm/mxv/vxm, eWiseMult/eWiseAdd, reduce, apply, transpose, extract,
assign).  This bench demonstrates the complete surface on one workload and
reports a timing row per operation — the reproduction is *coverage*, the
timings document the substrate.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import random_matrix, random_vector
from repro.graphblas import Matrix, Vector
from repro.graphblas import operations as ops
from repro.harness import Table

N = 1500
DENSITY = 0.004


@pytest.fixture(scope="module")
def workload():
    A = random_matrix(N, N, DENSITY, seed=1)
    B = random_matrix(N, N, DENSITY, seed=2)
    M = random_matrix(N, N, DENSITY, seed=3)
    u = random_vector(N, 0.05, seed=4)
    m = random_vector(N, 0.05, seed=5)
    return A, B, M, u, m


def _table1_cases(A, B, M, u, m):
    I = np.arange(0, N, 2)
    J = np.arange(0, N, 3)
    sub = random_matrix(I.size, J.size, DENSITY, seed=6)
    return {
        "mxm C<M> (+)= A(+.x)B": lambda: ops.mxm(
            Matrix("FP64", N, N), A, B, "PLUS_TIMES", mask=M, accum="PLUS"
        ),
        "mxv w (+)= A(+.x)u": lambda: ops.mxv(Vector("FP64", N), A, u),
        "vxm w (+)= u(+.x)A": lambda: ops.vxm(Vector("FP64", N), u, A),
        "eWiseMult C = A(x)B": lambda: ops.ewise_mult(
            Matrix("FP64", N, N), A, B, "TIMES"
        ),
        "eWiseAdd C = A(+)B": lambda: ops.ewise_add(
            Matrix("FP64", N, N), A, B, "PLUS"
        ),
        "reduce w = (+)_j A(:,j)": lambda: ops.reduce_rowwise(
            Vector("FP64", N), A, "PLUS"
        ),
        "reduce s = (+) A": lambda: ops.reduce_scalar(A, "PLUS"),
        "apply C = f(A)": lambda: ops.apply(Matrix("FP64", N, N), A, "AINV"),
        "apply w = f(u)": lambda: ops.apply(Vector("FP64", N), u, "ABS"),
        "select C = A(tril)": lambda: ops.select(Matrix("FP64", N, N), A, "TRIL"),
        "transpose C = A^T": lambda: ops.transpose(Matrix("FP64", N, N), A),
        "extract C = A(i,j)": lambda: ops.extract(
            Matrix("FP64", I.size, J.size), A, I, J
        ),
        "extract w = u(i)": lambda: ops.extract(Vector("FP64", I.size), u, I),
        "assign C(i,j) = A": lambda: ops.assign(M.dup(), sub, I, J),
        "assign w(i) = value": lambda: ops.assign(u.dup(), 1.0, I),
        "kronecker (small)": lambda: ops.kronecker(
            Matrix("FP64", 50 * 50, 50 * 50),
            random_matrix(50, 50, 0.02, seed=7),
            random_matrix(50, 50, 0.02, seed=8),
            "TIMES",
        ),
    }


def test_table1_operation_coverage(benchmark, workload):
    """Every Table-I operation runs on the workload; emit the timing table."""
    A, B, M, u, m = workload

    def run():
        t = Table(
            "Table I reproduction: the GraphBLAS operation set "
            f"(n={N}, density={DENSITY})",
            ["operation", "seconds"],
        )
        for name, fn in _table1_cases(A, B, M, u, m).items():
            t.add(name, wall(fn, repeat=2))
        t.note("paper artifact: operation inventory — reproduction is coverage")
        emit(t, "table1_operations")

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize(
    "opname",
    ["mxm", "mxv", "vxm", "ewise_add", "ewise_mult", "reduce", "apply", "transpose", "extract", "assign"],
)
def test_bench_table1(benchmark, workload, opname):
    A, B, M, u, m = workload
    cases = _table1_cases(A, B, M, u, m)
    key = {
        "mxm": "mxm C<M> (+)= A(+.x)B",
        "mxv": "mxv w (+)= A(+.x)u",
        "vxm": "vxm w (+)= u(+.x)A",
        "ewise_add": "eWiseAdd C = A(+)B",
        "ewise_mult": "eWiseMult C = A(x)B",
        "reduce": "reduce w = (+)_j A(:,j)",
        "apply": "apply C = f(A)",
        "transpose": "transpose C = A^T",
        "extract": "extract C = A(i,j)",
        "assign": "assign C(i,j) = A",
    }[opname]
    benchmark(cases[key])
