#!/usr/bin/env python3
"""Social-network analytics on a scale-free graph.

The paper's motivating data-science pipeline: generate a scale-free
(RMAT) "who-follows-whom" network, then answer the questions an analyst
asks — who is influential (PageRank, betweenness), how clustered is the
network (triangles, k-truss), and what communities exist (Markov
clustering, label propagation).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import lagraph as lg
from repro.generators import rmat_graph

SCALE = 9  # 512 users

print(f"Generating an RMAT scale-{SCALE} social network...")
g = rmat_graph(SCALE, 8, seed=42, kind="undirected")
g.enable_dual_storage()
print(f"  {g.n} users, {g.nedges} friendships")
deg = g.out_degree.to_dense()
print(f"  degree: max={deg.max()}, mean={deg.mean():.1f} (scale-free skew)")

# --- influence ------------------------------------------------------------
rank, iters = lg.pagerank(g)
top = np.argsort(-rank.to_dense())[:5]
print(f"\nTop-5 users by PageRank (converged in {iters} iterations):")
for u in top:
    print(f"  user {u:4d}  rank {rank.to_dense()[u]:.4f}  degree {deg[u]}")

bc = lg.betweenness_centrality(g, sources=range(0, g.n, 4))  # sampled BC
top_bc = np.argsort(-bc.to_dense())[:5]
print("Top-5 bridges by (sampled) betweenness:")
for u in top_bc:
    print(f"  user {u:4d}  bc {bc.to_dense()[u]:.1f}")

# --- cohesion ---------------------------------------------------------------
tri = lg.triangle_count(g)
wedges = lg.subgraph_census(g)["wedges"]
print(f"\nTriangles: {tri}; global clustering coefficient "
      f"{3 * tri / max(wedges, 1):.4f}")

rows = lg.all_ktruss(g)
print("k-truss decomposition (cohesive cores):")
for k, edges, vertices in rows[:6]:
    print(f"  {k}-truss: {edges} edges over {vertices} vertices")

# --- communities -------------------------------------------------------------
cc = lg.connected_components(g)
sizes = lg.component_sizes(cc)
giant = max(sizes.values())
print(f"\nConnected components: {len(sizes)} (giant component: {giant} users)")

labels = lg.markov_clustering(g, inflation=2.0)
_, lab_vals = labels.extract_tuples()
n_clusters = len(set(lab_vals.tolist()))
print(f"Markov clustering found {n_clusters} communities")

seed_user = int(top[0])
members, cond = lg.local_clustering(seed_user, g)
print(
    f"Local community of top user {seed_user}: {len(members)} members, "
    f"conductance {cond:.3f}"
)

# --- independent moderators ---------------------------------------------------
mis = lg.maximal_independent_set(g, seed=0)
assert lg.is_maximal_independent_set(g, mis)
print(f"\nA maximal independent 'moderator' set: {mis.nvals} users "
      "(no two are friends, everyone else has a moderator friend)")
