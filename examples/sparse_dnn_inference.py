#!/usr/bin/env python3
"""Sparse deep-neural-network inference on the GraphBLAS.

The paper (section V, ref [47]) highlights "deep neural network inference"
as a machine-learning workload already expressed with GraphBLAS-style
libraries — the MIT GraphChallenge sparse-DNN benchmark.  Every layer is
one chain of Table-I operations: mxm (feature propagation), apply (bias),
select (ReLU), apply (saturation clip).

Run:  python examples/sparse_dnn_inference.py
"""

import time

import numpy as np

from repro.generators import synthetic_dnn
from repro.lagraph import dnn_categories, dnn_inference

SAMPLES, NEURONS, LAYERS = 256, 1024, 12

print(
    f"Synthesizing a {LAYERS}-layer sparse DNN "
    f"({NEURONS} neurons/layer, fan-in 8) and {SAMPLES} sparse inputs..."
)
Y0, weights, biases = synthetic_dnn(
    SAMPLES, NEURONS, LAYERS, fan_in=8, input_density=0.1, seed=0
)
wvals = sum(W.nvals for W in weights)
print(f"  input nnz {Y0.nvals}; total weight nnz {wvals}")

t0 = time.perf_counter()
Y = dnn_inference(Y0, weights, biases)
elapsed = time.perf_counter() - t0

density = Y.nvals / (SAMPLES * NEURONS)
edges = Y0.nvals + wvals
print(f"\nInference: {elapsed*1e3:.1f} ms "
      f"({edges / elapsed / 1e6:.2f} M input-nnz/s)")
print(f"Output activations: nnz {Y.nvals} (density {density:.4f})")

cats = dnn_categories(Y)
print(f"GraphChallenge categories (samples with surviving signal): "
      f"{cats.size}/{SAMPLES}")

# layer-by-layer activation profile: watch ReLU sparsify the signal
print("\nPer-layer activation nnz:")
Yl = Y0
for l, (W, b) in enumerate(zip(weights, biases)):
    Yl = dnn_inference(Yl, [W], [b])
    bar = "#" * max(1, Yl.nvals // 800)
    print(f"  layer {l + 1:2d}: {Yl.nvals:7d} {bar}")

# sanity: running all layers at once equals running them one at a time
assert Yl.isequal(Y)
print("\nstacked == layered inference: exact")
