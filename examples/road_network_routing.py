#!/usr/bin/env python3
"""Route planning on a weighted road grid.

A navigation-style workload: a city grid with congestion-weighted streets.
Single-source distances come from delta-stepping over the (min, +)
semiring; point-to-point routing uses A* with a Manhattan-distance
heuristic (the paper lists A* among the algorithms GraphBLAS libraries
still owed an implementation — section V); a depot's service area is an
APSP slice.

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro import lagraph as lg
from repro.generators import grid_graph
from repro.graphblas import Matrix
from repro.graphblas import operations as ops

ROWS, COLS = 20, 30
rng = np.random.default_rng(7)

print(f"Building a {ROWS}x{COLS} road grid with congestion weights...")
base = grid_graph(ROWS, COLS)
# congestion: each street gets a random travel time in [1, 10)
r, c, _ = base.A.extract_tuples()
half = r < c
times = rng.uniform(1, 10, int(half.sum()))
lookup = {(int(i), int(j)): t for i, j, t in zip(r[half], c[half], times)}
weights = np.array([lookup[(min(i, j), max(i, j))] for i, j in zip(r, c)])
city = lg.Graph(
    Matrix.from_coo(r, c, weights, nrows=base.n, ncols=base.n), "undirected"
)

home = 0  # top-left corner
airport = ROWS * COLS - 1  # bottom-right corner

# --- single-source: travel times from home everywhere -------------------------
dist = lg.delta_stepping_sssp(home, city, delta=5.0)
lg.check_sssp_distances(city, home, dist)
print(f"Travel time home -> airport: {dist[airport]:.2f}")
far = int(np.argmax(dist.to_dense()))
print(f"Hardest-to-reach corner: vertex {far} at {dist[far]:.2f}")

# --- point-to-point: A* with an admissible Manhattan heuristic ----------------
def manhattan(v: int) -> float:
    vr, vc = divmod(v, COLS)
    tr, tc = divmod(airport, COLS)
    return abs(vr - tr) + abs(vc - tc)  # min street time is 1

route, t = lg.astar_path(home, airport, city, heuristic=manhattan)
assert np.isclose(t, dist[airport])
print(f"A* route: {len(route)} intersections, total time {t:.2f}")
print("  first 10 hops:", route[:10])

# --- fleet planning: APSP over the depot district ------------------------------
district = np.arange(0, 5 * COLS)  # the north 5 rows
S = Matrix("FP64", district.size, district.size)
ops.extract(S, city.A, district, district)
sub = lg.Graph(S, "undirected")
D = lg.apsp_distances_dense(sub)
finite = D[np.isfinite(D)]
print(
    f"\nDepot district APSP ({district.size} intersections): "
    f"mean pairwise time {finite.mean():.2f}, max {finite.max():.2f}"
)

# --- resilience: would closing the busiest bridge disconnect the city? --------
bc = lg.betweenness_centrality(city, sources=range(0, city.n, 10))
busiest = int(np.argmax(bc.to_dense()))
print(f"\nBusiest intersection (sampled betweenness): {busiest}")
rr, cc, vv = city.A.extract_tuples()
keep = (rr != busiest) & (cc != busiest)
closed = lg.Graph(
    Matrix.from_coo(rr[keep], cc[keep], vv[keep], nrows=city.n, ncols=city.n),
    "undirected",
)
ncomp = len(lg.component_sizes(lg.connected_components(closed)))
print(f"Closing it leaves {ncomp} connected pieces "
      f"({'still connected' if ncomp == 2 else 'fragmented'} - "
      "the closed vertex itself is one piece)")
