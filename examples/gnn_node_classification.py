#!/usr/bin/env python3
"""Graph neural network training on the GraphBLAS.

The paper's closing list (section V) names "graph neural network training
and inference" as important but not yet expressed on a GraphBLAS-like
library.  This example closes that gap: a two-layer GCN classifies the
vertices of a two-community graph, with every tensor op an ``mxm`` on
GraphBLAS matrices — including the renormalized propagation operator
S = D^-1/2 (A + I) D^-1/2 and the manual backward pass.

Run:  python examples/gnn_node_classification.py
"""

import numpy as np

from repro.graphblas import Matrix
from repro.lagraph import GCN, Graph, normalized_propagation

K = 30  # vertices per community
rng = np.random.default_rng(3)

# --- a noisy two-community graph ------------------------------------------------
edges = []
for i in range(2 * K):
    for j in range(i + 1, 2 * K):
        same = (i < K) == (j < K)
        if rng.random() < (0.35 if same else 0.02):
            edges.append((i, j))
g = Graph.from_edges(
    [u for u, v in edges], [v for u, v in edges], n=2 * K, kind="undirected"
)
labels = np.array([0] * K + [1] * K)
print(f"Two-community graph: {g.n} vertices, {g.nedges} edges")

S = normalized_propagation(g)
print(f"Propagation operator S: {S.nvals} entries "
      f"(density {S.nvals / g.n**2:.3f})")

# --- features: one-hot identities (structure-only learning) ---------------------
X = Matrix.sparse_identity(g.n, dtype="FP64", value=1.0)

# --- train on 30% of the vertices ------------------------------------------------
train_mask = rng.random(g.n) < 0.3
print(f"Training vertices: {train_mask.sum()}/{g.n}")

model = GCN(g, n_features=g.n, n_hidden=16, n_classes=2, seed=0)
history = model.fit(X, labels, train_mask, epochs=120, lr=0.8)

print("\nTraining loss:")
for e in range(0, len(history), 20):
    bar = "#" * int(history[e] * 40)
    print(f"  epoch {e:3d}: {history[e]:.4f} {bar}")

train_acc = model.accuracy(X, labels, train_mask)
test_acc = model.accuracy(X, labels, ~train_mask)
print(f"\nAccuracy: train {train_acc:.2%}, held-out {test_acc:.2%}")
assert test_acc > 0.85, "GCN failed to learn the communities"

# --- inspect a few held-out predictions -------------------------------------------
pred = model.predict(X)
held = np.flatnonzero(~train_mask)[:8]
print("\nSample held-out predictions:")
for v in held:
    mark = "ok" if pred[v] == labels[v] else "WRONG"
    print(f"  vertex {v:3d}: predicted {pred[v]}  true {labels[v]}  [{mark}]")
