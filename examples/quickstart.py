#!/usr/bin/env python3
"""Quickstart: build a graph, run the core LAGraph algorithms.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import lagraph as lg
from repro import graphblas as gb

# ---------------------------------------------------------------------------
# 1. Build a small directed, weighted graph from edge lists.
#
#        (1.0)      (2.0)
#    0 --------> 1 -------> 2
#    |                      ^
#    +-------(5.0)----------+           3 is isolated
# ---------------------------------------------------------------------------
g = lg.Graph.from_edges(
    sources=[0, 1, 0],
    targets=[1, 2, 2],
    weights=[1.0, 2.0, 5.0],
    n=4,
    dtype=np.float64,
)
print(g)

# ---------------------------------------------------------------------------
# 2. BFS levels and parents from vertex 0.
# ---------------------------------------------------------------------------
levels, parents = lg.bfs(0, g, level=True, parent=True)
print("BFS levels :", dict(zip(*(a.tolist() for a in levels.extract_tuples()))))
print("BFS parents:", dict(zip(*(a.tolist() for a in parents.extract_tuples()))))

# ---------------------------------------------------------------------------
# 3. Shortest paths (delta-stepping respects the edge weights).
# ---------------------------------------------------------------------------
dist = lg.sssp(0, g)
print("SSSP       :", dict(zip(*(a.tolist() for a in dist.extract_tuples()))))
# vertex 2 is reached via 0->1->2 (cost 3), cheaper than the direct 5.0 edge

# ---------------------------------------------------------------------------
# 4. PageRank (returns a dense rank vector summing to 1).
# ---------------------------------------------------------------------------
rank, iters = lg.pagerank(g)
print(f"PageRank   : {np.round(rank.to_dense(), 4)}  ({iters} iterations)")

# ---------------------------------------------------------------------------
# 5. Drop to the GraphBLAS layer: the same BFS as Figure 2 of the paper.
# ---------------------------------------------------------------------------
frontier = gb.Vector("BOOL", g.n)
frontier.set_element(0, True)
reach = gb.Vector("INT64", g.n)
depth = 0
while frontier.nvals > 0:
    gb.assign(reach, depth, gb.ALL, mask=frontier, desc="S")
    gb.mxv(frontier, g.AT, frontier, "LOR_LAND", mask=reach, desc="RSC")
    depth += 1
print("reachable  :", reach.to_dense(fill=-1), " (-1 = unreachable)")

# ---------------------------------------------------------------------------
# 6. Matrices are opaque, but move in and out in O(1) (paper section IV).
# ---------------------------------------------------------------------------
exported = gb.export_matrix(g.A.dup(), "csr")
print(f"exported   : Ap={exported.Ap.tolist()} Ai={exported.Ai.tolist()}")
back = gb.import_matrix(exported)
assert back.isequal(g.A)
print("import/export round trip: exact")
