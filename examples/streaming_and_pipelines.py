#!/usr/bin/env python3
"""Incremental graph updates and zero-copy pipelines.

Two of the paper's engineering themes, end to end:

* section II.A — *zombies and pending tuples*: stream edge insertions and
  deletions one at a time in non-blocking mode; the matrix assembles its
  update log lazily, so streaming is as cheap as batch building;
* section IV — *O(1) move import/export*: hand the adjacency arrays to an
  "external library" (here: NumPy analytics and Matrix Market I/O) without
  copying, then move them back and keep computing.

Run:  python examples/streaming_and_pipelines.py
"""

import io
import time

import numpy as np

from repro import lagraph as lg
from repro.graphblas import Matrix, export_matrix, import_matrix, nonblocking
from repro.io import mmread, mmwrite

N = 4000
BATCH = 20_000
rng = np.random.default_rng(0)

# --- streaming ingestion -------------------------------------------------------
print(f"Streaming {BATCH} edge events into a {N}x{N} adjacency (non-blocking)...")
src = rng.integers(0, N, BATCH)
dst = rng.integers(0, N, BATCH)

t0 = time.perf_counter()
with nonblocking():
    A = Matrix("FP64", N, N)
    for i, j in zip(src, dst):
        A.set_element(i, j, 1.0)  # O(1): appended to the pending log
    pending = A.npending
    A.wait()  # one O(n + e + p log p) assembly
t_stream = time.perf_counter() - t0
print(f"  {pending} pending tuples assembled in one pass: {t_stream*1e3:.0f} ms")

# deletions are zombies: unfollow 1% of the edges
unfollow = rng.choice(BATCH, BATCH // 100, replace=False)
with nonblocking():
    for k in unfollow:
        A.remove_element(int(src[k]), int(dst[k]))
    print(f"  {A.nzombies} zombies tagged; nvals after wait: {A.nvals}")

# --- analytics on the live graph ------------------------------------------------
g = lg.Graph(A, "directed")
rank, iters = lg.pagerank(g)
print(f"PageRank on the streamed graph: {iters} iterations, "
      f"top user {int(np.argmax(rank.to_dense()))}")

# --- zero-copy hand-off to an external consumer ---------------------------------
print("\nMoving the adjacency out of the GraphBLAS (O(1), no copy)...")
ex = export_matrix(A, "csr")
print(f"  got Ap({ex.Ap.size}), Ai({ex.Ai.size}), Ax({ex.Ax.size}) — "
      "the matrix handle is now invalid")

# the external library works on the raw CSR arrays directly
out_degrees = np.diff(ex.Ap)
print(f"  external NumPy consumer: max out-degree {out_degrees.max()}")

# and moves the arrays back in O(1)
A = import_matrix(ex)
print(f"  re-imported: {A.nvals} entries, zero copies "
      f"(shares memory: {np.shares_memory(A.by_row().values, ex.Ax)})")

# --- interchange with the world --------------------------------------------------
print("\nRound-tripping a subgraph through Matrix Market...")
from repro.graphblas import operations as ops

sub = Matrix("FP64", 100, 100)
ops.extract(sub, A, np.arange(100), np.arange(100))
buf = io.StringIO()
mmwrite(buf, sub, comment="streamed subgraph")
back = mmread(buf.getvalue())
assert back.isequal(sub)
print(f"  {sub.nvals} entries written and re-read: exact")
