#!/usr/bin/env python3
"""A movie recommender: collaborative filtering by SGD on the GraphBLAS.

Section V of the paper lists "collaborative filtering using stochastic
gradient descent" among the machine-learning algorithms already expressed
with GraphBLAS-style libraries (GraphMat's flagship demo).  The key
GraphBLAS idiom is the *masked* matrix product: predicted ratings are
computed only on the sparse pattern of observed ratings — never densified.

Run:  python examples/recommender_cf.py
"""

import numpy as np

from repro.graphblas import Matrix
from repro.lagraph import cf_rmse, train_cf

USERS, MOVIES, RANK = 300, 120, 6
rng = np.random.default_rng(1)

# synthesize a low-rank taste model + noise, observe 8% of ratings
print(f"Synthesizing ratings: {USERS} users x {MOVIES} movies, true rank {RANK}")
taste = rng.normal(0, 1, (USERS, RANK))
appeal = rng.normal(0, 1, (MOVIES, RANK))
true_ratings = taste @ appeal.T + rng.normal(0, 0.05, (USERS, MOVIES))

observed = rng.random((USERS, MOVIES)) < 0.25
test_mask = observed & (rng.random((USERS, MOVIES)) < 0.2)
train_mask = observed & ~test_mask

tr_r, tr_c = np.nonzero(train_mask)
te_r, te_c = np.nonzero(test_mask)
R_train = Matrix.from_coo(tr_r, tr_c, true_ratings[train_mask],
                          nrows=USERS, ncols=MOVIES)
R_test = Matrix.from_coo(te_r, te_c, true_ratings[test_mask],
                         nrows=USERS, ncols=MOVIES)
print(f"  train ratings: {R_train.nvals}, held-out test: {R_test.nvals}")

model, history = train_cf(R_train, rank=RANK, epochs=120, lr=0.15, reg=0.02, seed=0)

print("\nTraining curve (RMSE on train):")
for epoch in range(0, len(history), 10):
    bar = "#" * int(history[epoch] * 25)
    print(f"  epoch {epoch:3d}: {history[epoch]:.3f} {bar}")

test_rmse = cf_rmse(R_test, model)
print(f"\nHeld-out RMSE: {test_rmse:.3f} "
      f"(train went {history[0]:.3f} -> {history[-1]:.3f})")
assert test_rmse < 0.6 * history[0], "model failed to generalize"

# recommend: the 3 best unseen movies for a few users
print("\nSample recommendations (unseen movies with highest predicted rating):")
pred_full = model.U.to_dense() @ model.V.to_dense().T
for user in (0, 7, 42):
    unseen = ~observed[user]
    picks = np.argsort(-np.where(unseen, pred_full[user], -np.inf))[:3]
    scores = ", ".join(f"movie {m} ({pred_full[user, m]:+.2f})" for m in picks)
    print(f"  user {user:3d}: {scores}")
