"""chrome_trace_merged: multi-thread Chrome traces keep distinct tids."""

import json
import threading

from repro.graphblas import telemetry
from repro.graphblas.telemetry import Collector, chrome_trace_merged


def _capture_on_thread(results, idx, barrier=None):
    with telemetry.collect() as col:
        col.record_op("mxv", 0.001 * (idx + 1), 3)
        col.decision("mxv.direction", direction="push")
        results[idx] = col.snapshot(include_events=True)
    if barrier is not None:
        barrier.wait()  # keep all threads alive together: idents are
        # reused once a thread exits, and the test needs them distinct


class TestMerge:
    def test_threads_keep_distinct_tids(self):
        results = [None, None, None]
        barrier = threading.Barrier(3)
        ts = [
            threading.Thread(
                target=_capture_on_thread, args=(results, i, barrier)
            )
            for i in range(3)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        trace = chrome_trace_merged(results)
        events = trace["traceEvents"]
        sample_tids = {ev["tid"] for ev in events if ev["ph"] != "M"}
        assert len(sample_tids) == 3  # one track per thread, not flattened
        # thread_name metadata announces each track
        names = [ev for ev in events if ev.get("name") == "thread_name"]
        assert {ev["tid"] for ev in names} == sample_tids

    def test_snapshots_carry_tid_and_origin(self):
        results = [None]
        _capture_on_thread(results, 0)
        snap = results[0]
        assert snap["tid"] != 0
        assert "t0_perf" in snap

    def test_timelines_aligned_to_common_origin(self):
        # two collectors created at different times: the later one's
        # events must be shifted right, not start at ts=0 alongside the
        # earlier one's
        col1 = Collector()
        col1.record_op("mxm", 0.001, 1)
        col2 = Collector()  # created after col1: larger t0
        col2.record_op("mxv", 0.001, 1)
        trace = chrome_trace_merged([col1, col2])
        by_tid = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "X":
                by_tid.setdefault(ev["tid"], []).append(ev["ts"])
        # both collectors ran on this thread -> same tid; fall back to
        # event order: the mxv event must not precede the mxm event
        xs = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
        mxm = next(ev for ev in xs if ev["name"] == "mxm")
        mxv = next(ev for ev in xs if ev["name"] == "mxv")
        assert mxv["ts"] >= mxm["ts"]

    def test_accepts_bare_tid_events_pairs(self):
        col = Collector()
        col.instant("tick")
        trace = chrome_trace_merged([(7, list(col.events))])
        ticks = [ev for ev in trace["traceEvents"] if ev["name"] == "tick"]
        assert ticks and all(ev["tid"] == 7 for ev in ticks)

    def test_merged_trace_is_json_serializable(self):
        col = Collector()
        col.record_op("mxm", 0.5, 9)
        text = json.dumps(chrome_trace_merged([col]))
        parsed = json.loads(text)
        assert parsed["displayTimeUnit"] == "ms"

    def test_single_collector_matches_legacy_track_content(self):
        col = Collector()
        col.record_op("mxm", 0.25, 2)
        col.begin_span("bfs")
        col.end_span()
        trace = chrome_trace_merged([col])
        names = [ev["name"] for ev in trace["traceEvents"] if ev["ph"] == "X"]
        assert names == ["mxm", "bfs"]
