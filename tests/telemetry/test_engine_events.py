"""Engine instrumentation: per-op counters, decisions, assembly, io, capi."""

import numpy as np
import pytest

from repro.generators import random_matrix, random_vector
from repro.graphblas import Matrix, Vector, capi, telemetry
from repro.graphblas import operations as ops
from repro.graphblas.io_move import (
    export_matrix,
    export_vector,
    import_matrix,
    import_vector,
)


@pytest.fixture
def small():
    A = random_matrix(60, 60, 0.08, seed=1)
    B = random_matrix(60, 60, 0.08, seed=2)
    u = random_vector(60, 0.2, seed=3)
    return A, B, u


class TestTableOneCounters:
    def test_mxm_counts_calls_time_nvals_flops(self, small):
        A, B, _ = small
        with telemetry.collect() as col:
            C = ops.mxm(Matrix("FP64", 60, 60), A, B, "PLUS_TIMES")
        st = col.snapshot()["ops"]["mxm"]
        assert st["calls"] == 1
        assert st["seconds"] > 0
        assert st["out_nvals"] == C.nvals
        assert st["flops"] > 0

    def test_mxv_counts_flops(self, small):
        A, _, u = small
        with telemetry.collect() as col:
            ops.mxv(Vector("FP64", 60), A, u)
        st = col.snapshot()["ops"]["mxv"]
        assert st["calls"] == 1 and st["flops"] > 0

    def test_vxm_recorded_under_own_name(self, small):
        A, _, u = small
        with telemetry.collect() as col:
            ops.vxm(Vector("FP64", 60), u, A)
        assert col.snapshot()["ops"]["vxm"]["calls"] == 1

    @pytest.mark.parametrize(
        "opname", ["eWiseAdd", "eWiseMult", "apply", "select", "reduce", "transpose"]
    )
    def test_elementwise_family_counted(self, small, opname):
        A, B, _ = small
        run = {
            "eWiseAdd": lambda: ops.ewise_add(Matrix("FP64", 60, 60), A, B, "PLUS"),
            "eWiseMult": lambda: ops.ewise_mult(Matrix("FP64", 60, 60), A, B, "TIMES"),
            "apply": lambda: ops.apply(Matrix("FP64", 60, 60), A, "AINV"),
            "select": lambda: ops.select(Matrix("FP64", 60, 60), A, "TRIL", 0),
            "reduce": lambda: ops.reduce_rowwise(Vector("FP64", 60), A, "PLUS"),
            "transpose": lambda: ops.transpose(Matrix("FP64", 60, 60), A),
        }[opname]
        with telemetry.collect() as col:
            run()
        assert col.snapshot()["ops"][opname]["calls"] == 1

    def test_extract_assign_counted(self, small):
        A, _, _ = small
        with telemetry.collect() as col:
            ops.extract(Matrix("FP64", 10, 10), A, np.arange(10), np.arange(10))
            ops.assign(Matrix("FP64", 60, 60), A, ops.ALL, ops.ALL)
        snap = col.snapshot()["ops"]
        assert snap["extract"]["calls"] == 1
        assert snap["assign"]["calls"] == 1

    def test_results_identical_with_telemetry(self, small):
        A, B, u = small
        plain = ops.mxv(Vector("FP64", 60), A, u)
        with telemetry.collect():
            instrumented = ops.mxv(Vector("FP64", 60), A, u)
        assert instrumented.isequal(plain)


class TestDirectionDecisions:
    def test_auto_push_below_threshold(self):
        A = random_matrix(200, 200, 0.05, seed=4)
        u = Vector.from_coo([0], [1.0], size=200)  # density 1/200 << 0.03
        with telemetry.collect() as col:
            ops.mxv(Vector("FP64", 200), A, u)
        ev = [e for e in col.events if e["name"] == "mxv.direction"][0]
        assert ev["args"]["direction"] == "push"
        assert ev["args"]["density"] == pytest.approx(1 / 200)
        assert ev["args"]["threshold"] == pytest.approx(0.03)
        assert ev["args"]["frontier_nvals"] == 1

    def test_auto_pull_above_threshold(self, small):
        A, _, u = small  # density 0.2 > 0.03
        with telemetry.collect() as col:
            ops.mxv(Vector("FP64", 60), A, u)
        ev = [e for e in col.events if e["name"] == "mxv.direction"][0]
        assert ev["args"]["direction"] == "pull"

    def test_forced_method_flagged(self, small):
        A, _, u = small
        with telemetry.collect() as col:
            ops.mxv(Vector("FP64", 60), A, u, method="push")
        ev = [e for e in col.events if e["name"] == "mxv.direction"][0]
        assert ev["args"]["forced"] is True
        assert ev["args"]["direction"] == "push"

    def test_optimizer_hysteresis_flagged(self, small):
        from repro.graphblas.mxv import DirectionOptimizer

        A, _, u = small
        with telemetry.collect() as col:
            ops.mxv(Vector("FP64", 60), A, u, optimizer=DirectionOptimizer(0.1))
        ev = [e for e in col.events if e["name"] == "mxv.direction"][0]
        assert ev["args"]["hysteresis"] is True
        assert ev["args"]["threshold"] == pytest.approx(0.1)


class TestSpGEMMDecisions:
    def test_method_resolution_recorded(self, small):
        A, B, _ = small
        with telemetry.collect() as col:
            ops.mxm(Matrix("FP64", 60, 60), A, B, "PLUS_TIMES")
        ev = [e for e in col.events if e["name"] == "spgemm.method"][0]
        assert ev["args"]["requested"] == "auto"
        assert ev["args"]["method"] in ("gustavson", "dot", "heap")
        assert ev["args"]["masked"] is False

    def test_masked_dot_recorded(self, small):
        A, B, _ = small
        from repro.graphblas.descriptor import Descriptor

        with telemetry.collect() as col:
            ops.mxm(
                Matrix("FP64", 60, 60),
                A,
                B,
                "PLUS_TIMES",
                mask=A,
                desc=Descriptor(replace=True, structural_mask=True),
                method="dot",
            )
        ev = [e for e in col.events if e["name"] == "spgemm.method"][0]
        assert ev["args"]["method"] == "dot"
        assert ev["args"]["masked"] is True

    def test_early_exit_decision_with_terminal_monoid(self):
        # LOR is terminal at True: dense boolean inputs guarantee early
        # exits once the dot intersections exceed the 64-entry scan block
        n = 80
        A = Matrix.from_dense(np.ones((n, n), dtype=bool))
        with telemetry.collect() as col:
            ops.mxm(
                Matrix("BOOL", n, n),
                A,
                A,
                "LOR_LAND",
                mask=A,
                desc="RS",
                method="dot",
            )
        evs = [e for e in col.events if e["name"] == "mxm.early_exit"]
        assert evs, "terminal-monoid dot product must report early exits"
        args = evs[0]["args"]
        assert args["eligible"] > 0
        assert args["terminated"] > 0
        assert args["terminated"] <= args["eligible"]


class TestAssemblyEvents:
    def test_pending_tuple_assembly_counted(self):
        A = Matrix("FP64", 10, 10)
        with telemetry.collect() as col:
            for i in range(6):
                A.set_element(i, i, float(i))
            A.wait()
        evs = [e for e in col.events if e["name"] == "assembly"]
        assert len(evs) == 1
        assert evs[0]["args"]["object"] == "matrix"
        assert evs[0]["args"]["pending"] == 6
        assert evs[0]["args"]["zombies"] == 0
        assert evs[0]["args"]["nvals"] == 6
        assert col.snapshot()["ops"]["wait"]["calls"] == 1

    def test_zombie_counts_reported(self):
        A = Matrix.from_coo([0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        with telemetry.collect() as col:
            A.remove_element(1, 1)
            A.set_element(0, 1, 9.0)
            A.wait()
        ev = [e for e in col.events if e["name"] == "assembly"][0]
        assert ev["args"]["pending"] == 2
        assert ev["args"]["zombies"] == 1
        assert ev["args"]["nvals"] == 3  # 3 - 1 deleted + 1 inserted

    def test_vector_assembly(self):
        v = Vector("FP64", 8)
        with telemetry.collect() as col:
            v.set_element(3, 1.0)
            v.wait()
        ev = [e for e in col.events if e["name"] == "assembly"][0]
        assert ev["args"]["object"] == "vector"
        assert ev["args"]["pending"] == 1

    def test_no_event_when_nothing_pending(self):
        A = Matrix.from_coo([0], [0], [1.0])
        A.wait()
        with telemetry.collect() as col:
            A.wait()
        assert [e for e in col.events if e["name"] == "assembly"] == []


class TestFormatEvents:
    def test_set_format_decision(self):
        A = Matrix.from_coo([0, 5], [3, 1], [1.0, 2.0], nrows=8, ncols=8)
        with telemetry.collect() as col:
            A.set_format("hypercsc")
        ev = [e for e in col.events if e["name"] == "format"][0]
        assert ev["args"]["format"] == "hypercsc"
        assert ev["args"]["forced"] is True

    def test_auto_format_decision(self):
        # 2 non-empty rows out of 64: auto_format must pick hypersparse
        A = Matrix.from_coo([0, 63], [0, 63], [1.0, 1.0], nrows=64, ncols=64)
        A.set_format("csr")
        with telemetry.collect() as col:
            A.auto_format()
        ev = [e for e in col.events if e["name"] == "format"][0]
        assert ev["args"]["forced"] is False
        assert ev["args"]["format"] == "hypercsr"
        assert ev["args"]["nonempty"] == 2


class TestBytesMoved:
    def test_matrix_export_import_tallies(self):
        A = random_matrix(40, 40, 0.1, seed=5)
        with telemetry.collect() as col:
            ex = export_matrix(A)
            expected = ex.Ap.nbytes + ex.Ai.nbytes + ex.Ax.nbytes
            import_matrix(ex)
        snap = col.snapshot()["ops"]
        assert snap["export"]["calls"] == 1
        assert snap["export"]["bytes_moved"] == expected
        assert snap["import"]["calls"] == 1
        assert snap["import"]["bytes_moved"] == expected

    def test_vector_export_import_tallies(self):
        v = Vector.from_coo([1, 3], [1.0, 2.0], size=6)
        with telemetry.collect() as col:
            size, idx, vals = export_vector(v)
            import_vector(size, idx, vals)
        snap = col.snapshot()["ops"]
        assert snap["export"]["bytes_moved"] == idx.nbytes + vals.nbytes
        assert snap["import"]["bytes_moved"] == idx.nbytes + vals.nbytes

    def test_mmio_read_write_tallies(self, tmp_path):
        from repro.io import mmread, mmwrite

        A = random_matrix(20, 20, 0.15, seed=6)
        path = tmp_path / "m.mtx"
        with telemetry.collect() as col:
            mmwrite(str(path), A)
            mmread(str(path))
        snap = col.snapshot()["ops"]
        assert snap["io.write"]["calls"] == 1
        assert snap["io.write"]["bytes_moved"] == path.stat().st_size
        assert snap["io.read"]["calls"] == 1
        assert snap["io.read"]["bytes_moved"] > 0

    def test_npz_round_trip_tallies(self, tmp_path):
        from repro.io import load_matrix_npz, save_matrix_npz

        A = random_matrix(25, 25, 0.1, seed=7)
        path = tmp_path / "m.npz"
        with telemetry.collect() as col:
            save_matrix_npz(path, A)
            load_matrix_npz(path)
        snap = col.snapshot()["ops"]
        assert snap["io.write"]["bytes_moved"] > 0
        assert snap["io.read"]["bytes_moved"] > 0

    def test_edgelist_round_trip_tallies(self, tmp_path):
        from repro.io import read_edgelist, write_edgelist
        from repro.lagraph import Graph

        g = Graph.from_edges([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0], n=3)
        path = tmp_path / "g.el"
        with telemetry.collect() as col:
            write_edgelist(str(path), g)
            read_edgelist(str(path))
        snap = col.snapshot()["ops"]
        assert snap["io.write"]["bytes_moved"] == path.stat().st_size
        assert snap["io.read"]["bytes_moved"] == path.stat().st_size


class TestCapiGlobals:
    def test_global_stats_empty_when_off(self):
        assert capi.global_stats() == {}

    def test_global_stats_reflects_collector(self, small):
        A, _, u = small
        with telemetry.collect():
            ops.mxv(Vector("FP64", 60), A, u)
            stats = capi.global_stats()
        assert stats["ops"]["mxv"]["calls"] == 1

    def test_burble_set_starts_collector(self):
        assert capi.GxB_Burble_get() is False
        capi.GxB_Burble_set(True)
        try:
            assert telemetry.ENABLED
            assert capi.GxB_Burble_get() is True
        finally:
            telemetry.disable()

    def test_burble_set_false_keeps_collecting(self):
        import io as _io

        buf = _io.StringIO()
        with telemetry.collect(burble=True, stream=buf):
            capi.GxB_Burble_set(False)
            assert capi.GxB_Burble_get() is False
            telemetry.record_op("mxv", 0.01, 1)  # still counted, not burbled
            assert telemetry.snapshot()["ops"]["mxv"]["calls"] == 1
        assert buf.getvalue() == ""
