"""Collector unit tests: counters, events, burble, lifecycle, thread-locality."""

import io
import threading

import pytest

from repro.graphblas import telemetry
from repro.graphblas.telemetry import Collector, OpStats


class TestOpStats:
    def test_initial_zero(self):
        st = OpStats()
        assert st.as_dict() == {
            "calls": 0,
            "seconds": 0.0,
            "out_nvals": 0,
            "flops": 0,
            "bytes_moved": 0,
        }

    def test_as_dict_round_trips_fields(self):
        st = OpStats()
        st.calls = 3
        st.flops = 17
        assert st.as_dict()["calls"] == 3
        assert st.as_dict()["flops"] == 17


class TestRecording:
    def test_record_op_accumulates(self):
        col = Collector()
        col.record_op("mxv", 0.5, 10)
        col.record_op("mxv", 0.25, 5)
        st = col.ops["mxv"]
        assert st.calls == 2
        assert st.seconds == pytest.approx(0.75)
        assert st.out_nvals == 15

    def test_record_op_without_nvals(self):
        col = Collector()
        col.record_op("reduce", 0.1)
        assert col.ops["reduce"].out_nvals == 0
        assert col.events[-1]["args"] == {}

    def test_tally_adds_fields(self):
        col = Collector()
        col.tally("mxm", flops=100)
        col.tally("mxm", flops=50, bytes_moved=8)
        st = col.ops["mxm"]
        assert st.flops == 150
        assert st.bytes_moved == 8
        assert st.calls == 0  # tally does not count a call

    def test_tally_unknown_field_raises(self):
        col = Collector()
        with pytest.raises(AttributeError):
            col.tally("mxm", not_a_metric=1)

    def test_decision_event(self):
        col = Collector()
        col.decision("mxv.direction", direction="push", density=0.01)
        ev = col.events[-1]
        assert ev["type"] == "decision"
        assert ev["name"] == "mxv.direction"
        assert ev["args"]["direction"] == "push"

    def test_instant_event(self):
        col = Collector()
        col.instant("bfs.level", level=3, frontier_nvals=12)
        ev = col.events[-1]
        assert ev["type"] == "instant"
        assert ev["args"] == {"level": 3, "frontier_nvals": 12}

    def test_span_records_duration(self):
        col = Collector()
        col.begin_span("bfs", source=0)
        col.end_span()
        ev = col.events[-1]
        assert ev["type"] == "span"
        assert ev["name"] == "bfs"
        assert ev["dur"] >= 0
        assert ev["args"] == {"source": 0}

    def test_end_span_without_begin_is_noop(self):
        col = Collector()
        col.end_span()
        assert col.events == []

    def test_nested_spans_unwind_in_order(self):
        col = Collector()
        col.begin_span("outer")
        col.begin_span("inner")
        col.end_span()
        col.end_span()
        names = [ev["name"] for ev in col.events if ev["type"] == "span"]
        assert names == ["inner", "outer"]  # inner ends first


class TestEventCap:
    def test_max_events_bounds_memory(self):
        col = Collector(max_events=5)
        for i in range(10):
            col.instant("tick", i=i)
        assert len(col.events) == 5
        assert col.dropped == 5
        snap = col.snapshot()
        assert snap["events_dropped"] == 5
        assert snap["events_dropped_by_type"] == {"instant": 5}

    def test_reset_clears_everything(self):
        col = Collector(max_events=2)
        col.record_op("mxv", 0.1, 1)
        col.instant("x")
        col.instant("y")  # dropped
        col.begin_span("pending")
        col.reset()
        assert col.ops == {}
        assert col.events == []
        assert col.dropped == 0
        col.end_span()  # the pending span was discarded
        assert col.events == []


class TestSnapshot:
    def test_snapshot_shape(self):
        col = Collector()
        col.record_op("mxv", 0.1, 4)
        col.decision("spgemm.method", method="dot")
        col.begin_span("bfs")
        col.end_span()
        snap = col.snapshot()
        assert set(snap) == {
            "ops",
            "decisions",
            "spans",
            "events_total",
            "events_dropped",
            "events_dropped_by_type",
            "elapsed_seconds",
            "tid",
        }
        assert snap["ops"]["mxv"]["calls"] == 1
        assert snap["decisions"] == {"spgemm.method": 1}
        assert snap["spans"]["bfs"]["count"] == 1
        assert snap["events_total"] == 3

    def test_snapshot_include_events(self):
        col = Collector()
        col.instant("tick")
        snap = col.snapshot(include_events=True)
        assert len(snap["events"]) == 1
        snap2 = col.snapshot()
        assert "events" not in snap2

    def test_snapshot_is_json_serializable(self):
        import json

        col = Collector()
        col.record_op("mxm", 0.2, 9)
        col.decision("format", format="hypercsr")
        json.dumps(col.snapshot(include_events=True))


class TestBurble:
    def test_burble_writes_to_stream(self):
        buf = io.StringIO()
        col = Collector(burble=True, stream=buf)
        col.record_op("mxv", 0.001, 7)
        out = buf.getvalue()
        assert out.startswith("burble: ")
        assert "[mxv]" in out
        assert "nvals 7" in out

    def test_burble_decision_format(self):
        buf = io.StringIO()
        col = Collector(burble=True, stream=buf)
        col.decision("mxv.direction", direction="pull", density=0.25)
        line = buf.getvalue()
        assert "[mxv.direction]" in line
        assert "direction=pull" in line
        assert "density=0.25" in line

    def test_burble_span_lines(self):
        buf = io.StringIO()
        col = Collector(burble=True, stream=buf)
        col.begin_span("bfs", source=3)
        col.end_span()
        text = buf.getvalue()
        assert "[bfs] begin source=3" in text
        assert "[bfs] end (" in text

    def test_burble_off_by_default(self):
        buf = io.StringIO()
        col = Collector(stream=buf)
        col.record_op("mxv", 0.001, 1)
        assert buf.getvalue() == ""


class TestLifecycle:
    def test_enable_disable_flag(self):
        assert not telemetry.ENABLED
        col = telemetry.enable()
        assert telemetry.ENABLED
        assert telemetry.active() is col
        got = telemetry.disable()
        assert got is col
        assert not telemetry.ENABLED
        assert telemetry.active() is None

    def test_enable_is_idempotent(self):
        a = telemetry.enable()
        b = telemetry.enable(burble=True)
        assert a is b
        assert a.burble  # settings updated in place
        telemetry.disable()
        assert not telemetry.ENABLED  # one disable balances both enables

    def test_disable_without_enable_returns_none(self):
        assert telemetry.disable() is None

    def test_collect_context_detaches(self):
        with telemetry.collect() as col:
            assert telemetry.ENABLED
            assert telemetry.active() is col
        assert not telemetry.ENABLED
        assert telemetry.active() is None

    def test_collect_readable_after_exit(self):
        with telemetry.collect() as col:
            telemetry.record_op("mxv", 0.1, 2)
        snap = col.snapshot()
        assert snap["ops"]["mxv"]["calls"] == 1

    def test_nested_collect_reuses_outer(self):
        with telemetry.collect() as outer:
            with telemetry.collect() as inner:
                assert inner is outer
            assert telemetry.ENABLED  # outer still attached
        assert not telemetry.ENABLED

    def test_module_recorders_are_noops_when_off(self):
        telemetry.record_op("mxv", 0.1, 1)
        telemetry.tally("mxv", flops=5)
        telemetry.decision("anything", x=1)
        telemetry.instant("tick")
        telemetry.reset()
        assert telemetry.snapshot() == {}

    def test_module_span_noop_when_off(self):
        with telemetry.span("bfs", source=0):
            pass  # must not raise, must not attach anything
        assert telemetry.active() is None

    def test_module_span_records_when_on(self):
        with telemetry.collect() as col:
            with telemetry.span("bfs", source=1):
                telemetry.instant("bfs.level", level=0)
        snap = col.snapshot()
        assert snap["spans"]["bfs"]["count"] == 1

    def test_module_reset(self):
        with telemetry.collect() as col:
            telemetry.record_op("mxv", 0.1, 1)
            telemetry.reset()
            assert col.ops == {}


class TestThreadLocality:
    def test_other_thread_does_not_see_collector(self):
        seen = {}

        def probe():
            seen["active"] = telemetry.active()
            seen["enabled"] = telemetry.ENABLED

        with telemetry.collect():
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["active"] is None  # collector is thread-local
        assert seen["enabled"] is True  # fast-path flag is process-wide

    def test_two_threads_collect_independently(self):
        results = {}

        def work(key):
            with telemetry.collect() as col:
                telemetry.record_op(key, 0.01, 1)
                results[key] = col.snapshot()

        threads = [threading.Thread(target=work, args=(k,)) for k in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert list(results["a"]["ops"]) == ["a"]
        assert list(results["b"]["ops"]) == ["b"]
        assert not telemetry.ENABLED


class TestInstrumentedDecorator:
    def test_preserves_signature_and_name(self):
        import inspect

        @telemetry.instrumented("myop")
        def myfn(a, b, *, c=None):
            """Docstring survives."""
            return a + b

        assert myfn.__name__ == "myfn"
        assert "Docstring" in myfn.__doc__
        assert list(inspect.signature(myfn).parameters) == ["a", "b", "c"]

    def test_records_only_when_enabled(self):
        calls = []

        @telemetry.instrumented("myop")
        def myfn():
            calls.append(1)
            return None

        myfn()
        assert calls == [1]
        with telemetry.collect() as col:
            myfn()
        assert col.snapshot()["ops"]["myop"]["calls"] == 1
