"""Algorithm spans, Chrome trace export, and the ISSUE-2 acceptance run."""

import json

import numpy as np
import pytest

from repro.generators import rmat_graph
from repro.graphblas import telemetry
from repro.graphblas.telemetry import chrome_trace_events
from repro.lagraph import (
    bfs_level,
    betweenness_centrality,
    connected_components,
    pagerank,
    sssp,
    triangle_count,
)


@pytest.fixture(scope="module")
def small_graph():
    return rmat_graph(7, 6, seed=11, kind="undirected")


class TestAlgorithmSpans:
    def test_bfs_span_and_levels(self, small_graph):
        with telemetry.collect() as col:
            bfs_level(0, small_graph)
        snap = col.snapshot()
        assert snap["spans"]["bfs"]["count"] == 1
        levels = [e for e in col.events if e["name"] == "bfs.level"]
        assert len(levels) >= 2
        assert levels[0]["args"]["level"] == 0
        assert levels[0]["args"]["frontier_nvals"] == 1
        # frontier sizes are positive and densities consistent
        for ev in levels:
            assert ev["args"]["frontier_nvals"] > 0
            assert ev["args"]["frontier_density"] == pytest.approx(
                ev["args"]["frontier_nvals"] / small_graph.n
            )

    def test_sssp_bellman_ford_span(self, small_graph):
        with telemetry.collect() as col:
            sssp(0, small_graph, method="bellman-ford")
        snap = col.snapshot()
        assert snap["spans"]["sssp.bellman_ford"]["count"] == 1
        iters = [e for e in col.events if e["name"] == "sssp.iteration"]
        assert iters and iters[0]["args"]["iteration"] == 0

    def test_sssp_delta_stepping_span(self, small_graph):
        with telemetry.collect() as col:
            sssp(0, small_graph, method="delta")
        snap = col.snapshot()
        assert snap["spans"]["sssp.delta_stepping"]["count"] == 1
        buckets = [e for e in col.events if e["name"] == "sssp.bucket"]
        assert buckets
        assert buckets[0]["args"]["bucket"] == 0
        assert buckets[0]["args"]["candidates"] > 0

    def test_triangles_span_records_method(self, small_graph):
        with telemetry.collect() as col:
            triangle_count(small_graph, method="sandia_ll")
        spans = [e for e in col.events if e["type"] == "span"]
        tri = [e for e in spans if e["name"] == "triangles"][0]
        assert tri["args"]["method"] == "sandia_ll"

    def test_components_span_and_rounds(self, small_graph):
        with telemetry.collect() as col:
            connected_components(small_graph)
        snap = col.snapshot()
        assert snap["spans"]["components.fastsv"]["count"] == 1
        rounds = [e for e in col.events if e["name"] == "components.round"]
        assert rounds
        assert rounds[-1]["args"]["changed"] is False  # converged

    def test_pagerank_span_and_residuals(self, small_graph):
        with telemetry.collect() as col:
            _, iters = pagerank(small_graph, max_iters=50)
        snap = col.snapshot()
        assert snap["spans"]["pagerank"]["count"] == 1
        recs = [e for e in col.events if e["name"] == "pagerank.iteration"]
        assert len(recs) == iters
        residuals = [e["args"]["residual"] for e in recs]
        assert residuals[-1] < residuals[0]  # converging

    def test_betweenness_spans(self, small_graph):
        with telemetry.collect() as col:
            betweenness_centrality(small_graph, sources=[0, 1, 2])
        snap = col.snapshot()
        assert snap["spans"]["betweenness.forward"]["count"] == 1
        assert snap["spans"]["betweenness.backward"]["count"] == 1
        levels = [e for e in col.events if e["name"] == "betweenness.level"]
        assert levels


class TestChromeTrace:
    def test_event_conversion(self):
        events = [
            {"type": "op", "name": "mxv", "ts": 1.0, "dur": 5.0, "args": {"out_nvals": 3}},
            {"type": "decision", "name": "mxv.direction", "ts": 2.0, "args": {"direction": "push"}},
            {"type": "span", "name": "bfs", "ts": 0.0, "dur": 10.0, "args": {}},
            {"type": "instant", "name": "bfs.level", "ts": 3.0, "args": {"level": 1}},
        ]
        out = chrome_trace_events(events, tid=7)
        assert out[0]["ph"] == "M"  # process_name metadata
        by_name = {e["name"]: e for e in out[1:]}
        assert by_name["mxv"]["ph"] == "X"
        assert by_name["mxv"]["dur"] == 5.0
        assert by_name["mxv"]["args"] == {"out_nvals": 3}
        assert by_name["bfs"]["ph"] == "X"
        assert by_name["mxv.direction"]["ph"] == "i"
        assert by_name["mxv.direction"]["s"] == "t"
        assert by_name["bfs.level"]["ph"] == "i"
        assert all(e["tid"] == 7 for e in out)

    def test_collector_chrome_trace_shape(self, small_graph):
        with telemetry.collect() as col:
            bfs_level(0, small_graph)
        trace = col.chrome_trace()
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phases and "i" in phases

    def test_write_chrome_trace_is_loadable_json(self, small_graph, tmp_path):
        path = tmp_path / "trace.json"
        with telemetry.collect() as col:
            bfs_level(0, small_graph)
            col.write_chrome_trace(path)
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
        events = trace["traceEvents"]
        assert len(events) > 1
        # chrome://tracing requirements: every event has name/ph/pid/tid/ts
        for ev in events:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(ev)
            assert isinstance(ev["ts"], (int, float))
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_export_trace_script_converts_snapshot(self, small_graph, tmp_path):
        import subprocess
        import sys

        snap_path = tmp_path / "snap.json"
        out_path = tmp_path / "trace.json"
        with telemetry.collect() as col:
            bfs_level(0, small_graph)
            with open(snap_path, "w") as f:
                json.dump(col.snapshot(include_events=True), f)
        proc = subprocess.run(
            [sys.executable, "scripts/export_trace.py", str(snap_path), "-o", str(out_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        with open(out_path) as f:
            trace = json.load(f)
        assert trace["traceEvents"]

    def test_export_trace_script_rejects_eventless_snapshot(self, tmp_path):
        import subprocess
        import sys

        snap_path = tmp_path / "snap.json"
        with open(snap_path, "w") as f:
            json.dump({"ops": {}}, f)
        proc = subprocess.run(
            [sys.executable, "scripts/export_trace.py", str(snap_path), "-o", "/dev/null"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "events" in proc.stderr


class TestAcceptanceRMAT16:
    """The ISSUE-2 acceptance scenario: BFS on an RMAT-16 graph."""

    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        import io as _io

        graph = rmat_graph(16, 8, seed=42, kind="directed")
        burble = _io.StringIO()
        trace_path = tmp_path_factory.mktemp("trace") / "bfs.json"
        with telemetry.collect(burble=True, stream=burble) as col:
            levels = bfs_level(0, graph)
            snap = col.snapshot()
            col.write_chrome_trace(trace_path)
        return graph, levels, snap, burble.getvalue(), trace_path, col

    def test_burble_shows_per_level_direction_and_sparsity(self, run):
        _, _, _, burble, _, _ = run
        assert "[bfs] begin" in burble
        direction_lines = [
            ln for ln in burble.splitlines() if "[mxv.direction]" in ln
        ]
        assert len(direction_lines) >= 2
        for ln in direction_lines:
            assert "direction=push" in ln or "direction=pull" in ln
            assert "density=" in ln
            assert "frontier_nvals=" in ln
        # an RMAT-16 BFS from a high-degree-ish source switches direction
        dirs = {"push" if "push" in ln else "pull" for ln in direction_lines}
        assert dirs == {"push", "pull"}

    def test_snapshot_has_nonzero_mxv_counters_and_flops(self, run):
        _, levels, snap, _, _, _ = run
        mxv = snap["ops"]["mxv"]
        assert mxv["calls"] >= 2
        assert mxv["seconds"] > 0
        assert mxv["flops"] > 0
        assert snap["decisions"]["mxv.direction"] == mxv["calls"]
        assert levels.nvals > 0

    def test_per_level_records_match_bfs_depth(self, run):
        graph, levels, snap, _, _, col = run
        _, vals = levels.extract_tuples()
        depth = int(vals.max())
        level_events = [e for e in col.events if e["name"] == "bfs.level"]
        assert len(level_events) == depth + 1
        assert [e["args"]["level"] for e in level_events] == list(range(depth + 1))

    def test_chrome_trace_loads(self, run):
        _, _, _, _, trace_path, _ = run
        with open(trace_path, "r", encoding="utf-8") as f:
            trace = json.load(f)
        events = trace["traceEvents"]
        assert any(e.get("cat") == "span" and e["name"] == "bfs" for e in events)
        assert any(e["name"] == "mxv.direction" for e in events)
        assert any(e["name"] == "mxv" and e["ph"] == "X" for e in events)
