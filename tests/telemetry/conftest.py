"""Telemetry-suite fixtures: every test starts and ends with telemetry off."""

import pytest

from repro.graphblas import telemetry


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Detach any collector leaked by a failing test (ENABLED must reset)."""
    telemetry.disable()
    yield
    telemetry.disable()
    assert not telemetry.ENABLED
