"""Property test: the shared update log is order-equivalent to eager
application.

Hypothesis drives random interleavings of ``setElement`` /
``removeElement`` at deliberately overlapping coordinates against a
matrix in each of the four storage formats.  The settled matrix must
equal a dict oracle that applies every mutation eagerly
(last-action-per-coordinate wins), regardless of whether assembly
happens through one big ``wait()``, through many partial waits (chunked
``update_batch`` windows), or is reconstructed by replaying the emitted
delta-window chain onto a copy of the starting matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphblas import Matrix

N = 7

FORMATS = ("csr", "csc", "hypercsr", "hypercsc")

# a small coordinate pool guarantees collisions between sets and removes
_action = st.one_of(
    st.tuples(
        st.just("set"),
        st.integers(0, N - 1),
        st.integers(0, N - 1),
        st.integers(-9, 9),
    ),
    st.tuples(st.just("remove"), st.integers(0, N - 1), st.integers(0, N - 1)),
    st.tuples(st.just("wait")),
)


def _oracle_to_coo(oracle: dict):
    if not oracle:
        e = np.empty(0, dtype=np.int64)
        return e, e, np.empty(0)
    items = sorted(oracle.items())
    rows = np.array([k[0] for k, _ in items], dtype=np.int64)
    cols = np.array([k[1] for k, _ in items], dtype=np.int64)
    vals = np.array([v for _, v in items], dtype=np.float64)
    return rows, cols, vals


def _assert_matches(A: Matrix, oracle: dict):
    rows, cols, vals = A.extract_tuples()
    got = dict(zip(zip(rows.tolist(), cols.tolist()), vals.tolist()))
    want = dict(zip(zip(*_oracle_to_coo(oracle)[:2]), _oracle_to_coo(oracle)[2]))
    assert got == want


@pytest.mark.parametrize("fmt", FORMATS)
@settings(max_examples=40, deadline=None)
@given(actions=st.lists(_action, min_size=1, max_size=60))
def test_interleaved_updates_match_eager_oracle(fmt, actions):
    A = Matrix("FP64", N, N).set_format(fmt)
    oracle: dict = {}
    for act in actions:
        if act[0] == "set":
            _, i, j, v = act
            A.set_element(i, j, float(v))
            oracle[(i, j)] = float(v)
        elif act[0] == "remove":
            _, i, j = act
            A.remove_element(i, j)
            oracle.pop((act[1], act[2]), None)
        else:
            A.wait()
            _assert_matches(A, oracle)
    A.wait()
    _assert_matches(A, oracle)


@pytest.mark.parametrize("fmt", FORMATS)
@settings(max_examples=40, deadline=None)
@given(
    actions=st.lists(_action, min_size=1, max_size=60),
    chunk=st.integers(1, 7),
)
def test_chunked_update_batch_matches_eager_oracle(fmt, actions, chunk):
    """The same interleaving applied through windowed ``update_batch``
    calls (each settled by its own wait, like stream window chunks)."""
    muts = [a for a in actions if a[0] != "wait"]
    if not muts:
        return
    A = Matrix("FP64", N, N).set_format(fmt)
    oracle: dict = {}
    for lo in range(0, len(muts), chunk):
        window = muts[lo:lo + chunk]
        rows = np.array([a[1] for a in window], dtype=np.int64)
        cols = np.array([a[2] for a in window], dtype=np.int64)
        vals = np.array(
            [float(a[3]) if a[0] == "set" else 0.0 for a in window]
        )
        dels = np.array([a[0] == "remove" for a in window])
        A.update_batch(rows, cols, vals, deleted=dels)
        A.wait()
        for a in window:
            if a[0] == "set":
                oracle[(a[1], a[2])] = float(a[3])
            else:
                oracle.pop((a[1], a[2]), None)
        _assert_matches(A, oracle)


@pytest.mark.parametrize("fmt", FORMATS)
@settings(max_examples=25, deadline=None)
@given(
    actions=st.lists(_action, min_size=1, max_size=50),
    chunk=st.integers(1, 9),
)
def test_delta_chain_replay_reconstructs_matrix(fmt, actions, chunk):
    """The emitted DeltaBatch chain is a faithful edit script: replaying
    ``new/overwritten/removed`` edges of every window onto a copy of the
    starting matrix reproduces the final matrix exactly."""
    muts = [a for a in actions if a[0] != "wait"]
    if not muts:
        return
    A = Matrix("FP64", N, N).set_format(fmt)
    # non-trivial starting state so prev_* displacement tracking matters
    A.update_batch(
        np.array([0, 1, 2, 3], dtype=np.int64),
        np.array([3, 2, 1, 0], dtype=np.int64),
        np.array([9.0, 8.0, 7.0, 6.0]),
    )
    A.wait()
    B = A.dup()
    A.track_deltas(True)
    epoch0 = A._epoch
    for lo in range(0, len(muts), chunk):
        window = muts[lo:lo + chunk]
        rows = np.array([a[1] for a in window], dtype=np.int64)
        cols = np.array([a[2] for a in window], dtype=np.int64)
        vals = np.array(
            [float(a[3]) if a[0] == "set" else 0.0 for a in window]
        )
        dels = np.array([a[0] == "remove" for a in window])
        A.update_batch(rows, cols, vals, deleted=dels)
        A.wait()
    chain = A.deltas_since(epoch0)
    assert chain is not None
    for delta in chain:
        nr, nc, nv = delta.new_edges()
        orr, oc, ov = delta.overwritten_edges()
        rr, rc, _ = delta.removed_edges()
        for i, j, v in zip(nr.tolist(), nc.tolist(), nv.tolist()):
            B.set_element(i, j, v)
        for i, j, v in zip(orr.tolist(), oc.tolist(), ov.tolist()):
            B.set_element(i, j, v)
        for i, j in zip(rr.tolist(), rc.tolist()):
            B.remove_element(i, j)
        B.wait()
    assert B.isequal(A)


@pytest.mark.parametrize("fmt", FORMATS)
def test_delta_as_matrix_is_hypersparse_window(fmt):
    A = Matrix("FP64", N, N).set_format(fmt)
    A.track_deltas(True)
    A.set_element(1, 2, 5.0)
    A.set_element(4, 6, -1.0)
    A.wait()
    D = A.last_delta.as_matrix()
    rows, cols, vals = D.extract_tuples()
    assert rows.tolist() == [1, 4]
    assert cols.tolist() == [2, 6]
    assert vals.tolist() == [5.0, -1.0]
    assert D.format.startswith("hyper")
