"""Semirings and the built-in census (the paper's 960 / 600 counts)."""

import numpy as np
import pytest

from repro.graphblas import (
    BOOL,
    FP64,
    INT64,
    Matrix,
    enumerate_builtin_semirings,
    semiring,
    semiring_census,
)
from repro.graphblas import operations as ops
from repro.graphblas.errors import InvalidValue
from repro.graphblas.semiring import make_semiring


class TestLookup:
    def test_named(self):
        s = semiring("PLUS_TIMES")
        assert s.add.name == "PLUS" and s.mult.name == "TIMES"

    def test_compound_name_parsing(self):
        s = semiring("max_iseq")
        assert s.add.name == "MAX" and s.mult.name == "ISEQ"

    def test_logical_alias(self):
        assert semiring("LOGICAL") is semiring("LOR_LAND")

    def test_unknown(self):
        with pytest.raises(InvalidValue):
            semiring("FOO_BAR_BAZ")
        with pytest.raises(InvalidValue):
            semiring("JUSTONEWORD")

    def test_make_semiring(self):
        s = make_semiring("MIN", "PLUS", name="tropical")
        assert s.name == "tropical" and not s.builtin

    def test_out_type(self):
        assert semiring("PLUS_TIMES").out_type(INT64, FP64) is FP64
        # SuiteSparse-style logical ops are TxT -> T (BOOL only with BOOL in)
        assert semiring("LOR_LAND").out_type(FP64, FP64) is FP64
        assert semiring("LOR_LAND").out_type(BOOL, BOOL) is BOOL


class TestCensus:
    """Reproduces section II.A: 960 SuiteSparse / 600 pure-C-API semirings."""

    def test_suitesparse_census_is_960(self):
        c = semiring_census("suitesparse")
        assert c == {
            "arithmetic": 680,
            "comparison": 240,
            "boolean": 40,
            "total": 960,
        }

    def test_c_api_census_is_600(self):
        c = semiring_census("c-api")
        assert c == {
            "arithmetic": 320,
            "comparison": 240,
            "boolean": 40,
            "total": 600,
        }

    def test_c_api_is_subset_of_suitesparse(self):
        ss = set(
            (a, m, t.name) for a, m, t in enumerate_builtin_semirings("suitesparse")
        )
        capi = set(
            (a, m, t.name) for a, m, t in enumerate_builtin_semirings("c-api")
        )
        assert capi <= ss

    def test_all_triples_unique(self):
        triples = enumerate_builtin_semirings("suitesparse")
        assert len(triples) == len(set((a, m, t.name) for a, m, t in triples))

    def test_unknown_family(self):
        with pytest.raises(InvalidValue):
            enumerate_builtin_semirings("fortran")

    def test_every_census_semiring_is_usable(self):
        """Spot-run an mxv under one semiring from each census class."""
        picked = {}
        for a, m, t in enumerate_builtin_semirings("suitesparse"):
            key = (t.name == "BOOL", m in ("EQ", "NE", "GT", "LT", "GE", "LE"))
            picked.setdefault(key, (a, m, t))
        assert len(picked) >= 3
        for a, m, t in picked.values():
            A = Matrix.from_coo(
                [0, 0, 1], [0, 1, 1], np.array([1, 0, 1]), nrows=2, ncols=2, dtype=t
            )
            s = semiring(f"{a}_{m}")
            C = Matrix(s.out_type(t, t), 2, 2)
            ops.mxm(C, A, A, s)  # must not raise
            assert C.nvals >= 0


class TestSemiringAlgebra:
    """mxm results match manual fold for exotic semirings."""

    def _check(self, name, a, b, expected):
        A = Matrix.from_dense(np.asarray(a, dtype=float), missing=None)
        B = Matrix.from_dense(np.asarray(b, dtype=float), missing=None)
        C = Matrix(FP64, A.nrows, B.ncols)
        ops.mxm(C, A, B, name)
        assert np.allclose(C.to_dense(), expected), name

    def test_min_plus_is_shortest_path_step(self):
        a = [[0.0, 3.0], [2.0, 0.0]]
        b = [[0.0, 1.0], [5.0, 0.0]]
        exp = [[min(0 + 0, 3 + 5), min(0 + 1, 3 + 0)],
               [min(2 + 0, 0 + 5), min(2 + 1, 0 + 0)]]
        self._check("MIN_PLUS", a, b, exp)

    def test_max_times(self):
        a = [[1.0, 2.0]]
        b = [[3.0], [4.0]]
        self._check("MAX_TIMES", a, b, [[8.0]])

    def test_plus_min(self):
        a = [[1.0, 5.0]]
        b = [[2.0], [3.0]]
        self._check("PLUS_MIN", a, b, [[1.0 + 3.0]])

    def test_plus_oneb_counts_intersections(self):
        a = [[7.0, 9.0, 0.0]]
        b = [[1.0], [1.0], [1.0]]
        A = Matrix.from_dense(np.asarray(a), missing=0)
        B = Matrix.from_dense(np.asarray(b), missing=None)
        C = Matrix(FP64, 1, 1)
        ops.mxm(C, A, B, "PLUS_ONEB")
        assert C[0, 0] == 2.0  # two overlapping entries, each counted as 1
