"""The non-polymorphic GrB_* facade, including Figure 2(d)'s BFS."""

import numpy as np
import pytest

from repro.graphblas import capi as grb
from repro.graphblas.errors import Info


class TestObjectManagement:
    def test_new_and_size_queries(self):
        info, A = grb.GrB_Matrix_new(grb.GrB_FP64, 3, 4)
        assert info == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_nrows(A) == (grb.GrB_SUCCESS, 3)
        assert grb.GrB_Matrix_ncols(A) == (grb.GrB_SUCCESS, 4)
        assert grb.GrB_Matrix_nvals(A) == (grb.GrB_SUCCESS, 0)

    def test_new_invalid_returns_code_not_raise(self):
        info, A = grb.GrB_Matrix_new(grb.GrB_FP64, -1, 4)
        assert info == Info.INVALID_VALUE and A is None

    def test_set_extract_element(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert grb.GrB_Matrix_setElement(A, 3.5, 0, 1) == grb.GrB_SUCCESS
        info, val = grb.GrB_Matrix_extractElement(A, 0, 1)
        assert info == grb.GrB_SUCCESS and val == 3.5

    def test_extract_missing_returns_no_value(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        info, val = grb.GrB_Matrix_extractElement(A, 0, 0)
        assert info == grb.GrB_NO_VALUE and val is None

    def test_set_element_out_of_bounds_code(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert grb.GrB_Matrix_setElement(A, 1.0, 9, 0) == Info.INDEX_OUT_OF_BOUNDS

    def test_build_and_extract_tuples(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 3, 3)
        assert grb.GrB_Matrix_build(A, [0, 1], [1, 2], [5.0, 6.0]) == grb.GrB_SUCCESS
        info, r, c, v = grb.GrB_Matrix_extractTuples(A)
        assert info == grb.GrB_SUCCESS
        assert r.tolist() == [0, 1] and c.tolist() == [1, 2]

    def test_build_nonempty_is_output_not_empty(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        grb.GrB_Matrix_build(A, [0], [0], [1.0])
        assert grb.GrB_Matrix_build(A, [1], [1], [1.0]) == Info.OUTPUT_NOT_EMPTY

    def test_dup_clear_wait_remove(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        grb.GrB_Matrix_setElement(A, 1.0, 0, 0)
        info, B = grb.GrB_Matrix_dup(A)
        assert info == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_removeElement(B, 0, 0) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_wait(B) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_nvals(B) == (grb.GrB_SUCCESS, 0)
        assert grb.GrB_Matrix_clear(A) == grb.GrB_SUCCESS

    def test_free(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert grb.GrB_free(A) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_nvals(A)[0] == Info.UNINITIALIZED_OBJECT

    def test_vector_surface(self):
        info, v = grb.GrB_Vector_new(grb.GrB_INT64, 5)
        assert info == grb.GrB_SUCCESS
        assert grb.GrB_Vector_size(v) == (grb.GrB_SUCCESS, 5)
        grb.GrB_Vector_setElement(v, 7, 2)
        assert grb.GrB_Vector_nvals(v) == (grb.GrB_SUCCESS, 1)
        info, val = grb.GrB_Vector_extractElement(v, 2)
        assert val == 7
        info, idx, vals = grb.GrB_Vector_extractTuples(v)
        assert idx.tolist() == [2]
        assert grb.GrB_Vector_removeElement(v, 2) == grb.GrB_SUCCESS
        info, w = grb.GrB_Vector_dup(v)
        assert grb.GrB_Vector_clear(w) == grb.GrB_SUCCESS
        assert grb.GrB_Vector_wait(v) == grb.GrB_SUCCESS


class TestOperations:
    def test_mxm_dimension_mismatch_code(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 3)
        _, B = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 3)
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 3)
        assert (
            grb.GrB_mxm(C, grb.GrB_NULL, grb.GrB_NULL, "PLUS_TIMES", A, B)
            == Info.DIMENSION_MISMATCH
        )

    def test_mxm_success(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        grb.GrB_Matrix_build(A, [0, 1], [1, 0], [2.0, 3.0])
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert (
            grb.GrB_mxm(C, grb.GrB_NULL, grb.GrB_NULL, "PLUS_TIMES", A, A)
            == grb.GrB_SUCCESS
        )
        assert grb.GrB_Matrix_extractElement(C, 0, 0)[1] == 6.0

    def test_reduce_to_scalar_object(self):
        _, v = grb.GrB_Vector_new(grb.GrB_FP64, 4)
        grb.GrB_Vector_build(v, [0, 1], [2.0, 5.0])
        _, s = grb.GrB_Scalar_new(grb.GrB_FP64)
        assert grb.GrB_reduce(s, grb.GrB_NULL, "PLUS", v) == grb.GrB_SUCCESS
        assert s.value == 7.0
        # accumulate a second reduction into the scalar
        assert grb.GrB_reduce(s, "PLUS", "PLUS", v) == grb.GrB_SUCCESS
        assert s.value == 14.0

    def test_ewise_apply_select_transpose(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        grb.GrB_Matrix_build(A, [0, 1], [1, 0], [2.0, -3.0])
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert grb.GrB_eWiseAdd(C, None, None, "PLUS", A, A) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_extractElement(C, 0, 1)[1] == 4.0
        assert grb.GrB_eWiseMult(C, None, None, "TIMES", A, A) == grb.GrB_SUCCESS
        assert grb.GrB_apply(C, None, None, "ABS", A) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_extractElement(C, 1, 0)[1] == 3.0
        assert grb.GrB_select(C, None, None, "VALUEGT", A, 0.0) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_nvals(C)[1] == 1
        _, T = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert grb.GrB_transpose(T, None, None, A) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_extractElement(T, 1, 0)[1] == 2.0

    def test_extract_assign_kronecker(self):
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 3, 3)
        grb.GrB_Matrix_build(A, [0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        _, S = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert grb.GrB_extract(S, None, None, A, [0, 2], [0, 2]) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_extractElement(S, 1, 1)[1] == 3.0
        assert grb.GrB_assign(A, None, None, 9.0, [1], [0]) == grb.GrB_SUCCESS
        assert grb.GrB_Matrix_extractElement(A, 1, 0)[1] == 9.0
        _, K = grb.GrB_Matrix_new(grb.GrB_FP64, 4, 4)
        assert grb.GrB_kronecker(K, None, None, "TIMES", S, S) == grb.GrB_SUCCESS


def bfs_fig2d(graph, frontier):
    """Figure 2(d): level BFS against the C API surface, line for line."""
    info, n = grb.GrB_Matrix_nrows(graph)
    info, levels = grb.GrB_Vector_new(grb.GrB_INT64, n)
    info, nvals = grb.GrB_Vector_nvals(frontier)
    depth = 0
    while nvals > 0:
        depth += 1
        grb.GrB_assign(levels, frontier, grb.GrB_NULL, depth, grb.GrB_ALL)
        grb.GrB_mxv(
            frontier, levels, grb.GrB_NULL, "LOR_LAND", graph, frontier, "RSC"
        )
        info, nvals = grb.GrB_Vector_nvals(frontier)
    return levels


def test_bfs_figure_2d():
    # 0 -> 1 -> 2 -> 3 with shortcut 0 -> 2; traverse via A^T like Fig. 2
    info, G = grb.GrB_Matrix_new(grb.GrB_BOOL, 4, 4)
    grb.GrB_Matrix_build(G, [1, 2, 3, 2], [0, 1, 2, 0], [True] * 4, dup="LOR")
    info, frontier = grb.GrB_Vector_new(grb.GrB_BOOL, 4)
    grb.GrB_Vector_setElement(frontier, True, 0)
    levels = bfs_fig2d(G, frontier)
    info, idx, vals = grb.GrB_Vector_extractTuples(levels)
    assert dict(zip(idx.tolist(), vals.tolist())) == {0: 1, 1: 2, 2: 2, 3: 3}
