"""Pluggable kernel backends: registry, selection, dispatch, and parity.

Covers the backend registry and thread-local selection machinery, the
scipy bridge (including the cancellation-zero pattern subtlety), the
differential cross-checking engine, and the GxB-style C-API global
option.  The hypothesis section pushes randomized Table-I workloads
through the ``differential`` backend across all four storage formats, so
every example is executed by *both* engines and compared.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphblas import Matrix, Vector, backends, telemetry
from repro.graphblas import operations as ops
from repro.graphblas.backends import (
    KernelBackend,
    available_backends,
    backend,
    dispatch,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.graphblas.backends.differential import DifferentialBackend, plan_cost
from repro.graphblas.errors import BackendDivergence, InvalidValue
from repro.graphblas import plan as planmod

FORMATS = ["csr", "csc", "hypercsr", "hypercsc"]

# the suite may legitimately run under GRAPHBLAS_BACKEND=<other engine>
ENV_DEFAULT = os.environ.get("GRAPHBLAS_BACKEND", "optimized")


@pytest.fixture(autouse=True)
def _restore_default_backend():
    yield
    set_default_backend(None)


def small_pair(seed=0, n=8, density=0.4, lo=-4, hi=5):
    rng = np.random.default_rng(seed)
    def one():
        dense = np.where(rng.random((n, n)) < density,
                         rng.integers(lo, hi, (n, n)), 0)
        return Matrix.from_dense(dense.astype(np.float64), missing=0)
    return one(), one()


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for want in ("optimized", "reference", "scipy", "differential"):
            assert want in names

    def test_get_backend_caches_instances(self):
        assert get_backend("optimized") is get_backend("optimized")

    def test_get_backend_accepts_instance(self):
        be = get_backend("optimized")
        assert get_backend(be) is be

    def test_unknown_backend_raises(self):
        with pytest.raises(InvalidValue, match="unknown backend"):
            get_backend("no-such-engine")

    def test_duplicate_registration_raises(self):
        with pytest.raises(InvalidValue, match="already registered"):
            register_backend("optimized", lambda: None)

    def test_replace_registration(self):
        class Probe(KernelBackend):
            name = "probe"

        register_backend("probe", Probe, replace=True)
        try:
            assert isinstance(get_backend("probe"), Probe)
            register_backend("probe", Probe, replace=True)  # idempotent w/ flag
        finally:
            import repro.graphblas.backends as B

            B._factories.pop("probe", None)
            B._instances.pop("probe", None)


class TestSelection:
    def test_default_follows_environment(self):
        assert backends.current_backend_name() == ENV_DEFAULT

    def test_context_manager_nests(self):
        with backend("reference"):
            assert backends.current_backend_name() == "reference"
            with backend("scipy"):
                assert backends.current_backend_name() == "scipy"
            assert backends.current_backend_name() == "reference"
        assert backends.current_backend_name() == ENV_DEFAULT

    def test_set_default_backend(self):
        other = "reference" if ENV_DEFAULT != "reference" else "scipy"
        set_default_backend(other)
        assert backends.current_backend_name() == other
        set_default_backend(None)
        assert backends.current_backend_name() == ENV_DEFAULT

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_BACKEND", "reference")
        set_default_backend(None)  # force a re-read of the environment
        assert backends.current_backend_name() == "reference"

    def test_per_call_override(self):
        A, B = small_pair(seed=1)
        C1 = Matrix(np.float64, *A.shape)
        C2 = Matrix(np.float64, *A.shape)
        ops.mxm(C1, A, B, "PLUS_TIMES", backend="reference")
        ops.mxm(C2, A, B, "PLUS_TIMES")
        assert C1.isequal(C2)

    def test_ops_equal_across_backends(self):
        A, B = small_pair(seed=2)
        baseline = Matrix(np.float64, *A.shape)
        ops.mxm(baseline, A, B, "PLUS_TIMES")
        for name in ("reference", "scipy", "differential"):
            C = Matrix(np.float64, *A.shape)
            with backend(name):
                ops.mxm(C, A, B, "PLUS_TIMES")
            assert C.isequal(baseline), name


class TestDispatchTelemetry:
    def test_dispatch_decision_recorded(self):
        A, B = small_pair(seed=3)
        C = Matrix(np.float64, *A.shape)
        telemetry.enable()
        try:
            ops.mxm(C, A, B, "PLUS_TIMES")
            snap = telemetry.snapshot()
        finally:
            telemetry.disable()
        assert snap["decisions"].get("backend.dispatch", 0) >= 1

    def test_fallback_decision_recorded(self):
        # scipy declines MIN_PLUS and falls back to optimized
        A, B = small_pair(seed=4)
        C = Matrix(np.float64, *A.shape)
        telemetry.enable()
        try:
            with backend("scipy"):
                ops.mxm(C, A, B, "MIN_PLUS")
            snap = telemetry.snapshot()
        finally:
            telemetry.disable()
        assert snap["decisions"].get("backend.fallback", 0) >= 1


class TestSciPyBackend:
    scipy = pytest.importorskip("scipy.sparse")

    def test_plus_times_parity(self):
        A, B = small_pair(seed=5, n=30)
        C1 = Matrix(np.float64, *A.shape)
        C2 = Matrix(np.float64, *A.shape)
        ops.mxm(C1, A, B, "PLUS_TIMES", backend="scipy")
        ops.mxm(C2, A, B, "PLUS_TIMES", backend="optimized")
        assert C1.isequal(C2)

    def test_cancellation_zeros_stay_in_pattern(self):
        # A@B where the only product sums to exactly zero: scipy prunes
        # the stored zero, GraphBLAS keeps the structural entry.
        A = Matrix.from_coo([0, 0], [0, 1], [1.0, -1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([0, 1], [0, 0], [1.0, 1.0], nrows=2, ncols=2)
        for name in ("scipy", "optimized", "reference"):
            C = Matrix(np.float64, 2, 2)
            ops.mxm(C, A, B, "PLUS_TIMES", backend=name)
            assert C.nvals == 1, name
            assert C[0, 0] == 0.0, name

    def test_ewise_add_cancellation(self):
        u = Vector.from_coo([1, 3], [2.0, -7.0], size=5)
        v = Vector.from_coo([1, 4], [-2.0, 1.0], size=5)
        w1 = Vector(np.float64, 5)
        w2 = Vector(np.float64, 5)
        ops.ewise_add(w1, u, v, "PLUS", backend="scipy")
        ops.ewise_add(w2, u, v, "PLUS", backend="optimized")
        assert w1.isequal(w2)
        assert w1.nvals == 3 and w1[1] == 0.0

    def test_mxv_vxm_parity(self):
        A, _ = small_pair(seed=6, n=25)
        u = Vector.from_dense(np.arange(25, dtype=np.float64))
        for op in (ops.mxv, ops.vxm):
            w1 = Vector(np.float64, 25)
            w2 = Vector(np.float64, 25)
            args1 = (w1, A, u) if op is ops.mxv else (w1, u, A)
            args2 = (w2, A, u) if op is ops.mxv else (w2, u, A)
            op(*args1, "PLUS_TIMES", backend="scipy")
            op(*args2, "PLUS_TIMES", backend="optimized")
            assert w1.isequal(w2), op.__name__

    def test_declines_nonarithmetic(self):
        A, _ = small_pair(seed=7)
        p = planmod.plan_mxm(Matrix(np.float64, *A.shape), A, A, "MIN_PLUS")
        assert not get_backend("scipy").supports(p)
        assert get_backend("scipy").supports(
            planmod.plan_mxm(Matrix(np.float64, *A.shape), A, A, "PLUS_TIMES")
        )

    def test_roundtrip_matrix_scipy(self):
        A, _ = small_pair(seed=8)
        back = Matrix.from_scipy(A.to_scipy())
        assert back.isequal(A)

    def test_roundtrip_vector_scipy(self):
        u = Vector.from_coo([0, 3, 9], [1.5, -2.0, 4.0], size=11)
        back = Vector.from_scipy(u.to_scipy())
        assert back.isequal(u)


class TestDifferential:
    def test_counts_verified(self):
        A, B = small_pair(seed=9)
        be = DifferentialBackend()
        C = Matrix(np.float64, *A.shape)
        with backend(be):
            ops.mxm(C, A, B, "PLUS_TIMES")
            ops.reduce_scalar(A, "PLUS")
        assert be.stats == {"verified": 2, "skipped": 0, "divergences": 0}

    def test_budget_skips_large_ops(self):
        A, B = small_pair(seed=10)
        be = DifferentialBackend(budget=1)  # everything is over budget
        C = Matrix(np.float64, *A.shape)
        with backend(be):
            ops.mxm(C, A, B, "PLUS_TIMES")
        assert be.stats["skipped"] == 1 and be.stats["verified"] == 0
        # the optimized result still lands
        want = Matrix(np.float64, *A.shape)
        ops.mxm(want, A, B, "PLUS_TIMES")
        assert C.isequal(want)

    def test_plan_cost_mxm_includes_inner_dim(self):
        A, B = small_pair(seed=11)
        p = planmod.plan_mxm(Matrix(np.float64, *A.shape), A, B, "PLUS_TIMES")
        assert plan_cost(p) == A.nrows * B.ncols * A.ncols

    def test_divergence_raises(self, monkeypatch):
        import repro.graphblas.backends.differential as diff

        opt = get_backend("optimized")

        class Corrupting:
            def __getattr__(self, name):
                real = getattr(opt, name)
                if name != "mxm":
                    return real

                def bad(plan):
                    real(plan)
                    plan.out.set_element(0, 0, 12345.0)
                    plan.out.wait()
                    return plan.out

                return bad

        monkeypatch.setattr(
            diff, "get_backend",
            lambda s: Corrupting() if s == "optimized" else get_backend(s),
        )
        A, B = small_pair(seed=12)
        be = DifferentialBackend()
        C = Matrix(np.float64, *A.shape)
        with pytest.raises(BackendDivergence, match="mxm"):
            with backend(be):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert be.stats["divergences"] == 1

    def test_env_budget(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_DIFF_BUDGET", "77")
        assert DifferentialBackend().budget == 77

    def test_strict_fails_on_over_budget_op(self):
        from repro.graphblas.errors import BudgetExceeded

        A, B = small_pair(seed=13)
        be = DifferentialBackend(budget=1, strict=True)
        C = Matrix(np.float64, *A.shape)
        with pytest.raises(BudgetExceeded, match="strict"):
            with backend(be):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert be.stats["skipped"] == 1 and be.stats["verified"] == 0

    def test_strict_within_budget_still_verifies(self):
        A, B = small_pair(seed=14)
        be = DifferentialBackend(strict=True)
        C = Matrix(np.float64, *A.shape)
        with backend(be):
            ops.mxm(C, A, B, "PLUS_TIMES")
        assert be.stats["verified"] == 1 and be.stats["skipped"] == 0


class TestCapiGlobalOption:
    def test_backend_set_get(self):
        from repro.graphblas import capi

        assert capi.GxB_Backend_get() == ENV_DEFAULT
        other = "reference" if ENV_DEFAULT != "reference" else "scipy"
        assert capi.GxB_Backend_set(other) == capi.Info.SUCCESS
        assert capi.GxB_Backend_get() == other
        assert capi.GxB_Backend_set("bogus") == capi.Info.INVALID_VALUE
        capi.GxB_Backend_set(None)
        assert capi.GxB_Backend_get() == ENV_DEFAULT


# ---------------------------------------------------------------------------
# hypothesis: randomized Table-I workloads through the differential engine
# ---------------------------------------------------------------------------

def _coo(entries, n):
    if not entries:
        return Matrix(np.float64, n, n)
    seen = {}
    for r, c, v in entries:
        seen[(r, c)] = float(v)
    rows = [k[0] for k in seen]
    cols = [k[1] for k in seen]
    vals = [seen[k] for k in seen]
    return Matrix.from_coo(rows, cols, vals, nrows=n, ncols=n)


entry_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(-3, 3)),
    max_size=18,
)


@settings(max_examples=40, deadline=None)
@given(a=entry_lists, b=entry_lists, fmt=st.sampled_from(FORMATS))
def test_differential_mxm_property(a, b, fmt):
    A, B = _coo(a, 6).set_format(fmt), _coo(b, 6).set_format(fmt)
    C = Matrix(np.float64, 6, 6)
    be = DifferentialBackend()
    with backend(be):
        ops.mxm(C, A, B, "PLUS_TIMES")
        ops.mxm(C, A, B, "MIN_PLUS", accum="PLUS")
    assert be.stats["verified"] == 2 and be.stats["divergences"] == 0


@settings(max_examples=40, deadline=None)
@given(a=entry_lists, b=entry_lists, fmt=st.sampled_from(FORMATS),
       which=st.sampled_from(["ewise_add", "ewise_mult"]))
def test_differential_ewise_property(a, b, fmt, which):
    A, B = _coo(a, 6).set_format(fmt), _coo(b, 6).set_format(fmt)
    C = Matrix(np.float64, 6, 6)
    be = DifferentialBackend()
    with backend(be):
        getattr(ops, which)(C, A, B, "PLUS" if which == "ewise_add" else "TIMES")
        getattr(ops, which)(C, A, B, "MAX")
    assert be.stats["verified"] == 2 and be.stats["divergences"] == 0


@settings(max_examples=40, deadline=None)
@given(a=entry_lists, fmt=st.sampled_from(FORMATS))
def test_differential_apply_reduce_property(a, fmt):
    A = _coo(a, 6).set_format(fmt)
    C = Matrix(np.float64, 6, 6)
    w = Vector(np.float64, 6)
    be = DifferentialBackend()
    with backend(be):
        ops.apply(C, A, "AINV")
        ops.apply(C, A, "PLUS", right=2.5)
        ops.reduce_rowwise(w, A, "PLUS")
        total = ops.reduce_scalar(A, "PLUS")
    assert be.stats["verified"] == 4 and be.stats["divergences"] == 0
    r, c, v = A.extract_tuples()
    assert total == pytest.approx(v.sum()) or A.nvals == 0
