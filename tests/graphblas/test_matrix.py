"""The opaque Matrix: construction, deferred updates, formats, moves."""

import numpy as np
import pytest

from repro.graphblas import (
    FP64,
    INT64,
    Matrix,
    NoValue,
    blocking,
    nonblocking,
)
from repro.graphblas.errors import (
    IndexOutOfBounds,
    InvalidValue,
    OutputNotEmpty,
    UninitializedObject,
)


class TestConstruction:
    def test_new_empty(self):
        A = Matrix.new("FP64", 3, 4)
        assert A.shape == (3, 4) and A.nvals == 0 and A.dtype is FP64

    def test_nonpositive_dims_raise(self):
        with pytest.raises(InvalidValue):
            Matrix("FP64", 0, 3)

    def test_from_coo_with_dup(self):
        A = Matrix.from_coo([0, 0], [1, 1], [2.0, 3.0], nrows=2, ncols=2, dup="PLUS")
        assert A[0, 1] == 5.0

    def test_from_coo_infers_dims(self):
        A = Matrix.from_coo([3], [7], [1.0])
        assert A.shape == (4, 8)

    def test_from_dense_missing_sentinel(self):
        A = Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]), missing=0)
        assert A.nvals == 2 and A[1, 1] == 2.0

    def test_from_dense_nan_sentinel(self):
        A = Matrix.from_dense(np.array([[1.0, np.nan]]), missing=np.nan)
        assert A.nvals == 1

    def test_from_dense_all_entries(self):
        A = Matrix.from_dense(np.zeros((2, 2)))
        assert A.nvals == 4

    def test_sparse_identity(self):
        eye = Matrix.sparse_identity(3, value=5)
        assert eye.to_dense().tolist() == [[5, 0, 0], [0, 5, 0], [0, 0, 5]]

    def test_scalar_broadcast_values(self):
        A = Matrix.from_coo([0, 1], [1, 0], 7.0, nrows=2, ncols=2)
        assert A[0, 1] == 7.0 and A[1, 0] == 7.0


class TestElementAccess:
    def test_set_get(self):
        A = Matrix.new("FP64", 3, 3)
        A.set_element(1, 2, 4.5)
        assert A.extract_element(1, 2) == 4.5
        assert A[1, 2] == 4.5

    def test_missing_raises_novalue(self):
        A = Matrix.new("FP64", 2, 2)
        with pytest.raises(NoValue):
            A.extract_element(0, 0)
        assert A.get(0, 0, default=-1) == -1

    def test_out_of_bounds(self):
        A = Matrix.new("FP64", 2, 2)
        with pytest.raises(IndexOutOfBounds):
            A.set_element(5, 0, 1.0)
        with pytest.raises(IndexOutOfBounds):
            A.extract_element(0, 9)

    def test_setitem_sugar(self):
        A = Matrix.new("INT64", 2, 2)
        A[0, 1] = 9
        assert A[0, 1] == 9

    def test_casting_on_insert(self):
        A = Matrix.new("INT64", 2, 2)
        A[0, 0] = 3.9
        assert A[0, 0] == 3


class TestPendingLog:
    """Zombies + pending tuples (paper section II.A)."""

    def test_pending_counts(self):
        with nonblocking():
            A = Matrix.new("FP64", 4, 4)
            A.set_element(0, 0, 1.0)
            A.set_element(1, 1, 2.0)
            A.remove_element(2, 2)
            assert A.npending == 2 and A.nzombies == 1
            A.wait()
            assert A.npending == 0 and A.nzombies == 0

    def test_last_writer_wins(self):
        with nonblocking():
            A = Matrix.new("FP64", 2, 2)
            A.set_element(0, 0, 1.0)
            A.set_element(0, 0, 2.0)
            assert A.nvals == 1 and A[0, 0] == 2.0

    def test_set_then_remove_is_absent(self):
        with nonblocking():
            A = Matrix.new("FP64", 2, 2)
            A.set_element(0, 0, 1.0)
            A.remove_element(0, 0)
            assert A.nvals == 0

    def test_remove_then_set_is_present(self):
        with nonblocking():
            A = Matrix.new("FP64", 2, 2)
            A.set_element(0, 0, 1.0)
            A.wait()
            A.remove_element(0, 0)
            A.set_element(0, 0, 7.0)
            assert A[0, 0] == 7.0

    def test_zombie_kills_stored_entry(self):
        A = Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], nrows=2, ncols=2)
        A.remove_element(0, 0)
        assert A.nvals == 1 and A.get(0, 0) is None

    def test_remove_nonexistent_is_noop(self):
        A = Matrix.new("FP64", 2, 2)
        A.remove_element(1, 1)
        assert A.nvals == 0

    def test_blocking_mode_materializes_immediately(self):
        with blocking():
            A = Matrix.new("FP64", 2, 2)
            A.set_element(0, 0, 1.0)
            assert not A.has_pending

    def test_incremental_equals_build(self):
        """Section II.A: e setElements produce the same matrix as one build."""
        rng = np.random.default_rng(0)
        r = rng.integers(0, 20, 100)
        c = rng.integers(0, 20, 100)
        v = rng.random(100)
        with nonblocking():
            A = Matrix.new("FP64", 20, 20)
            for i, j, x in zip(r, c, v):
                A.set_element(i, j, x)
        # build semantics with dup=SECOND == last writer wins
        B = Matrix.new("FP64", 20, 20)
        B.build(r, c, v, dup="SECOND")
        assert A.isequal(B)


class TestBuild:
    def test_build_requires_empty(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        with pytest.raises(OutputNotEmpty):
            A.build([1], [1], [2.0])

    def test_build_bounds_check(self):
        A = Matrix.new("FP64", 2, 2)
        with pytest.raises(IndexOutOfBounds):
            A.build([5], [0], [1.0])

    def test_build_no_dup_raises_on_duplicates(self):
        A = Matrix.new("FP64", 2, 2)
        with pytest.raises(InvalidValue):
            A.build([0, 0], [0, 0], [1.0, 2.0], dup=None)

    def test_extract_tuples_roundtrip(self):
        r = [0, 1, 1]
        c = [2, 0, 3]
        v = [1.0, 2.0, 3.0]
        A = Matrix.from_coo(r, c, v, nrows=2, ncols=4)
        rr, cc, vv = A.extract_tuples()
        B = Matrix.new("FP64", 2, 4)
        B.build(rr, cc, vv)
        assert A.isequal(B)

    def test_extract_tuples_returns_copies(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=1, ncols=1)
        r, c, v = A.extract_tuples()
        v[0] = 99.0
        assert A[0, 0] == 1.0


class TestFormats:
    @pytest.mark.parametrize("fmt", ["csr", "csc", "hypercsr", "hypercsc"])
    def test_format_switch_preserves_content(self, fmt):
        A = Matrix.from_coo([0, 3, 3], [1, 0, 2], [1.0, 2.0, 3.0], nrows=5, ncols=5)
        dense = A.to_dense()
        A.set_format(fmt)
        assert A.format == fmt
        assert np.array_equal(A.to_dense(), dense)

    def test_unknown_format(self):
        A = Matrix.new("FP64", 2, 2)
        with pytest.raises(InvalidValue):
            A.set_format("coo")

    def test_auto_format_picks_hyper_when_sparse(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=10_000, ncols=10_000)
        A.auto_format()
        assert A.format == "hypercsr"

    def test_auto_format_picks_full_when_dense(self):
        A = Matrix.from_dense(np.ones((8, 8)))
        A.auto_format()
        assert A.format == "csr"

    def test_by_row_by_col_agree(self):
        A = Matrix.from_coo([0, 1, 2], [2, 0, 1], [1.0, 2.0, 3.0], nrows=3, ncols=3)
        r = A.by_row()
        c = A.by_col()
        assert r.orientation.value == "row" and c.orientation.value == "col"
        assert r.nvals == c.nvals == 3

    def test_keep_both_orientations_caches(self):
        A = Matrix.from_coo([0, 1], [1, 0], [1.0, 2.0], nrows=2, ncols=2)
        A.keep_both_orientations(True)
        c1 = A.by_col()
        c2 = A.by_col()
        assert c1 is c2  # cached
        A.set_element(0, 0, 5.0)
        c3 = A.by_col()  # invalidated by mutation
        assert c3.nvals == 3

    def test_huge_dimension_is_born_hypersparse(self):
        A = Matrix.new("FP64", 1 << 40, 1 << 40)
        assert A.format == "hypercsr"
        A.set_element(123456789012, 7, 1.0)
        assert A.nvals == 1 and A.nbytes < 200


class TestWholeObject:
    def test_dup_is_deep(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        B = A.dup()
        B.set_element(1, 1, 2.0)
        assert A.nvals == 1 and B.nvals == 2

    def test_clear_keeps_shape(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=3)
        A.clear()
        assert A.nvals == 0 and A.shape == (2, 3)

    def test_resize_grow_and_shrink(self):
        A = Matrix.from_coo([0, 2], [0, 2], [1.0, 2.0], nrows=3, ncols=3)
        A.resize(5, 5)
        assert A.shape == (5, 5) and A.nvals == 2
        A.resize(2, 2)
        assert A.nvals == 1 and A[0, 0] == 1.0

    def test_isequal(self):
        A = Matrix.from_coo([0], [1], [2.0], nrows=2, ncols=2)
        B = Matrix.from_coo([0], [1], [2.0], nrows=2, ncols=2)
        C = Matrix.from_coo([0], [1], [3.0], nrows=2, ncols=2)
        D = Matrix.from_coo([0], [1], [2], nrows=2, ncols=2, dtype="INT64")
        assert A.isequal(B)
        assert not A.isequal(C)  # different value
        assert not A.isequal(D)  # different type
        assert not A.isequal("nope")

    def test_pattern(self):
        A = Matrix.from_coo([0], [1], [0.0], nrows=2, ncols=2)
        assert A.pattern()[0, 1] and not A.pattern()[0, 0]
        # explicit zero is a stored entry: pattern yes, value zero
        assert A.to_dense()[0, 1] == 0.0
