"""Edge cases and failure injection: empty objects, moved handles, extremes."""

import numpy as np
import pytest

from repro.graphblas import (
    Matrix,
    UninitializedObject,
    Vector,
    export_matrix,
    export_vector,
    subassign,
)
from repro.graphblas import operations as ops
from repro.graphblas.errors import NoValue


@pytest.fixture
def empty_m():
    return Matrix("FP64", 5, 5)


@pytest.fixture
def empty_v():
    return Vector("FP64", 5)


class TestEmptyInputs:
    """Every operation must behave on fully empty objects."""

    def test_mxm_empty(self, empty_m):
        C = Matrix("FP64", 5, 5)
        for method in ("gustavson", "dot", "heap"):
            ops.mxm(C, empty_m, empty_m, method=method)
            assert C.nvals == 0

    def test_mxm_one_side_empty(self, empty_m):
        A = Matrix.sparse_identity(5)
        C = Matrix("FP64", 5, 5)
        ops.mxm(C, A, empty_m)
        assert C.nvals == 0
        ops.mxm(C, empty_m, A)
        assert C.nvals == 0

    def test_mxv_empty_vector(self, empty_v):
        A = Matrix.sparse_identity(5)
        w = Vector("FP64", 5)
        for method in ("push", "pull"):
            ops.mxv(w, A, empty_v, method=method)
            assert w.nvals == 0

    def test_ewise_with_empty(self, empty_m):
        A = Matrix.sparse_identity(5)
        C = Matrix("FP64", 5, 5)
        ops.ewise_add(C, A, empty_m, "PLUS")
        assert C.isequal(A)
        ops.ewise_mult(C, A, empty_m, "TIMES")
        assert C.nvals == 0

    def test_reduce_empty(self, empty_m, empty_v):
        assert ops.reduce_scalar(empty_m, "PLUS") == 0
        assert ops.reduce_scalar(empty_v, "MIN") == np.inf
        w = Vector("FP64", 5)
        ops.reduce_rowwise(w, empty_m, "PLUS")
        assert w.nvals == 0

    def test_apply_select_transpose_empty(self, empty_m):
        C = Matrix("FP64", 5, 5)
        ops.apply(C, empty_m, "AINV")
        assert C.nvals == 0
        ops.select(C, empty_m, "TRIL")
        assert C.nvals == 0
        ops.transpose(C, empty_m)
        assert C.nvals == 0

    def test_extract_assign_empty(self, empty_m):
        C = Matrix("FP64", 2, 2)
        ops.extract(C, empty_m, [0, 1], [0, 1])
        assert C.nvals == 0
        D = Matrix.sparse_identity(5)
        ops.assign(D, empty_m.dup().resize(2, 2), [0, 1], [0, 1])
        assert D.get(0, 0) is None and D.get(1, 1) is None  # region cleared
        assert D.get(2, 2) == 1

    def test_subassign_empty_operand(self):
        D = Matrix.sparse_identity(4)
        subassign(D, Matrix("FP64", 2, 2), [0, 1], [0, 1])
        assert D.get(0, 0) is None and D.get(3, 3) == 1

    def test_kronecker_empty(self, empty_m):
        C = Matrix("FP64", 25, 25)
        ops.kronecker(C, empty_m, empty_m, "TIMES")
        assert C.nvals == 0

    def test_empty_mask_admits_nothing(self, empty_m):
        A = Matrix.sparse_identity(5)
        C = Matrix.sparse_identity(5)
        ops.mxm(C, A, A, mask=empty_m, desc="RS")
        assert C.nvals == 0  # replace + empty mask clears everything

    def test_empty_mask_without_replace_keeps_c(self, empty_m):
        A = Matrix.sparse_identity(5)
        C = Matrix.sparse_identity(5)
        ops.mxm(C, A, A, mask=empty_m, desc="S")
        assert C.nvals == 5


class TestMovedHandles:
    """Section IV: after export the remains of the object are deleted."""

    def test_every_matrix_entry_point_rejects_moved(self):
        A = Matrix.sparse_identity(3)
        export_matrix(A)
        C = Matrix("FP64", 3, 3)
        for action in (
            lambda: A.nvals,
            lambda: A.dup(),
            lambda: A.extract_tuples(),
            lambda: A.set_element(0, 0, 1.0),
            lambda: A.remove_element(0, 0),
            lambda: A.resize(2, 2),
            lambda: A.set_format("csc"),
            lambda: A.to_dense(),
            lambda: ops.mxm(C, A, C),
            lambda: ops.apply(C, A, "AINV"),
            lambda: export_matrix(A),
        ):
            with pytest.raises(UninitializedObject):
                action()

    def test_vector_moved(self):
        v = Vector.from_coo([0], [1.0], size=3)
        export_vector(v)
        with pytest.raises(UninitializedObject):
            v.extract_tuples()
        with pytest.raises(UninitializedObject):
            v.set_element(0, 2.0)


class TestExtremes:
    def test_one_by_one_matrix(self):
        A = Matrix.from_coo([0], [0], [2.0], nrows=1, ncols=1)
        C = Matrix("FP64", 1, 1)
        ops.mxm(C, A, A)
        assert C[0, 0] == 4.0
        assert ops.reduce_scalar(A, "PLUS") == 2.0

    def test_single_entry_vector_ops(self):
        v = Vector.from_coo([0], [3.0], size=1)
        w = Vector("FP64", 1)
        ops.ewise_mult(w, v, v, "TIMES")
        assert w[0] == 9.0

    def test_dense_matrix_through_sparse_engine(self):
        d = np.arange(16.0).reshape(4, 4) + 1
        A = Matrix.from_dense(d)
        C = Matrix("FP64", 4, 4)
        ops.mxm(C, A, A)
        assert np.allclose(C.to_dense(), d @ d)

    def test_explicit_zeros_are_entries(self):
        """A stored zero participates in patterns (GraphBLAS semantics)."""
        A = Matrix.from_coo([0], [0], [0.0], nrows=2, ncols=2)
        assert A.nvals == 1
        C = Matrix("FP64", 2, 2)
        ops.ewise_add(C, A, A, "PLUS")
        assert C.nvals == 1 and C[0, 0] == 0.0
        B = Matrix("FP64", 2, 2)
        ops.select(B, A, "VALUEEQ", 0.0)
        assert B.nvals == 1

    def test_nan_values_survive_roundtrip(self):
        A = Matrix.from_coo([0], [1], [np.nan], nrows=2, ncols=2)
        r, c, v = A.extract_tuples()
        assert np.isnan(v[0])
        B = A.dup()
        assert np.isnan(B.to_dense(fill=0.0)[0, 1])

    def test_inf_in_min_plus(self):
        A = Matrix.from_coo([0, 1], [1, 0], [np.inf, 1.0], nrows=2, ncols=2)
        C = Matrix("FP64", 2, 2)
        ops.mxm(C, A, A, "MIN_PLUS")
        assert C[0, 0] == np.inf  # inf + 1
        assert C[1, 1] == np.inf

    def test_int_overflow_wraps_like_c(self):
        A = Matrix.from_coo([0], [0], [np.iinfo(np.int8).max], nrows=1, ncols=1, dtype="INT8")
        C = Matrix("INT8", 1, 1)
        ops.ewise_add(C, A, A, "PLUS")
        assert C[0, 0] == -2  # 127 + 127 wraps in int8

    def test_uint_domain(self):
        A = Matrix.from_coo([0], [0], [250], nrows=1, ncols=1, dtype="UINT8")
        C = Matrix("UINT8", 1, 1)
        ops.apply(C, A, "plus", right=10)
        assert C[0, 0] == (250 + 10) % 256

    def test_full_slice_and_step_index_specs(self):
        A = Matrix.from_dense(np.arange(16.0).reshape(4, 4))
        C = Matrix("FP64", 2, 4)
        ops.extract(C, A, slice(0, 4, 2), ops.ALL)
        assert np.allclose(C.to_dense(), A.to_dense()[::2])

    def test_scalar_index_extract(self):
        u = Vector.from_dense(np.array([1.0, 2.0, 3.0]))
        w = Vector("FP64", 1)
        ops.extract(w, u, 1)
        assert w[0] == 2.0

    def test_get_missing_via_novalue(self):
        A = Matrix("FP64", 2, 2)
        with pytest.raises(NoValue):
            A.extract_element(1, 1)
