"""Domain (GrB_Type) behaviour: lookup, casting, promotion."""

import numpy as np
import pytest

from repro.graphblas import (
    BOOL,
    BUILTIN_TYPES,
    FP32,
    FP64,
    INT8,
    INT32,
    INT64,
    UINT8,
    UINT64,
    lookup_type,
    unify_types,
)
from repro.graphblas.errors import DomainMismatch


class TestLookup:
    def test_by_name(self):
        assert lookup_type("INT32") is INT32
        assert lookup_type("fp64") is FP64

    def test_by_python_type(self):
        assert lookup_type(bool) is BOOL
        assert lookup_type(int) is INT64
        assert lookup_type(float) is FP64

    def test_by_dtype(self):
        assert lookup_type(np.int8) is INT8
        assert lookup_type(np.dtype(np.float32)) is FP32

    def test_identity(self):
        assert lookup_type(INT64) is INT64

    def test_unknown_name_raises(self):
        with pytest.raises(DomainMismatch):
            lookup_type("INT128")

    def test_user_defined_from_structured_dtype(self):
        dt = np.dtype([("x", np.float64), ("y", np.float64)])
        t = lookup_type(dt)
        assert not t.builtin
        assert t.np_dtype == dt

    def test_eleven_builtin_types(self):
        assert len(BUILTIN_TYPES) == 11
        assert len({t.name for t in BUILTIN_TYPES}) == 11


class TestPredicates:
    def test_bool(self):
        assert BOOL.is_bool and BOOL.is_integral and not BOOL.is_float

    def test_signed(self):
        assert INT8.is_signed and not INT8.is_unsigned

    def test_unsigned(self):
        assert UINT8.is_unsigned and not UINT8.is_signed

    def test_float(self):
        assert FP32.is_float and not FP32.is_integral


class TestCasting:
    def test_float_to_int_truncates(self):
        out = INT32.cast_array(np.array([1.9, -1.9, 2.5]))
        assert out.tolist() == [1, -1, 2]

    def test_to_bool_is_nonzero(self):
        out = BOOL.cast_array(np.array([0.0, 0.5, -3.0]))
        assert out.tolist() == [False, True, True]

    def test_noop_when_same_dtype(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        assert INT64.cast_array(arr) is arr

    def test_cast_scalar(self):
        assert INT8.cast_scalar(3.7) == 3
        assert isinstance(BOOL.cast_scalar(2), (bool, np.bool_))

    def test_zero(self):
        assert FP64.zero() == 0.0
        assert BOOL.zero() == False  # noqa: E712


class TestUnify:
    def test_same(self):
        assert unify_types(INT32, INT32) is INT32

    def test_int_float(self):
        assert unify_types(INT32, FP64) is FP64

    def test_bool_int(self):
        assert unify_types(BOOL, INT8) is INT8

    def test_int64_uint64_promotes_to_float(self):
        assert unify_types(INT64, UINT64) is FP64

    def test_user_defined_mismatch_raises(self):
        dt = lookup_type(np.dtype([("x", np.float64)]))
        with pytest.raises(DomainMismatch):
            unify_types(dt, INT64)

    @pytest.mark.parametrize("t", BUILTIN_TYPES)
    def test_unify_reflexive_all(self, t):
        assert unify_types(t, t) is t
