"""Property-based tests (hypothesis) on the core algebra and kernels."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.graphblas import (
    BOOL,
    FP64,
    INT64,
    Matrix,
    Vector,
    monoid,
    semiring,
)
from repro.graphblas import operations as ops
from repro.graphblas.monoid import ARITH_MONOIDS, BOOL_MONOIDS

# -- strategies -------------------------------------------------------------

coords = st.tuples(st.integers(0, 6), st.integers(0, 6))
fvalues = st.floats(-8, 8, allow_nan=False, allow_infinity=False)


@st.composite
def sparse_matrix(draw, n=7, dtype=np.float64):
    entries = draw(st.dictionaries(coords, fvalues, max_size=25))
    if entries:
        r, c = map(np.asarray, zip(*entries))
        v = np.asarray(list(entries.values()))
    else:
        r = c = np.empty(0, dtype=np.int64)
        v = np.empty(0)
    return Matrix.from_coo(r, c, v, nrows=n, ncols=n, dtype=dtype)


@st.composite
def sparse_vector(draw, n=7):
    entries = draw(st.dictionaries(st.integers(0, 6), fvalues, max_size=7))
    idx = np.asarray(sorted(entries), dtype=np.int64)
    vals = np.asarray([entries[i] for i in sorted(entries)])
    return Vector.from_coo(idx, vals, size=n, dtype=np.float64)


# -- monoid laws --------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(set(ARITH_MONOIDS)))
@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-50, 50), min_size=1, max_size=12))
def test_monoid_associativity_int(name, xs):
    """Left fold == right fold for every arithmetic monoid."""
    m = monoid(name)
    xs = [np.int64(x) for x in xs]
    left = xs[0]
    for x in xs[1:]:
        left = m.op.fn(left, x)
    right = xs[-1]
    for x in reversed(xs[:-1]):
        right = m.op.fn(x, right)
    assert INT64.cast_scalar(left) == INT64.cast_scalar(right)


@pytest.mark.parametrize("name", sorted(set(BOOL_MONOIDS)))
@settings(max_examples=30, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=10))
def test_monoid_associativity_bool(name, xs):
    m = monoid(name)
    left = xs[0]
    for x in xs[1:]:
        left = bool(m.op.fn(left, x))
    right = xs[-1]
    for x in reversed(xs[:-1]):
        right = bool(m.op.fn(x, right))
    assert left == right


@pytest.mark.parametrize("name", sorted(set(ARITH_MONOIDS + BOOL_MONOIDS)))
@settings(max_examples=25, deadline=None)
@given(st.data())
def test_monoid_commutativity(name, data):
    m = monoid(name)
    if name in BOOL_MONOIDS:
        x = data.draw(st.booleans())
        y = data.draw(st.booleans())
        assert bool(m.op.fn(x, y)) == bool(m.op.fn(y, x))
    else:
        x = data.draw(st.integers(-100, 100))
        y = data.draw(st.integers(-100, 100))
        assert m.op.fn(x, y) == m.op.fn(y, x)


# -- semiring / kernel equivalences -------------------------------------------

@settings(max_examples=30, deadline=None)
@given(sparse_matrix(), sparse_matrix())
def test_mxm_methods_agree(A, B):
    """Gustavson == dot == heap on arbitrary inputs (PLUS_TIMES)."""
    outs = []
    for method in ("gustavson", "dot", "heap"):
        C = Matrix(FP64, 7, 7)
        ops.mxm(C, A, B, "PLUS_TIMES", method=method)
        outs.append(C)
    assert np.allclose(outs[0].to_dense(), outs[1].to_dense())
    assert np.allclose(outs[0].to_dense(), outs[2].to_dense())
    assert outs[0].pattern().tolist() == outs[1].pattern().tolist()
    assert outs[0].pattern().tolist() == outs[2].pattern().tolist()


@settings(max_examples=30, deadline=None)
@given(sparse_matrix(), sparse_vector())
def test_push_pull_agree(A, u):
    w1 = Vector(FP64, 7)
    w2 = Vector(FP64, 7)
    ops.mxv(w1, A, u, "PLUS_TIMES", method="push")
    ops.mxv(w2, A, u, "PLUS_TIMES", method="pull")
    assert w1.pattern().tolist() == w2.pattern().tolist()
    assert np.allclose(w1.to_dense(), w2.to_dense())


@settings(max_examples=30, deadline=None)
@given(sparse_matrix())
def test_transpose_is_involution(A):
    T = Matrix(FP64, 7, 7)
    ops.transpose(T, A)
    TT = Matrix(FP64, 7, 7)
    ops.transpose(TT, T)
    assert TT.isequal(A)


@settings(max_examples=30, deadline=None)
@given(sparse_matrix(), sparse_matrix())
def test_ewise_add_commutative_plus(A, B):
    C1 = Matrix(FP64, 7, 7)
    C2 = Matrix(FP64, 7, 7)
    ops.ewise_add(C1, A, B, "PLUS")
    ops.ewise_add(C2, B, A, "PLUS")
    assert C1.isequal(C2)


@settings(max_examples=30, deadline=None)
@given(sparse_matrix(), sparse_matrix())
def test_ewise_mult_pattern_is_intersection(A, B):
    C = Matrix(FP64, 7, 7)
    ops.ewise_mult(C, A, B, "TIMES")
    assert np.array_equal(C.pattern(), A.pattern() & B.pattern())


@settings(max_examples=30, deadline=None)
@given(sparse_matrix(), sparse_matrix())
def test_ewise_add_pattern_is_union(A, B):
    C = Matrix(FP64, 7, 7)
    ops.ewise_add(C, A, B, "PLUS")
    assert np.array_equal(C.pattern(), A.pattern() | B.pattern())


@settings(max_examples=25, deadline=None)
@given(sparse_matrix(), sparse_matrix(), sparse_matrix())
def test_mask_and_complement_partition_output(A, B, M):
    """C<M> union C<!M> (both with replace) == unmasked C."""
    full = Matrix(FP64, 7, 7)
    ops.mxm(full, A, B, "PLUS_TIMES")
    pos = Matrix(FP64, 7, 7)
    ops.mxm(pos, A, B, "PLUS_TIMES", mask=M, desc="RS")
    neg = Matrix(FP64, 7, 7)
    ops.mxm(neg, A, B, "PLUS_TIMES", mask=M, desc="RSC")
    union = Matrix(FP64, 7, 7)
    ops.ewise_add(union, pos, neg, "PLUS")  # patterns disjoint: PLUS is safe
    assert union.isequal(full)


@settings(max_examples=25, deadline=None)
@given(sparse_matrix())
def test_extract_tuples_build_roundtrip(A):
    r, c, v = A.extract_tuples()
    B = Matrix(FP64, 7, 7)
    B.build(r, c, v)
    assert B.isequal(A)


@settings(max_examples=25, deadline=None)
@given(sparse_matrix(), st.sampled_from(["csr", "csc", "hypercsr", "hypercsc"]))
def test_format_changes_never_change_content(A, fmt):
    before = A.dup()
    A.set_format(fmt)
    assert A.format == fmt
    assert A.isequal(before) or A.dtype != before.dtype  # dtype same: equal
    assert A.isequal(before)


@settings(max_examples=25, deadline=None)
@given(sparse_matrix())
def test_export_import_roundtrip_property(A):
    from repro.graphblas import export_matrix, import_matrix

    expect = A.dup()
    ex = export_matrix(A)
    B = import_matrix(ex)
    assert B.isequal(expect)


@settings(max_examples=25, deadline=None)
@given(sparse_matrix())
def test_reduce_scalar_equals_sum_of_rowwise(A):
    w = Vector(FP64, 7)
    ops.reduce_rowwise(w, A, "PLUS")
    total = ops.reduce_scalar(A, "PLUS")
    assert np.isclose(float(ops.reduce_scalar(w, "PLUS")), float(total))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), fvalues, st.booleans()),
        max_size=30,
    )
)
def test_pending_log_equals_eager_application(updates):
    """Replaying a set/remove log lazily == applying it eagerly."""
    from repro.graphblas import blocking, nonblocking

    with nonblocking():
        lazy = Matrix(FP64, 6, 6)
        for i, j, v, is_del in updates:
            if is_del:
                lazy.remove_element(i, j)
            else:
                lazy.set_element(i, j, v)
        lazy.wait()
    with blocking():
        eager = Matrix(FP64, 6, 6)
        for i, j, v, is_del in updates:
            if is_del:
                eager.remove_element(i, j)
            else:
                eager.set_element(i, j, v)
    assert lazy.isequal(eager)


@settings(max_examples=20, deadline=None)
@given(sparse_matrix(), sparse_matrix())
def test_min_plus_distributes_like_shortest_paths(A, B):
    """(min,+) product lower-bounds any single term: C[i,j] <= a_ik + b_kj."""
    C = Matrix(FP64, 7, 7)
    ops.mxm(C, A, B, "MIN_PLUS")
    ar, ac, av = A.extract_tuples()
    bd = B.to_dense(fill=np.inf)
    bp = B.pattern()
    cd = C.to_dense(fill=np.inf)
    cp = C.pattern()
    for i, k, x in zip(ar, ac, av):
        for j in range(7):
            if bp[k, j]:
                assert cp[i, j]
                assert cd[i, j] <= x + bd[k, j] + 1e-9
