"""GxB_subassign: region-scoped masks, conformance with the dense mimic."""

import numpy as np
import pytest

from repro.graphblas import Matrix, Vector, subassign
from repro.graphblas import operations as ops
from repro.graphblas import reference as ref
from repro.graphblas.errors import DimensionMismatch, InvalidValue
from tests.helpers import random_matrix_np, random_vector_np


def _mk(rng, m, n, density=0.4):
    A, _, _ = random_matrix_np(rng, m, n, density)
    return A, ref.RefMatrix.from_matrix(A)


def _mkv(rng, n, density=0.5):
    v, _, _ = random_vector_np(rng, n, density)
    return v, ref.RefVector.from_vector(v)


class TestSubassignConformance:
    @pytest.mark.parametrize("accum", [None, "PLUS"])
    @pytest.mark.parametrize("desc", [None, "R", "C", "S", "RSC"])
    @pytest.mark.parametrize("what", ["matrix", "scalar"])
    def test_matrix_region(self, accum, desc, what):
        rng = np.random.default_rng(7)
        C0, rC0 = _mk(rng, 8, 8)
        I = np.array([1, 4, 6])
        J = np.array([0, 3, 7])
        M, rM = _mk(rng, 3, 3, density=0.5)  # region-sized mask
        if what == "matrix":
            A, rA = _mk(rng, 3, 3, density=0.7)
        else:
            A, rA = 9.5, 9.5
        C = C0.dup()
        subassign(C, A, I, J, mask=M, accum=accum, desc=desc)
        expected = ref.ref_subassign(rC0, rA, I, J, mask=rM, accum=accum, desc=desc)
        assert expected.matches(C), (accum, desc, what)

    @pytest.mark.parametrize("accum", [None, "MAX"])
    @pytest.mark.parametrize("desc", [None, "R", "SC"])
    def test_vector_region(self, accum, desc):
        rng = np.random.default_rng(8)
        w0, rw0 = _mkv(rng, 10)
        I = np.array([2, 5, 9])
        m, rm = _mkv(rng, 3, density=0.6)
        u, ru = _mkv(rng, 3, density=0.7)
        w = w0.dup()
        subassign(w, u, I, mask=m, accum=accum, desc=desc)
        expected = ref.ref_subassign(rw0, ru, I, mask=rm, accum=accum, desc=desc)
        assert expected.matches(w), (accum, desc)

    def test_row_and_col_vector_operand(self):
        rng = np.random.default_rng(9)
        C0, rC0 = _mk(rng, 6, 6)
        u, ru = _mkv(rng, 4, density=0.8)
        C = C0.dup()
        subassign(C, u, np.array([2]), np.array([0, 1, 3, 5]))
        expected = ref.ref_subassign(rC0, ru, np.array([2]), np.array([0, 1, 3, 5]))
        assert expected.matches(C)
        C2 = C0.dup()
        subassign(C2, u, np.array([0, 1, 3, 5]), np.array([4]))
        expected2 = ref.ref_subassign(
            rC0, ru, np.array([0, 1, 3, 5]), np.array([4])
        )
        assert expected2.matches(C2)


class TestSubassignVsAssign:
    def test_replace_is_region_scoped(self):
        """The defining difference: REPLACE only clears inside the region."""
        C = Matrix.from_dense(np.ones((4, 4)))
        A = Matrix("FP64", 2, 2)  # empty operand
        M = Matrix("BOOL", 2, 2)  # empty mask: nothing admitted
        sub = C.dup()
        subassign(sub, A, [0, 1], [0, 1], mask=M, desc="RS")
        # region cleared, everything outside untouched
        assert sub.nvals == 12
        assert sub.get(0, 0) is None and sub.get(3, 3) == 1.0

    def test_mask_dimensions_differ_from_assign(self):
        C = Matrix.from_dense(np.ones((4, 4)))
        region_mask = Matrix.from_coo([0], [0], [True], nrows=2, ncols=2)
        # subassign wants a region-shaped mask; assign wants a C-shaped one
        subassign(C.dup(), 5.0, [0, 1], [0, 1], mask=region_mask)
        with pytest.raises(DimensionMismatch):
            ops.assign(C.dup(), 5.0, [0, 1], [0, 1], mask=region_mask)
        with pytest.raises(DimensionMismatch):
            subassign(
                C.dup(), 5.0, [0, 1], [0, 1],
                mask=Matrix.from_dense(np.ones((4, 4), dtype=bool)),
            )

    def test_equivalent_when_unmasked(self):
        rng = np.random.default_rng(11)
        C0, _ = _mk(rng, 7, 7)
        A, _ = _mk(rng, 2, 3, density=0.8)
        I, J = np.array([1, 5]), np.array([0, 2, 6])
        via_assign = C0.dup()
        ops.assign(via_assign, A, I, J)
        via_sub = C0.dup()
        subassign(via_sub, A, I, J)
        assert via_assign.isequal(via_sub)

    def test_duplicate_indices_rejected(self):
        C = Matrix("FP64", 3, 3)
        with pytest.raises(InvalidValue):
            subassign(C, 1.0, [0, 0], [1])

    def test_shape_mismatch(self):
        C = Matrix("FP64", 4, 4)
        A = Matrix("FP64", 3, 3)
        with pytest.raises(DimensionMismatch):
            subassign(C, A, [0, 1], [0, 1])
