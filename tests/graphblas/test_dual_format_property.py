"""Property test: the dual-orientation twin can never be served stale.

Hypothesis drives random interleavings of ``set_element`` /
``remove_element`` / ``wait`` / pull-phase ``mxv`` against a matrix in
each of the four storage formats.  After every step where a twin is
cached, it must equal a fresh conversion of the primary store; and the
pull ``mxv`` (which reads through the orientation cache) must equal a
dense-matvec oracle computed from the current entries.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphblas import Matrix, Vector, engine
from repro.graphblas import operations as ops

N = 8

FORMATS = ("csr", "csc", "hypercsr", "hypercsc")

_action = st.one_of(
    st.tuples(
        st.just("set"),
        st.integers(0, N - 1),
        st.integers(0, N - 1),
        st.integers(-5, 5),
    ),
    st.tuples(st.just("remove"), st.integers(0, N - 1), st.integers(0, N - 1)),
    st.tuples(st.just("wait")),
    st.tuples(st.just("mxv_pull")),
)


@pytest.fixture(autouse=True)
def _engine_on():
    engine.reset()
    engine.set_engine(True)
    yield
    engine.reset()


def _assert_twin_fresh(A: Matrix) -> None:
    """The cached twin (if any) must be a faithful conversion of _store.

    While updates are pending the twin is allowed to survive with a stale
    epoch mark (``wait()`` will patch or drop it, and ``_oriented`` never
    serves it before waiting) — it must still flip the *settled* store.
    """
    if A._alt is None:
        return
    if not A.has_pending:
        assert A._alt_epoch == A._epoch, "stale twin is being retained as current"
    fresh = A._store.with_orientation(A._store.orientation.flipped)
    assert A._alt.orientation == fresh.orientation
    assert A._alt.hyper == fresh.hyper
    assert np.array_equal(A._alt.indptr, fresh.indptr)
    assert np.array_equal(A._alt.minor, fresh.minor)
    assert np.array_equal(A._alt.values, fresh.values)
    if fresh.hyper:
        assert np.array_equal(A._alt.h, fresh.h)


@settings(max_examples=50, deadline=None)
@given(
    fmt=st.sampled_from(FORMATS),
    actions=st.lists(_action, min_size=1, max_size=12),
)
def test_twin_never_stale_under_interleaved_mutation(fmt, actions):
    A = Matrix("FP64", N, N)
    A.set_format(fmt)
    u = Vector("FP64", N)
    for k in range(0, N, 2):
        u.set_element(k, float(k + 1))
    shadow = np.zeros((N, N))  # dense oracle of A's current contents

    for act in actions:
        if act[0] == "set":
            _, i, j, v = act
            A.set_element(i, j, float(v))
            shadow[i, j] = float(v)
        elif act[0] == "remove":
            _, i, j = act
            A.remove_element(i, j)
            shadow[i, j] = 0.0
        elif act[0] == "wait":
            A.wait()
        else:  # mxv_pull reads A through the orientation cache
            w = Vector("FP64", N)
            ops.mxv(w, A, u, "PLUS_TIMES", method="pull")
            dense_u = u.to_dense()
            expect = shadow @ dense_u
            got = w.to_dense()
            # positions where every product is absent stay unstored; the
            # oracle's zeros there match to_dense's fill
            assert np.allclose(got, expect)
        _assert_twin_fresh(A)

    # final consistency: both orientations agree with the shadow
    A.wait()
    _assert_twin_fresh(A)
    r, c, vals = A.extract_tuples()
    dense = np.zeros((N, N))
    dense[r, c] = vals
    assert np.array_equal(dense, shadow)
