"""Storage formats: CSR/CSC/hypersparse conversions and memory accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphblas import FP64, INT64, Matrix
from repro.graphblas.errors import InvalidObject, InvalidValue
from repro.graphblas.formats import Orientation, SparseStore, group_starts, reduce_by_segments
from repro.graphblas.ops import binary


def make_store(rows, cols, vals, nr, nc, orientation=Orientation.ROW, hyper=False):
    major = rows if orientation is Orientation.ROW else cols
    minor = cols if orientation is Orientation.ROW else rows
    n_major = nr if orientation is Orientation.ROW else nc
    n_minor = nc if orientation is Orientation.ROW else nr
    return SparseStore.from_coo(
        orientation,
        n_major,
        n_minor,
        np.asarray(major, dtype=np.int64),
        np.asarray(minor, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
        FP64,
        hyper=hyper,
    )


class TestFromCoo:
    def test_basic_csr(self):
        s = make_store([0, 0, 2], [1, 3, 0], [1.0, 2.0, 3.0], 3, 4)
        s.check_valid()
        assert s.nvals == 3
        assert s.indptr.tolist() == [0, 2, 2, 3]

    def test_unsorted_input_is_sorted(self):
        s = make_store([2, 0, 0], [0, 3, 1], [3.0, 2.0, 1.0], 3, 4)
        major, minor, vals = s.to_coo()
        assert major.tolist() == [0, 0, 2]
        assert minor.tolist() == [1, 3, 0]
        assert vals.tolist() == [1.0, 2.0, 3.0]

    def test_duplicates_folded_with_dup(self):
        s = SparseStore.from_coo(
            Orientation.ROW, 2, 2,
            np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([1.0, 2.0, 3.0]),
            FP64, dup=binary("PLUS"),
        )
        assert s.nvals == 1 and s.values[0] == 6.0

    def test_duplicates_without_dup_raise(self):
        with pytest.raises(InvalidValue):
            SparseStore.from_coo(
                Orientation.ROW, 2, 2,
                np.array([0, 0]), np.array([1, 1]), np.array([1.0, 2.0]),
                FP64, dup=None,
            )

    def test_dup_order_matters_for_nonreorderable_op(self):
        # spec: duplicates fold in sequence order; MINUS is order-sensitive
        s = SparseStore.from_coo(
            Orientation.ROW, 1, 1,
            np.array([0, 0, 0]), np.array([0, 0, 0]), np.array([10.0, 3.0, 2.0]),
            FP64, dup=binary("MINUS"),
        )
        assert s.values[0] == 5.0  # (10 - 3) - 2


class TestHyper:
    def test_hyper_memory_is_o_of_e(self):
        """Paper II.A: hypersparse needs O(e), CSR needs O(n + e)."""
        n = 1_000_000
        s_full = make_store([5], [5], [1.0], n, n)
        s_hyper = s_full.to_hyper()
        assert s_full.nbytes > 8 * n  # pointer array dominates
        assert s_hyper.nbytes < 200
        assert s_hyper.nvals == s_full.nvals == 1

    def test_hyper_roundtrip(self):
        s = make_store([0, 5, 5, 9], [1, 0, 3, 9], [1, 2, 3, 4.0], 10, 10)
        h = s.to_hyper()
        h.check_valid()
        assert h.h.tolist() == [0, 5, 9]
        back = h.to_full_pointer()
        back.check_valid()
        assert np.array_equal(back.indptr, s.indptr)
        assert np.array_equal(back.minor, s.minor)

    def test_major_ranges_hyper_vs_full(self):
        s = make_store([0, 5, 5, 9], [1, 0, 3, 9], [1, 2, 3, 4.0], 10, 10)
        h = s.to_hyper()
        q = np.array([0, 1, 5, 9])
        fs, fe = s.major_ranges(q)
        hs, he = h.major_ranges(q)
        assert (fe - fs).tolist() == (he - hs).tolist() == [1, 0, 2, 1]

    def test_empty_hyper(self):
        s = SparseStore.empty(Orientation.ROW, 100, 100, FP64, hyper=True)
        s.check_valid()
        assert s.nvals == 0 and s.nvec == 0


class TestConversions:
    def test_orientation_flip_preserves_entries(self):
        s = make_store([0, 0, 2, 1], [1, 3, 0, 2], [1, 2, 3, 4.0], 3, 4)
        f = s.with_orientation(Orientation.COL)
        f.check_valid()
        assert f.orientation is Orientation.COL
        assert f.n_major == 4 and f.n_minor == 3
        # flip back and compare coordinate sets
        major, minor, vals = f.to_coo()
        pairs = sorted(zip(minor.tolist(), major.tolist(), vals.tolist()))
        orig_major, orig_minor, orig_vals = s.to_coo()
        orig = sorted(
            zip(orig_major.tolist(), orig_minor.tolist(), orig_vals.tolist())
        )
        assert pairs == orig

    def test_transposed_is_o1_view(self):
        s = make_store([0, 1], [1, 2], [1.0, 2.0], 3, 3)
        t = s.transposed()
        assert t.orientation is Orientation.COL
        assert t.minor is s.minor  # no copy

    def test_vector_counts(self):
        s = make_store([0, 0, 2], [1, 3, 0], [1, 2, 3.0], 4, 4)
        assert s.vector_counts().tolist() == [2, 0, 1, 0]
        assert s.to_hyper().vector_counts().tolist() == [2, 0, 1, 0]


class TestValidation:
    def test_corrupt_indptr_detected(self):
        s = make_store([0], [1], [1.0], 2, 2)
        s.indptr = np.array([0, 5, 1], dtype=np.int64)
        with pytest.raises(InvalidObject):
            s.check_valid()

    def test_out_of_range_minor_detected(self):
        s = make_store([0], [1], [1.0], 2, 2)
        s.minor = np.array([7], dtype=np.int64)
        with pytest.raises(InvalidObject):
            s.check_valid()


class TestHelpers:
    def test_group_starts(self):
        assert group_starts(np.array([1, 1, 2, 5, 5, 5])).tolist() == [0, 2, 3]
        assert group_starts(np.array([], dtype=np.int64)).tolist() == []

    def test_reduce_by_segments_binop(self):
        out = reduce_by_segments(
            binary("PLUS"), np.array([1.0, 2.0, 3.0]), np.array([0, 2]), FP64
        )
        assert out.tolist() == [3.0, 3.0]

    def test_reduce_by_segments_nonufunc_left_fold_order(self):
        # MINUS has no numpy ufunc here and is non-associative: the fold
        # must run strictly left-to-right within each segment.
        vals = np.array([10, 3, 2, 7, 100, 30, 5, 1], dtype=np.int64)
        starts = np.array([0, 3, 4])
        out = reduce_by_segments(binary("MINUS"), vals, starts, INT64)
        assert out.tolist() == [(10 - 3) - 2, 7, ((100 - 30) - 5) - 1]
        assert out.dtype == np.int64
        # RMINUS(x, y) = y - x distinguishes argument order as well
        out = reduce_by_segments(binary("RMINUS"), vals, starts, INT64)
        assert out.tolist() == [2 - (3 - 10), 7, 1 - (5 - (30 - 100))]

    def test_reduce_by_segments_nonufunc_ragged_segments(self):
        # segment lengths 1 and 4: short segments must stop folding early
        vals = np.array([9.0, 64.0, 2.0, 2.0, 2.0])
        out = reduce_by_segments(binary("DIV"), vals, np.array([0, 1]), FP64)
        assert out.tolist() == [9.0, 8.0]
        empty = reduce_by_segments(
            binary("MINUS"),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            INT64,
        )
        assert empty.size == 0 and empty.dtype == np.int64


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 7), st.integers(0, 7), st.floats(-5, 5, allow_nan=False)
        ),
        max_size=40,
    ),
    st.booleans(),
)
def test_property_coo_roundtrip(entries, hyper):
    """from_coo -> to_coo is the identity on deduplicated sorted entries."""
    seen = {}
    for r, c, v in entries:
        seen[(r, c)] = v
    if seen:
        rows, cols = map(np.asarray, zip(*sorted(seen)))
        vals = np.asarray([seen[k] for k in sorted(seen)])
    else:
        rows = cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0)
    s = SparseStore.from_coo(
        Orientation.ROW, 8, 8, rows, cols, vals, FP64, hyper=hyper
    )
    s.check_valid()
    major, minor, got = s.to_coo()
    assert major.tolist() == list(rows)
    assert minor.tolist() == list(cols)
    assert got.tolist() == list(vals)
    assert s.nbytes == s.indptr.nbytes + s.minor.nbytes + s.values.nbytes + (
        s.h.nbytes if hyper else 0
    )
