"""The opaque Vector: construction, pending log, access, whole-object ops."""

import numpy as np
import pytest

from repro.graphblas import FP64, NoValue, Vector, blocking, nonblocking
from repro.graphblas.errors import (
    IndexOutOfBounds,
    InvalidValue,
    OutputNotEmpty,
)


class TestConstruction:
    def test_new(self):
        v = Vector.new("FP64", 5)
        assert v.size == 5 and v.nvals == 0

    def test_nonpositive_size(self):
        with pytest.raises(InvalidValue):
            Vector("FP64", 0)

    def test_from_coo(self):
        v = Vector.from_coo([3, 1], [1.0, 2.0], size=5)
        assert v.nvals == 2 and v[1] == 2.0 and v[3] == 1.0

    def test_from_coo_dup(self):
        v = Vector.from_coo([1, 1], [1.0, 2.0], size=3, dup="PLUS")
        assert v[1] == 3.0

    def test_from_dense(self):
        v = Vector.from_dense(np.array([1.0, 0.0, 3.0]), missing=0)
        assert v.nvals == 2

    def test_full(self):
        v = Vector.full(7.0, 4)
        assert v.nvals == 4 and v.to_dense().tolist() == [7.0] * 4

    def test_infer_size(self):
        v = Vector.from_coo([9], [1.0])
        assert v.size == 10


class TestAccess:
    def test_set_get(self):
        v = Vector.new("INT64", 3)
        v[1] = 5
        assert v[1] == 5

    def test_missing(self):
        v = Vector.new("FP64", 3)
        with pytest.raises(NoValue):
            v.extract_element(0)
        assert v.get(0, default=99) == 99

    def test_bounds(self):
        v = Vector.new("FP64", 3)
        with pytest.raises(IndexOutOfBounds):
            v.set_element(3, 1.0)
        with pytest.raises(IndexOutOfBounds):
            v.extract_element(-1)


class TestPendingLog:
    def test_set_remove_ordering(self):
        with nonblocking():
            v = Vector.new("FP64", 4)
            v.set_element(0, 1.0)
            v.remove_element(0)
            v.set_element(1, 2.0)
            assert v.nvals == 1 and v[1] == 2.0

    def test_last_writer_wins(self):
        with nonblocking():
            v = Vector.new("FP64", 2)
            v.set_element(0, 1.0)
            v.set_element(0, 9.0)
            assert v[0] == 9.0

    def test_blocking(self):
        with blocking():
            v = Vector.new("FP64", 2)
            v.set_element(0, 1.0)
            assert not v.has_pending

    def test_zombie_on_stored(self):
        v = Vector.from_coo([0, 1], [1.0, 2.0], size=3)
        v.remove_element(1)
        assert v.nvals == 1


class TestBuild:
    def test_requires_empty(self):
        v = Vector.from_coo([0], [1.0], size=2)
        with pytest.raises(OutputNotEmpty):
            v.build([1], [2.0])

    def test_bounds(self):
        v = Vector.new("FP64", 2)
        with pytest.raises(IndexOutOfBounds):
            v.build([5], [1.0])

    def test_dup_min_scatter(self):
        v = Vector.new("INT64", 4)
        v.build([2, 2, 0], [5, 3, 1], dup="MIN")
        assert v[2] == 3 and v[0] == 1

    def test_no_dup_raises(self):
        v = Vector.new("FP64", 3)
        with pytest.raises(InvalidValue):
            v.build([1, 1], [1.0, 2.0], dup=None)

    def test_length_mismatch(self):
        v = Vector.new("FP64", 3)
        with pytest.raises(InvalidValue):
            v.build([1, 2], [1.0])


class TestWholeObject:
    def test_dup_deep(self):
        v = Vector.from_coo([0], [1.0], size=2)
        w = v.dup()
        w.set_element(1, 2.0)
        assert v.nvals == 1 and w.nvals == 2

    def test_clear(self):
        v = Vector.from_coo([0], [1.0], size=2)
        v.clear()
        assert v.nvals == 0 and v.size == 2

    def test_resize(self):
        v = Vector.from_coo([0, 4], [1.0, 2.0], size=5)
        v.resize(3)
        assert v.size == 3 and v.nvals == 1
        v.resize(10)
        assert v.size == 10 and v.nvals == 1

    def test_to_dense_fill(self):
        v = Vector.from_coo([1], [5.0], size=3)
        assert v.to_dense(fill=-1).tolist() == [-1.0, 5.0, -1.0]

    def test_pattern_and_density(self):
        v = Vector.from_coo([0, 2], [1.0, 2.0], size=4)
        assert v.pattern().tolist() == [True, False, True, False]
        assert v.density == 0.5

    def test_isequal(self):
        a = Vector.from_coo([0], [1.0], size=2)
        b = Vector.from_coo([0], [1.0], size=2)
        c = Vector.from_coo([1], [1.0], size=2)
        assert a.isequal(b) and not a.isequal(c) and not a.isequal(42)

    def test_extract_tuples_sorted(self):
        v = Vector.from_coo([5, 1, 3], [1.0, 2.0, 3.0], size=6)
        idx, vals = v.extract_tuples()
        assert idx.tolist() == [1, 3, 5]
        assert vals.tolist() == [2.0, 3.0, 1.0]
