"""The compiled kernel tier: backend wiring, cache, telemetry, parity.

Covers the fifth backend end to end — registry and fallback-chain
behavior (including the never-raise warn-once path when no toolchain is
usable), the compiled-kernel LRU and its warm reuse across calls, the
``compiled.kernel`` / ``compiled.early_exit`` telemetry and their obs
metrics, the ``cmp`` column in EXPLAIN, the ``GxB_Compiled_set/get``
C-API option, terminal early exit, and value parity against the
optimized engine (bit-identical for order-insensitive add monoids and
integer types, tolerance-checked for float PLUS where numpy's unrolled
reduceat and the scalar SPA legitimately differ in the last ulp).

The whole module runs on whatever toolchain ``auto`` resolves to — cc
in a bare container, numba when the ``[compiled]`` extra is installed —
and parity classes are skipped when neither exists.
"""

import os
import warnings

import numpy as np
import pytest

from repro import obs
from repro.graphblas import Matrix, Vector, backends, capi, envutil, telemetry
from repro.graphblas import compiled
from repro.graphblas import operations as ops
from repro.graphblas.backends import get_backend, set_default_backend
from repro.graphblas.backends.differential import DifferentialBackend
from repro.graphblas.types import BOOL, FP64, INT64

HAVE_TIER = compiled.available()
needs_tier = pytest.mark.skipif(
    not HAVE_TIER, reason="no compiled toolchain (numba or cc) available"
)


@pytest.fixture(autouse=True)
def _clean_tier():
    compiled.reset()
    yield
    set_default_backend(None)
    compiled.reset()
    envutil.reset_warned()


def rand_pair(seed=0, n=40, density=0.15):
    rng = np.random.default_rng(seed)
    def one():
        dense = np.where(rng.random((n, n)) < density,
                         rng.standard_normal((n, n)), 0.0)
        return Matrix.from_dense(dense, missing=0.0)
    return one(), one()


def rand_vec(seed=1, n=40, density=0.3):
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random(n) < density, rng.standard_normal(n), 0.0)
    return Vector.from_dense(dense, missing=0.0)


class TestRegistryAndFallback:
    def test_compiled_registered(self):
        assert "compiled" in backends.available_backends()
        be = get_backend("compiled")
        assert be.name == "compiled"
        assert be.fallback == "optimized"

    def test_off_toolchain_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_COMPILED_TOOLCHAIN", "off")
        compiled.reset()
        envutil.reset_warned()
        assert not compiled.available()
        A, B = rand_pair()
        C = Matrix(FP64, A.nrows, B.ncols)
        set_default_backend("compiled")
        with pytest.warns(RuntimeWarning, match="compiled"):
            ops.mxm(C, A, B, "PLUS_TIMES")
        assert C.nvals > 0  # served by the fallback, never raised
        # the warning is once-per-process: a second op stays silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "PLUS_TIMES")

    def test_fallback_telemetry_emitted(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_COMPILED_TOOLCHAIN", "off")
        compiled.reset()
        A, B = rand_pair()
        C = Matrix(FP64, A.nrows, B.ncols)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with telemetry.collect() as col:
                ops.mxm(C, A, B, "PLUS_TIMES", backend="compiled")
        falls = [e for e in col.events
                 if e["type"] == "decision" and e["name"] == "backend.fallback"]
        assert any(e["args"]["declined"] == "compiled"
                   and e["args"]["fallback"] == "optimized" for e in falls)

    @needs_tier
    def test_unsupported_semiring_declined(self):
        # user-defined ops have no template: the plan must fall through
        A, B = rand_pair()
        C = Matrix(FP64, A.nrows, B.ncols)
        with telemetry.collect() as col:
            ops.mxm(C, A, B, "PLUS_TIMES", backend="compiled",
                    method="heap")  # heap method is not compiled
        falls = [e for e in col.events
                 if e["type"] == "decision" and e["name"] == "backend.fallback"]
        assert any(e["args"]["declined"] == "compiled" for e in falls)
        assert C.nvals > 0


@needs_tier
class TestKernelCache:
    def test_warm_reuse(self):
        A, B = rand_pair()
        C = Matrix(FP64, A.nrows, B.ncols)
        ops.mxm(C, A, B, "PLUS_TIMES", backend="compiled")
        s1 = compiled.cache_stats()
        assert s1["misses"] >= 1 and s1["size"] >= 1
        ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "PLUS_TIMES",
                backend="compiled")
        s2 = compiled.cache_stats()
        assert s2["misses"] == s1["misses"]       # no rebuild
        assert s2["hits"] > s1["hits"]            # served from cache

    def test_lru_eviction_on_shrink(self):
        A, B = rand_pair()
        ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "PLUS_TIMES",
                backend="compiled")
        ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "MIN_PLUS",
                backend="compiled")
        assert compiled.cache_stats()["size"] >= 2
        compiled.set_config(capacity=1)
        st = compiled.cache_stats()
        assert st["size"] == 1 and st["evictions"] >= 1

    def test_kernel_telemetry_compile_then_hit(self):
        A, B = rand_pair()
        with telemetry.collect() as col:
            ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "PLUS_TIMES",
                    backend="compiled")
            ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "PLUS_TIMES",
                    backend="compiled")
        evs = [e["args"] for e in col.events
               if e["type"] == "decision" and e["name"] == "compiled.kernel"]
        events = [e["event"] for e in evs]
        assert "compile" in events and "hit" in events
        first_compile = next(e for e in evs if e["event"] == "compile")
        assert first_compile["seconds"] >= 0.0
        assert first_compile["toolchain"] == compiled.toolchain_name()


@needs_tier
class TestObservability:
    def test_plan_done_carries_cache_deltas_and_cmp_column(self):
        A, B = rand_pair()
        C = Matrix(FP64, A.nrows, B.ncols)
        rep = obs.explain(
            lambda: ops.mxm(C, A, B, "PLUS_TIMES", backend="compiled"))
        rec = rep.records[0]
        assert rec["backend"] == "compiled"
        assert rec.get("compiled_compiles", 0) + rec.get("compiled_hits", 0) >= 1
        text = rep.text()
        assert "cmp" in text.splitlines()[1]
        assert "h/" in text and "c" in text  # the Nh/Mc cell rendered

    def test_metrics_registry_series(self):
        obs.reset()
        try:
            obs.enable()
            A, B = rand_pair()
            ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "PLUS_TIMES",
                    backend="compiled")
            ops.mxm(Matrix(FP64, A.nrows, B.ncols), A, B, "PLUS_TIMES",
                    backend="compiled")
            text = obs.prometheus_text()
            assert "graphblas_compiled_kernel_events_total" in text
            assert 'event="compile"' in text and 'event="hit"' in text
            assert "graphblas_compile_seconds" in text
            assert 'graphblas_compiled_kernel_cache{stat="hits"}' in text
            obs.check_prometheus_text(text)
        finally:
            obs.reset()


class TestCapi:
    def test_get_shape(self):
        st = capi.GxB_Compiled_get()
        assert set(st) == {"preference", "toolchain", "available", "cache"}
        assert st["cache"]["capacity"] >= 1

    def test_set_and_get_roundtrip(self):
        assert capi.GxB_Compiled_set("off", cache_size=7) == capi.GrB_SUCCESS
        st = capi.GxB_Compiled_get()
        assert st["preference"] == "off"
        assert st["toolchain"] is None and not st["available"]
        assert st["cache"]["capacity"] == 7

    def test_set_invalid(self):
        assert capi.GxB_Compiled_set("llvm") == capi.Info.INVALID_VALUE
        assert capi.GxB_Compiled_set(cache_size=0) == capi.Info.INVALID_VALUE
        # failed sets leave the config untouched
        assert capi.GxB_Compiled_get()["cache"]["capacity"] != 0


@needs_tier
class TestParity:
    SEMIRINGS = ["PLUS_TIMES", "MIN_PLUS", "MAX_MIN"]

    @pytest.mark.parametrize("sr", SEMIRINGS)
    def test_mxm_matches_optimized(self, sr):
        A, B = rand_pair(seed=3)
        C1 = Matrix(FP64, A.nrows, B.ncols)
        C2 = Matrix(FP64, A.nrows, B.ncols)
        ops.mxm(C1, A, B, sr, backend="compiled")
        ops.mxm(C2, A, B, sr, backend="optimized")
        r1, c1, v1 = C1.extract_tuples()
        r2, c2, v2 = C2.extract_tuples()
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(c1, c2)
        if sr == "PLUS_TIMES":
            # float PLUS is order-sensitive and numpy's reduceat unrolls
            # long segments 8-wide, so the scalar SPA can differ in the
            # last ulp — tolerance-checked, same as the differential tier
            np.testing.assert_allclose(v1, v2, rtol=1e-9, atol=1e-12)
        else:
            # MIN/MAX monoids are order-insensitive: bit-identical
            np.testing.assert_array_equal(v1, v2)

    def test_masked_mxm_dot_path(self):
        A, B = rand_pair(seed=4)
        rng = np.random.default_rng(5)
        md = (rng.random((A.nrows, B.ncols)) < 0.2).astype(np.float64)
        M = Matrix.from_dense(md, missing=0.0)
        C1 = Matrix(FP64, A.nrows, B.ncols)
        C2 = Matrix(FP64, A.nrows, B.ncols)
        with telemetry.collect() as col:
            ops.mxm(C1, A, B, "PLUS_TIMES", mask=M, backend="compiled")
        methods = [e["args"]["method"] for e in col.events
                   if e["type"] == "decision" and e["name"] == "spgemm.method"]
        assert "dot" in methods
        ops.mxm(C2, A, B, "PLUS_TIMES", mask=M, backend="optimized")
        r1, c1, v1 = C1.extract_tuples()
        r2, c2, v2 = C2.extract_tuples()
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_allclose(v1, v2, rtol=1e-9, atol=1e-12)

    def test_mxv_vxm_both_directions(self):
        A, _ = rand_pair(seed=6)
        for nv, sr in ((2, "PLUS_TIMES"), (35, "MIN_PLUS")):
            u = rand_vec(seed=nv, density=nv / 40)
            for op in (ops.mxv, ops.vxm):
                w1 = Vector(FP64, A.nrows)
                w2 = Vector(FP64, A.nrows)
                op(w1, A, u, sr, backend="compiled") if op is ops.mxv \
                    else op(w1, u, A, sr, backend="compiled")
                op(w2, A, u, sr, backend="optimized") if op is ops.mxv \
                    else op(w2, u, A, sr, backend="optimized")
                i1, v1 = w1.extract_tuples()
                i2, v2 = w2.extract_tuples()
                np.testing.assert_array_equal(i1, i2)
                np.testing.assert_allclose(v1, v2, rtol=1e-9, atol=1e-12)

    def test_bit_identical_with_tier_disabled(self, monkeypatch):
        # with GRAPHBLAS_COMPILED_TOOLCHAIN=off the compiled backend is
        # a pure pass-through: results are byte-for-byte what the
        # optimized engine produces on its own
        A, B = rand_pair(seed=7)
        monkeypatch.setenv("GRAPHBLAS_COMPILED_TOOLCHAIN", "off")
        compiled.reset()
        C_off = Matrix(FP64, A.nrows, B.ncols)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ops.mxm(C_off, A, B, "PLUS_TIMES", backend="compiled")
        C_opt = Matrix(FP64, A.nrows, B.ncols)
        ops.mxm(C_opt, A, B, "PLUS_TIMES", backend="optimized")
        r1, c1, v1 = C_off.extract_tuples()
        r2, c2, v2 = C_opt.extract_tuples()
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(v1, v2)

    def test_differential_primary_compiled(self):
        be = DifferentialBackend(primary="compiled")
        A, B = rand_pair(seed=8, n=16)
        u = rand_vec(seed=9, n=16)
        plan_ops = [
            lambda: ops.mxm(Matrix(FP64, 16, 16), A, B, "PLUS_TIMES",
                            backend=be),
            lambda: ops.mxv(Vector(FP64, 16), A, u, "MIN_PLUS", backend=be),
        ]
        for f in plan_ops:
            f()
        assert be.stats["divergences"] == 0
        assert be.stats["verified"] == len(plan_ops)


@needs_tier
class TestEarlyExit:
    def _bool_inputs(self, n=64, seed=11):
        rng = np.random.default_rng(seed)
        Ad = rng.random((n, n)) < 0.4
        ud = rng.random(n) < 0.5
        A = Matrix.from_dense(Ad.astype(np.bool_), missing=False)
        u = Vector.from_dense(ud.astype(np.bool_), missing=False)
        return A, u

    def test_lor_land_pull_terminates_and_matches(self):
        A, u = self._bool_inputs()
        w1 = Vector(BOOL, A.nrows)
        w2 = Vector(BOOL, A.nrows)
        with telemetry.collect() as col:
            ops.mxv(w1, A, u, "LOR_LAND", backend="compiled")
        ops.mxv(w2, A, u, "LOR_LAND", backend="optimized")
        i1, v1 = w1.extract_tuples()
        i2, v2 = w2.extract_tuples()
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_array_equal(v1, v2)
        exits = [e["args"] for e in col.events
                 if e["type"] == "decision"
                 and e["name"] == "compiled.early_exit"]
        assert exits and exits[0]["terminated"] > 0
        # early exit means rows stopped before scanning every candidate
        assert exits[0]["scanned"] < exits[0].get("possible", float("inf")) \
            if "possible" in exits[0] else True

    def test_max_min_terminal_fp64(self):
        # MAX over FP64 terminates at +inf: the first column's product
        # min(inf, inf) = inf hits the annihilator immediately
        n = 32
        dense = np.full((n, n), 1.0)
        dense[:, 0] = np.inf
        A = Matrix.from_dense(dense, missing=np.nan)
        u = Vector.from_dense(np.full(n, np.inf), missing=0.0)
        w1 = Vector(FP64, n)
        w2 = Vector(FP64, n)
        with telemetry.collect() as col:
            ops.mxv(w1, A, u, "MAX_MIN", backend="compiled")
        ops.mxv(w2, A, u, "MAX_MIN", backend="optimized")
        i1, v1 = w1.extract_tuples()
        i2, v2 = w2.extract_tuples()
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_array_equal(v1, v2)
        exits = [e["args"] for e in col.events
                 if e["type"] == "decision"
                 and e["name"] == "compiled.early_exit"]
        assert any(e["terminated"] > 0 for e in exits)


@needs_tier
class TestPythonOracle:
    """The interpreted rendering of the generated source is the oracle
    for the native toolchains: same template, no compiler in between."""

    def test_cc_or_numba_matches_python_toolchain(self):
        A, B = rand_pair(seed=12, n=24)
        native = Matrix(FP64, 24, 24)
        ops.mxm(native, A, B, "PLUS_TIMES", backend="compiled")
        compiled.set_config(toolchain="python")
        compiled.clear_cache()
        assert compiled.toolchain_name() == "python"
        interp = Matrix(FP64, 24, 24)
        ops.mxm(interp, A, B, "PLUS_TIMES", backend="compiled")
        r1, c1, v1 = native.extract_tuples()
        r2, c2, v2 = interp.extract_tuples()
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(v1, v2)

    def test_int64_semiring_parity(self):
        rng = np.random.default_rng(13)
        n = 20
        Ad = np.where(rng.random((n, n)) < 0.3,
                      rng.integers(-5, 6, (n, n)), 0)
        A = Matrix.from_dense(Ad.astype(np.int64), missing=0)
        B = Matrix.from_dense(Ad.T.astype(np.int64), missing=0)
        for sr in ("PLUS_TIMES", "MIN_PLUS", "MAX_MIN"):
            C1 = Matrix(INT64, n, n)
            C2 = Matrix(INT64, n, n)
            ops.mxm(C1, A, B, sr, backend="compiled")
            ops.mxm(C2, A, B, sr, backend="optimized")
            r1, c1, v1 = C1.extract_tuples()
            r2, c2, v2 = C2.extract_tuples()
            np.testing.assert_array_equal(r1, r2)
            np.testing.assert_array_equal(c1, c2)
            np.testing.assert_array_equal(v1, v2)
