"""Rectangular-shape operations against direct NumPy dense oracles.

Independent of the reference mimic: these tests validate operations on
non-square shapes by computing the expected dense result directly with
NumPy, guarding against row/column transposition bugs that square-matrix
tests cannot see.
"""

import numpy as np
import pytest

from repro.graphblas import Matrix, Vector
from repro.graphblas import operations as ops
from tests.helpers import random_matrix_np, random_vector_np

SHAPES = [(3, 9), (9, 3), (1, 8), (8, 1), (5, 7)]


@pytest.mark.parametrize("m,n", SHAPES)
class TestRectangular:
    def test_mxm_chain(self, m, n, rng):
        A, dA, _ = random_matrix_np(rng, m, n, 0.5)
        B, dB, _ = random_matrix_np(rng, n, m, 0.5)
        C = Matrix("FP64", m, m)
        ops.mxm(C, A, B)
        assert np.allclose(C.to_dense(), dA @ dB)

    def test_mxm_transposes(self, m, n, rng):
        A, dA, _ = random_matrix_np(rng, m, n, 0.5)
        B, dB, _ = random_matrix_np(rng, m, n, 0.5)
        C = Matrix("FP64", n, n)
        ops.mxm(C, A, B, desc="T0")
        assert np.allclose(C.to_dense(), dA.T @ dB)
        C2 = Matrix("FP64", m, m)
        ops.mxm(C2, A, B, desc="T1")
        assert np.allclose(C2.to_dense(), dA @ dB.T)

    def test_mxv_and_vxm(self, m, n, rng):
        A, dA, _ = random_matrix_np(rng, m, n, 0.5)
        u, du, _ = random_vector_np(rng, n, 0.6)
        w = Vector("FP64", m)
        ops.mxv(w, A, u)
        assert np.allclose(w.to_dense(), dA @ du)
        v, dv, _ = random_vector_np(rng, m, 0.6)
        x = Vector("FP64", n)
        ops.vxm(x, v, A)
        assert np.allclose(x.to_dense(), dv @ dA)

    def test_mxv_transposed(self, m, n, rng):
        A, dA, _ = random_matrix_np(rng, m, n, 0.5)
        u, du, _ = random_vector_np(rng, m, 0.6)
        w = Vector("FP64", n)
        ops.mxv(w, A, u, desc="T0")
        assert np.allclose(w.to_dense(), dA.T @ du)

    def test_transpose(self, m, n, rng):
        A, dA, mask = random_matrix_np(rng, m, n, 0.5)
        C = Matrix("FP64", n, m)
        ops.transpose(C, A)
        assert np.allclose(C.to_dense(), dA.T)
        assert np.array_equal(C.pattern(), mask.T)

    def test_reduce_rows_and_cols(self, m, n, rng):
        A, dA, mask = random_matrix_np(rng, m, n, 0.5)
        wr = Vector("FP64", m)
        ops.reduce_rowwise(wr, A)
        assert np.allclose(wr.to_dense(), dA.sum(axis=1))
        wc = Vector("FP64", n)
        ops.reduce_rowwise(wc, A, desc="T0")
        assert np.allclose(wc.to_dense(), dA.sum(axis=0))

    def test_extract_block(self, m, n, rng):
        A, dA, _ = random_matrix_np(rng, m, n, 0.6)
        I = np.arange(0, m, 2)
        J = np.arange(0, n, 3)
        C = Matrix("FP64", I.size, J.size)
        ops.extract(C, A, I, J)
        assert np.allclose(C.to_dense(), dA[np.ix_(I, J)])

    def test_kron_shape(self, m, n, rng):
        A, dA, _ = random_matrix_np(rng, m, n, 0.4)
        B, dB, _ = random_matrix_np(rng, 2, 3, 0.8)
        C = Matrix("FP64", m * 2, n * 3)
        ops.kronecker(C, A, B, "TIMES")
        assert np.allclose(C.to_dense(), np.kron(dA, dB))


class TestAccumAgainstNumpy:
    def test_accum_union_semantics(self, rng):
        C, dC, mC = random_matrix_np(rng, 6, 6, 0.3)
        A, dA, mA = random_matrix_np(rng, 6, 6, 0.3)
        out = C.dup()
        ops.apply(out, A, "IDENTITY", accum="PLUS")
        exp_val = np.where(mC & mA, dC + dA, np.where(mC, dC, dA))
        exp_pat = mC | mA
        assert np.array_equal(out.pattern(), exp_pat)
        assert np.allclose(np.where(exp_pat, out.to_dense(), 0),
                           np.where(exp_pat, exp_val, 0))

    def test_noncommutative_accum_order(self, rng):
        """accum(C, T): the old value of C is the LEFT operand."""
        C = Matrix.from_coo([0], [0], [10.0], nrows=1, ncols=1)
        A = Matrix.from_coo([0], [0], [3.0], nrows=1, ncols=1)
        ops.apply(C, A, "IDENTITY", accum="MINUS")
        assert C[0, 0] == 7.0  # 10 - 3, not 3 - 10

    def test_replace_clears_unwritten(self, rng):
        C, dC, mC = random_matrix_np(rng, 5, 5, 0.8)
        M, dM, mM = random_matrix_np(rng, 5, 5, 0.3, dtype=np.bool_)
        A, dA, mA = random_matrix_np(rng, 5, 5, 0.8)
        out = C.dup()
        ops.apply(out, A, "IDENTITY", mask=M, desc="RS")
        assert np.array_equal(out.pattern(), mM & mA)


class TestConcatSplit:
    def test_concat_blocks(self, rng):
        A, dA, _ = random_matrix_np(rng, 3, 4, 0.6)
        B, dB, _ = random_matrix_np(rng, 3, 2, 0.6)
        C, dC, _ = random_matrix_np(rng, 2, 4, 0.6)
        D, dD, _ = random_matrix_np(rng, 2, 2, 0.6)
        M = ops.concat([[A, B], [C, D]])
        assert M.shape == (5, 6)
        assert np.allclose(M.to_dense(), np.block([[dA, dB], [dC, dD]]))

    def test_split_is_inverse_of_concat(self, rng):
        A, dA, _ = random_matrix_np(rng, 7, 9, 0.5)
        tiles = ops.split(A, [3, 4], [4, 5])
        back = ops.concat(tiles)
        assert back.isequal(A)

    def test_concat_casts_to_requested_dtype(self, rng):
        A, _, _ = random_matrix_np(rng, 2, 2, 0.9)
        M = ops.concat([[A]], dtype="INT64")
        assert M.dtype.name == "INT64"

    def test_bad_grids(self, rng):
        from repro.graphblas.errors import DimensionMismatch, InvalidValue

        A, _, _ = random_matrix_np(rng, 2, 2, 0.5)
        B, _, _ = random_matrix_np(rng, 3, 2, 0.5)
        with pytest.raises(DimensionMismatch):
            ops.concat([[A, B]])  # differing heights in a grid row
        with pytest.raises(InvalidValue):
            ops.concat([])
        with pytest.raises(DimensionMismatch):
            ops.split(A, [1], [2])  # rows do not sum to nrows


class TestDiag:
    def test_diag_build_and_extract_roundtrip(self, rng):
        from repro.graphblas import Vector, diag, diag_extract

        v = Vector.from_coo([0, 2], [1.5, 2.5], size=4)
        M = diag(v)
        assert M.shape == (4, 4) and M[0, 0] == 1.5 and M[2, 2] == 2.5
        back = diag_extract(M)
        assert back.isequal(v)

    def test_offdiagonals(self, rng):
        from repro.graphblas import Vector, diag, diag_extract

        v = Vector.from_coo([1], [7.0], size=3)
        up = diag(v, k=1)
        assert up.shape == (4, 4) and up[1, 2] == 7.0
        assert diag_extract(up, 1).isequal(v.resize(3) or v)
        down = diag(v, k=-2)
        assert down[3, 1] == 7.0
        got = diag_extract(down, -2)
        assert got[1] == 7.0

    def test_diag_extract_rectangular(self, rng):
        A, dA, _ = random_matrix_np(rng, 4, 7, 0.7)
        d0 = diag_np = np.diagonal(dA)
        from repro.graphblas import diag_extract

        got = diag_extract(A).to_dense()
        assert np.allclose(got, np.where(np.diagonal(dA) != 0, np.diagonal(dA), got))
        assert got.size == 4

    def test_out_of_range_diagonal(self, rng):
        from repro.graphblas import diag_extract
        from repro.graphblas.errors import InvalidValue

        A = Matrix("FP64", 2, 2)
        with pytest.raises(InvalidValue):
            diag_extract(A, 5)
