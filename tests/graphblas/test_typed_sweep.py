"""Domain sweep: core operations across all eleven built-in types.

The conformance suite checks deep mask/accum combinations on FP64; this
sweep checks the *domain* axis — every built-in type through mxm, eWise,
reduce, apply and a build/extract round trip, against the dense reference.
"""

import numpy as np
import pytest

from repro.graphblas import BUILTIN_TYPES, Matrix, Vector
from repro.graphblas import operations as ops
from repro.graphblas import reference as ref

TYPES = [t.np_dtype.type for t in BUILTIN_TYPES]
IDS = [t.name for t in BUILTIN_TYPES]


def _mk_typed(rng, m, n, np_type, density=0.5):
    mask = rng.random((m, n)) < density
    if np_type == np.bool_:
        dense = np.ones((m, n), dtype=bool)
    elif np.issubdtype(np_type, np.integer):
        lo, hi = (0, 5) if np.issubdtype(np_type, np.unsignedinteger) else (-4, 5)
        dense = rng.integers(lo, hi, (m, n)).astype(np_type)
    else:
        dense = rng.uniform(-4, 4, (m, n)).astype(np_type)
    r, c = np.nonzero(mask)
    A = Matrix.from_coo(r, c, dense[mask], nrows=m, ncols=n, dtype=np_type)
    return A, ref.RefMatrix.from_matrix(A)


@pytest.mark.parametrize("np_type", TYPES, ids=IDS)
class TestTypedSweep:
    def test_mxm(self, np_type, rng):
        A, rA = _mk_typed(rng, 5, 5, np_type)
        sr = "LOR_LAND" if np_type == np.bool_ else "PLUS_TIMES"
        C = Matrix(np_type, 5, 5)
        ops.mxm(C, A, A, sr)
        expected = ref.ref_mxm(ref.RefMatrix.zeros(C.dtype, 5, 5), rA, rA, sr)
        assert expected.matches(C)

    def test_ewise_add_and_mult(self, np_type, rng):
        A, rA = _mk_typed(rng, 6, 4, np_type)
        B, rB = _mk_typed(rng, 6, 4, np_type)
        for which, fn, rfn in (
            ("add", ops.ewise_add, ref.ref_ewise_add),
            ("mult", ops.ewise_mult, ref.ref_ewise_mult),
        ):
            op = "LOR" if np_type == np.bool_ else "PLUS"
            C = Matrix(np_type, 6, 4)
            fn(C, A, B, op)
            expected = rfn(ref.RefMatrix.zeros(C.dtype, 6, 4), rA, rB, op)
            assert expected.matches(C), which

    def test_reduce(self, np_type, rng):
        A, rA = _mk_typed(rng, 5, 7, np_type)
        mon = "LOR" if np_type == np.bool_ else "PLUS"
        got = ops.reduce_scalar(A, mon)
        exp = ref.ref_reduce_scalar(rA, mon)
        assert got == exp or np.isclose(float(got), float(exp))
        mon2 = "LAND" if np_type == np.bool_ else "MAX"
        w = Vector(np_type, 5)
        ops.reduce_rowwise(w, A, mon2)
        expected = ref.ref_reduce_rowwise(ref.RefVector.zeros(w.dtype, 5), rA, mon2)
        assert expected.matches(w)

    def test_apply_identity_roundtrip(self, np_type, rng):
        A, rA = _mk_typed(rng, 5, 5, np_type)
        C = Matrix(np_type, 5, 5)
        ops.apply(C, A, "IDENTITY")
        assert C.isequal(A)

    def test_build_extract_roundtrip(self, np_type, rng):
        A, _ = _mk_typed(rng, 6, 6, np_type)
        r, c, v = A.extract_tuples()
        B = Matrix(np_type, 6, 6)
        B.build(r, c, v)
        assert B.isequal(A)

    def test_format_conversions(self, np_type, rng):
        A, _ = _mk_typed(rng, 6, 6, np_type)
        before = A.dup()
        for fmt in ("csc", "hypercsr", "hypercsc", "csr"):
            A.set_format(fmt)
            assert A.isequal(before)

    def test_select_value_predicate(self, np_type, rng):
        A, rA = _mk_typed(rng, 6, 6, np_type)
        thunk = np_type(1) if np_type != np.bool_ else True
        C = Matrix(np_type, 6, 6)
        ops.select(C, A, "VALUEGE", thunk)
        expected = ref.ref_select(ref.RefMatrix.zeros(C.dtype, 6, 6), rA, "VALUEGE", thunk)
        assert expected.matches(C)


class TestCrossDomain:
    """Mixed-domain operations promote like the C API."""

    def test_int_float_mxm_promotes(self, rng):
        A, _ = _mk_typed(rng, 4, 4, np.int32)
        B, _ = _mk_typed(rng, 4, 4, np.float64)
        C = Matrix("FP64", 4, 4)
        ops.mxm(C, A, B, "PLUS_TIMES")
        exp = A.to_dense().astype(np.float64) @ B.to_dense()
        assert np.allclose(np.where(C.pattern(), C.to_dense(), 0),
                           np.where(C.pattern(), exp, 0))

    def test_output_cast_on_write(self, rng):
        A, _ = _mk_typed(rng, 4, 4, np.float64)
        C = Matrix("INT32", 4, 4)  # float results truncate into int32 C
        ops.apply(C, A, "IDENTITY")
        assert np.array_equal(C.to_dense(), A.to_dense().astype(np.int32))

    def test_bool_mask_from_float_values(self, rng):
        A, _ = _mk_typed(rng, 5, 5, np.float64, density=0.9)
        M = Matrix.from_coo([0, 1], [0, 1], [0.0, 2.5], nrows=5, ncols=5)
        C = Matrix("FP64", 5, 5)
        # value mask: the explicit 0.0 entry must NOT admit
        ops.apply(C, A, "IDENTITY", mask=M, desc="R")
        assert C.get(0, 0) is None
        if A.get(1, 1) is not None:
            assert C.get(1, 1) == A.get(1, 1)
