"""Operator algebra: every built-in op's scalar fn and ufunc agree."""

import numpy as np
import pytest

from repro.graphblas import BOOL, FP64, INT32, INT64, binary, indexunary, unary
from repro.graphblas.errors import InvalidValue
from repro.graphblas.ops import (
    BINARY_OPS,
    C_API_BINARY_OPS,
    COMPARISON_OPS,
    INDEXUNARY_OPS,
    SUITESPARSE_BINARY_OPS,
    UNARY_OPS,
    bool_equivalent,
)

RNG = np.random.default_rng(7)


class TestLookup:
    def test_case_insensitive(self):
        assert binary("plus") is binary("PLUS")

    def test_unknown_raises(self):
        with pytest.raises(InvalidValue):
            binary("frobnicate")
        with pytest.raises(InvalidValue):
            unary("frobnicate")
        with pytest.raises(InvalidValue):
            indexunary("frobnicate")

    def test_pair_aliases_oneb(self):
        assert binary("PAIR") is binary("ONEB")


NONPOSITIONAL = sorted(
    name for name, op in BINARY_OPS.items() if op.positional is None
)


class TestBinaryFnUfuncAgree:
    """The scalar fn (reference path) must equal the ufunc (fast path)."""

    @pytest.mark.parametrize("name", NONPOSITIONAL)
    def test_float_inputs(self, name):
        op = binary(name)
        x = RNG.uniform(1, 5, 20)
        y = RNG.uniform(1, 5, 20)
        fast = np.asarray(op.ufunc(x, y), dtype=np.float64)
        slow = np.array([float(op.fn(a, b)) for a, b in zip(x, y)])
        assert np.allclose(fast.astype(np.float64), slow)

    @pytest.mark.parametrize("name", NONPOSITIONAL)
    def test_bool_inputs(self, name):
        op = binary(name)
        x = RNG.random(16) < 0.5
        y = RNG.random(16) < 0.5
        if name == "POW":  # bool**bool is ill-defined in numpy float path
            pytest.skip("POW not defined on BOOL")
        fast = np.asarray(op.ufunc(x, y))
        slow = np.array([op.fn(bool(a), bool(b)) for a, b in zip(x, y)])
        assert np.array_equal(fast.astype(np.float64), slow.astype(np.float64))


class TestBinarySemantics:
    def test_first_second(self):
        assert binary("FIRST").fn(3, 9) == 3
        assert binary("SECOND").fn(3, 9) == 9

    def test_div_by_zero_integer_is_zero(self):
        out = binary("DIV").ufunc(np.array([6, 7]), np.array([0, 2]))
        assert out[0] == 0 and out[1] == 3

    def test_div_by_zero_float_is_inf(self):
        out = binary("DIV").ufunc(np.array([1.0]), np.array([0.0]))
        assert np.isinf(out[0])

    def test_rminus_rdiv(self):
        assert binary("RMINUS").ufunc(np.array([2.0]), np.array([7.0]))[0] == 5.0
        assert binary("RDIV").ufunc(np.array([2.0]), np.array([8.0]))[0] == 4.0

    def test_comparison_output_type_is_bool(self):
        assert binary("GT").out_type(INT64, INT64) is BOOL
        assert binary("ISGT").out_type(INT64, INT64) is INT64

    def test_first_preserves_its_side_type(self):
        assert binary("FIRST").out_type(INT32, FP64) is INT32
        assert binary("SECOND").out_type(INT32, FP64) is FP64

    def test_positional_out_type_is_int64(self):
        assert binary("FIRSTI").out_type(FP64, FP64) is INT64

    def test_positional_apply_raises(self):
        with pytest.raises(InvalidValue):
            binary("SECONDI").apply(np.ones(3), np.ones(3))

    def test_oneb_is_one(self):
        out = binary("ONEB").ufunc(np.array([5.0, 6.0]), np.array([7.0, 8.0]))
        assert out.tolist() == [1.0, 1.0]

    def test_logical_on_nonbool(self):
        out = binary("LOR").ufunc(np.array([0, 2]), np.array([0, 0]))
        assert out.tolist() == [False, True]


class TestUnary:
    @pytest.mark.parametrize("name", sorted(UNARY_OPS))
    def test_fn_ufunc_agree(self, name):
        op = unary(name)
        x = RNG.uniform(0.5, 5, 20)
        fast = np.asarray(op.ufunc(x), dtype=np.float64)
        slow = np.array([float(op.fn(a)) for a in x])
        assert np.allclose(fast, slow)

    def test_minv_integer(self):
        out = unary("MINV").ufunc(np.array([1, 2, 0]))
        assert out.tolist() == [1, 0, 0]

    def test_lnot(self):
        assert unary("LNOT").ufunc(np.array([True, False])).tolist() == [False, True]

    def test_sqrt_promotes_int_to_float(self):
        assert unary("SQRT").out_type(INT64) is FP64
        out = unary("SQRT").apply(np.array([4]), FP64)
        assert out[0] == 2.0


class TestIndexUnary:
    def test_tril_triu(self):
        r = np.array([0, 1, 2])
        c = np.array([1, 1, 1])
        v = np.zeros(3)
        assert indexunary("TRIL").apply(v, r, c, 0).tolist() == [False, True, True]
        assert indexunary("TRIU").apply(v, r, c, 0).tolist() == [True, True, False]

    def test_diag_offdiag(self):
        r = np.array([0, 1])
        c = np.array([0, 2])
        v = np.zeros(2)
        assert indexunary("DIAG").apply(v, r, c, 0).tolist() == [True, False]
        assert indexunary("OFFDIAG").apply(v, r, c, 0).tolist() == [False, True]

    def test_rowindex_thunk(self):
        r = np.array([3, 5])
        out = indexunary("ROWINDEX").apply(np.zeros(2), r, r, 1)
        assert out.tolist() == [4, 6]

    def test_value_predicates(self):
        v = np.array([1.0, 5.0, 9.0])
        z = np.zeros(3, dtype=np.int64)
        assert indexunary("VALUEGT").apply(v, z, z, 4.0).tolist() == [False, True, True]
        assert indexunary("VALUELE").apply(v, z, z, 5.0).tolist() == [True, True, False]
        assert indexunary("VALUEEQ").apply(v, z, z, 5.0).tolist() == [False, True, False]

    def test_all_registered_have_both_paths(self):
        r = np.array([0, 1, 2])
        c = np.array([2, 1, 0])
        v = np.array([1.0, 2.0, 3.0])
        for name in INDEXUNARY_OPS:
            op = indexunary(name)
            fast = np.asarray(op.apply(v, r, c, 1))
            slow = np.array([op.fn(v[k], r[k], c[k], 1) for k in range(3)])
            assert np.array_equal(
                fast.astype(np.float64), slow.astype(np.float64)
            ), name


class TestBoolEquivalence:
    def test_known_collapses(self):
        assert bool_equivalent("MIN") == "LAND"
        assert bool_equivalent("MAX") == "LOR"
        assert bool_equivalent("PLUS") == "LOR"
        assert bool_equivalent("TIMES") == "LAND"
        assert bool_equivalent("MINUS") == "LXOR"
        assert bool_equivalent("DIV") == "FIRST"

    @pytest.mark.parametrize("name", sorted(set(SUITESPARSE_BINARY_OPS + COMPARISON_OPS)))
    def test_equivalence_is_truthful(self, name):
        """The claimed boolean-restriction really computes the same function."""
        op = binary(name)
        eq = binary(bool_equivalent(name))
        for x in (False, True):
            for y in (False, True):
                assert bool(op.fn(x, y)) == bool(eq.fn(x, y)), (name, x, y)

    def test_op_families(self):
        assert len(C_API_BINARY_OPS) == 8
        assert len(SUITESPARSE_BINARY_OPS) == 17
        assert len(COMPARISON_OPS) == 6
