"""Large-scale kernel checks against scipy.sparse (independent oracle).

The dense reference can only cover small shapes; scipy.sparse validates
the vectorized kernels at realistic sizes and sparsities.
"""

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")

from repro.generators import random_matrix, random_vector
from repro.graphblas import Matrix, Vector
from repro.graphblas import operations as ops


def to_scipy(A: Matrix):
    r, c, v = A.extract_tuples()
    return scipy_sparse.coo_matrix((v, (r, c)), shape=A.shape).tocsr()


SIZES = [(500, 500, 0.01), (1000, 300, 0.02), (200, 1500, 0.015)]


@pytest.mark.parametrize("m,n,d", SIZES)
class TestLargeKernels:
    def test_mxm(self, m, n, d):
        A = random_matrix(m, n, d, seed=1)
        B = random_matrix(n, m, d, seed=2)
        C = Matrix("FP64", m, m)
        ops.mxm(C, A, B)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        got = C.to_dense()
        assert np.allclose(got, expected)
        # patterns agree up to numerically-cancelled entries
        assert np.count_nonzero(C.pattern()) >= np.count_nonzero(expected)

    def test_mxm_transpose(self, m, n, d):
        A = random_matrix(m, n, d, seed=3)
        C = Matrix("FP64", n, n)
        ops.mxm(C, A, A, desc="T0")
        expected = (to_scipy(A).T @ to_scipy(A)).toarray()
        assert np.allclose(C.to_dense(), expected)

    def test_mxv_push_pull(self, m, n, d):
        A = random_matrix(m, n, d, seed=4)
        u = random_vector(n, 0.05, seed=5)
        expected = to_scipy(A) @ u.to_dense()
        for method in ("push", "pull"):
            w = Vector("FP64", m)
            ops.mxv(w, A, u, method=method)
            assert np.allclose(w.to_dense(), expected), method

    def test_ewise(self, m, n, d):
        A = random_matrix(m, n, d, seed=6)
        B = random_matrix(m, n, d, seed=7)
        C = Matrix("FP64", m, n)
        ops.ewise_add(C, A, B, "PLUS")
        expected = (to_scipy(A) + to_scipy(B)).toarray()
        assert np.allclose(C.to_dense(), expected)
        D = Matrix("FP64", m, n)
        ops.ewise_mult(D, A, B, "TIMES")
        expected_m = to_scipy(A).multiply(to_scipy(B)).toarray()
        assert np.allclose(D.to_dense(), expected_m)

    def test_reduce(self, m, n, d):
        A = random_matrix(m, n, d, seed=8)
        w = Vector("FP64", m)
        ops.reduce_rowwise(w, A)
        assert np.allclose(w.to_dense(), np.asarray(to_scipy(A).sum(axis=1)).ravel())
        assert np.isclose(ops.reduce_scalar(A), to_scipy(A).sum())

    def test_transpose(self, m, n, d):
        A = random_matrix(m, n, d, seed=9)
        C = Matrix("FP64", n, m)
        ops.transpose(C, A)
        assert np.allclose(C.to_dense(), to_scipy(A).T.toarray())


def test_min_plus_against_scipy_shortest_path():
    from scipy.sparse.csgraph import dijkstra

    A = random_matrix(120, 120, 0.04, seed=10, low=1, high=9)
    S = to_scipy(A)
    expected = dijkstra(S, indices=0)
    from repro.lagraph import Graph, bellman_ford_sssp

    g = Graph(A, "directed")
    d = bellman_ford_sssp(0, g)
    got = d.to_dense(fill=np.inf)
    got[0] = 0.0
    assert np.allclose(got, expected)
