"""O(1) move-semantics import/export (paper section IV)."""

import numpy as np
import pytest

from repro.graphblas import (
    Matrix,
    UninitializedObject,
    Vector,
    export_matrix,
    export_vector,
    import_matrix,
    import_vector,
)
from repro.graphblas.errors import InvalidObject, InvalidValue
from tests.helpers import random_matrix_np


@pytest.fixture
def A(rng):
    M, _, _ = random_matrix_np(rng, 10, 8, 0.3)
    return M


class TestExport:
    def test_export_poisons_handle(self, A):
        export_matrix(A)
        with pytest.raises(UninitializedObject):
            A.nvals
        with pytest.raises(UninitializedObject):
            A.set_element(0, 0, 1.0)

    def test_export_same_format_shares_memory(self, A):
        """O(1) path: the exported arrays ARE the matrix's arrays."""
        store_vals = A.by_row().values
        ex = export_matrix(A, "csr")
        assert ex.Ax is store_vals

    def test_export_fields(self, A):
        nvals = A.nvals
        ex = export_matrix(A, "csr")
        assert ex.nrows == 10 and ex.ncols == 8 and ex.nvals == nvals
        assert ex.Ap.size == 11 and ex.Ah is None

    def test_export_hyper_includes_h(self, A):
        ex = export_matrix(A, "hypercsr")
        assert ex.Ah is not None
        assert ex.Ap.size == ex.Ah.size + 1

    def test_export_unknown_format(self, A):
        with pytest.raises(InvalidValue):
            export_matrix(A, "coo")

    @pytest.mark.parametrize("fmt", ["csr", "csc", "hypercsr", "hypercsc"])
    def test_roundtrip_exact(self, rng, fmt):
        A, _, _ = random_matrix_np(rng, 12, 9, 0.35)
        expect = A.dup()
        ex = export_matrix(A, fmt)
        B = import_matrix(ex)
        assert B.format == fmt
        assert B.isequal(expect)

    def test_roundtrip_is_zero_copy(self, A):
        ex = export_matrix(A, "csr")
        B = import_matrix(ex)
        assert np.shares_memory(B.by_row().values, ex.Ax)
        assert np.shares_memory(B.by_row().indptr, ex.Ap)

    def test_import_copy_mode_does_not_share(self, A):
        ex = export_matrix(A, "csr")
        B = import_matrix(ex, copy=True)
        assert not np.shares_memory(B.by_row().values, ex.Ax)
        ex.Ax[:] = -1  # caller still owns its arrays
        assert float(B.by_row().values.min()) > 0


class TestImportValidation:
    def test_import_requires_arrays(self):
        with pytest.raises(InvalidValue):
            import_matrix(format="csr", nrows=2, ncols=2)

    def test_import_requires_dims(self):
        with pytest.raises(InvalidValue):
            import_matrix(Ap=np.zeros(3), Ai=np.zeros(0), Ax=np.zeros(0))

    def test_hyper_needs_ah(self):
        with pytest.raises(InvalidValue):
            import_matrix(
                format="hypercsr",
                nrows=4,
                ncols=4,
                Ap=np.array([0, 1]),
                Ai=np.array([0]),
                Ax=np.array([1.0]),
            )

    def test_wrong_pointer_length_rejected(self):
        with pytest.raises(InvalidObject):
            import_matrix(
                format="csr",
                nrows=4,
                ncols=4,
                Ap=np.array([0, 1]),
                Ai=np.array([0]),
                Ax=np.array([1.0]),
            )

    def test_check_mode_catches_corruption(self):
        with pytest.raises(InvalidObject):
            import_matrix(
                format="csr",
                nrows=2,
                ncols=2,
                Ap=np.array([0, 1, 2]),
                Ai=np.array([5, 0]),  # column out of range
                Ax=np.array([1.0, 2.0]),
                check=True,
            )

    def test_import_from_raw_arrays(self):
        # a hand-built 2x2 CSR: [[., 7], [8, .]]
        B = import_matrix(
            format="csr",
            nrows=2,
            ncols=2,
            Ap=np.array([0, 1, 2]),
            Ai=np.array([1, 0]),
            Ax=np.array([7.0, 8.0]),
        )
        assert B[0, 1] == 7.0 and B[1, 0] == 8.0


class TestVectorMove:
    def test_roundtrip(self):
        v = Vector.from_coo([1, 4], [2.0, 3.0], size=6)
        size, idx, vals = export_vector(v)
        with pytest.raises(UninitializedObject):
            v.nvals
        w = import_vector(size, idx, vals)
        assert w.size == 6 and w[1] == 2.0 and w[4] == 3.0
        assert np.shares_memory(w.values, vals)

    def test_copy_mode(self):
        v = Vector.from_coo([0], [1.0], size=3)
        size, idx, vals = export_vector(v)
        w = import_vector(size, idx, vals, copy=True)
        assert not np.shares_memory(w.values, vals)
