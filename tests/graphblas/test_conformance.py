"""The paper's testing methodology (section II.A): every operation is run
both by the optimized sparse engine and by the dense spec-literal
"MATLAB mimic", and the results must agree in value AND pattern.

This is the core correctness suite: it sweeps operations x descriptors x
accumulators x domains over randomized inputs.
"""

import numpy as np
import pytest

from repro.graphblas import Matrix, Vector
from repro.graphblas import operations as ops
from repro.graphblas import reference as ref

from tests.helpers import random_matrix_np, random_vector_np

DESCS = [None, "R", "C", "S", "RC", "SC", "RSC", "T0"]
ACCUMS = [None, "PLUS", "MAX"]
SEEDS = [0, 1]


def _mk(rng, m, n, density=0.4, dtype=np.float64):
    A, dense, mask = random_matrix_np(rng, m, n, density, dtype)
    return A, ref.RefMatrix.from_matrix(A)


def _mkv(rng, n, density=0.5, dtype=np.float64):
    v, dense, mask = random_vector_np(rng, n, density, dtype)
    return v, ref.RefVector.from_vector(v)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("desc", DESCS)
@pytest.mark.parametrize("accum", ACCUMS)
@pytest.mark.parametrize("semiring", ["PLUS_TIMES", "MIN_PLUS", "MAX_FIRST"])
def test_mxm_conformance(seed, desc, accum, semiring):
    rng = np.random.default_rng(seed)
    n = 7
    A, rA = _mk(rng, n, n)
    B, rB = _mk(rng, n, n)
    C0, rC0 = _mk(rng, n, n, density=0.3)
    M, rM = _mk(rng, n, n, density=0.5)
    C = C0.dup()
    ops.mxm(C, A, B, semiring, mask=M, accum=accum, desc=desc)
    expected = ref.ref_mxm(rC0, rA, rB, semiring, mask=rM, accum=accum, desc=desc)
    assert expected.matches(C)


@pytest.mark.parametrize("method", ["gustavson", "dot", "heap"])
@pytest.mark.parametrize("desc", [None, "RSC", "S"])
def test_mxm_methods_conform(method, desc):
    rng = np.random.default_rng(3)
    A, rA = _mk(rng, 6, 8)
    B, rB = _mk(rng, 8, 5)
    C0, rC0 = _mk(rng, 6, 5, density=0.3)
    M, rM = _mk(rng, 6, 5, density=0.5)
    C = C0.dup()
    ops.mxm(C, A, B, "PLUS_TIMES", mask=M, accum="PLUS", desc=desc, method=method)
    expected = ref.ref_mxm(rC0, rA, rB, "PLUS_TIMES", mask=rM, accum="PLUS", desc=desc)
    assert expected.matches(C)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("desc", DESCS)
@pytest.mark.parametrize("accum", ACCUMS)
@pytest.mark.parametrize("method", ["push", "pull"])
def test_mxv_conformance(seed, desc, accum, method):
    rng = np.random.default_rng(10 + seed)
    A, rA = _mk(rng, 6, 6)
    u, ru = _mkv(rng, 6)
    w0, rw0 = _mkv(rng, 6, density=0.3)
    m, rm = _mkv(rng, 6, density=0.5)
    w = w0.dup()
    ops.mxv(w, A, u, "PLUS_TIMES", mask=m, accum=accum, desc=desc, method=method)
    expected = ref.ref_mxv(rw0, rA, ru, "PLUS_TIMES", mask=rm, accum=accum, desc=desc)
    assert expected.matches(w)


@pytest.mark.parametrize("desc", DESCS)
@pytest.mark.parametrize("accum", ACCUMS)
def test_vxm_conformance(desc, accum):
    rng = np.random.default_rng(20)
    A, rA = _mk(rng, 6, 6)
    u, ru = _mkv(rng, 6)
    w0, rw0 = _mkv(rng, 6, density=0.3)
    m, rm = _mkv(rng, 6, density=0.5)
    w = w0.dup()
    ops.vxm(w, u, A, "MIN_PLUS", mask=m, accum=accum, desc=desc)
    expected = ref.ref_vxm(rw0, ru, rA, "MIN_PLUS", mask=rm, accum=accum, desc=desc)
    assert expected.matches(w)


@pytest.mark.parametrize("op", ["PLUS", "TIMES", "MIN", "MINUS", "FIRST"])
@pytest.mark.parametrize("desc", [None, "R", "C", "T0"])
@pytest.mark.parametrize("which", ["add", "mult"])
def test_ewise_matrix_conformance(op, desc, which):
    rng = np.random.default_rng(30)
    A, rA = _mk(rng, 7, 5)
    B, rB = _mk(rng, 7, 5) if desc != "T0" else _mk(rng, 5, 7)
    C0, rC0 = _mk(rng, 7, 5, density=0.3)
    M, rM = _mk(rng, 7, 5, density=0.5)
    C = C0.dup()
    fn = ops.ewise_add if which == "add" else ops.ewise_mult
    rfn = ref.ref_ewise_add if which == "add" else ref.ref_ewise_mult
    if desc == "T0":
        # transpose applies to A; build shapes accordingly
        A, rA = _mk(rng, 5, 7)
        B, rB = _mk(rng, 7, 5)
    fn(C, A, B, op, mask=M, accum="PLUS", desc=desc)
    expected = rfn(rC0, rA, rB, op, mask=rM, accum="PLUS", desc=desc)
    assert expected.matches(C)


@pytest.mark.parametrize("op", ["PLUS", "MAX", "SECOND"])
@pytest.mark.parametrize("which", ["add", "mult"])
def test_ewise_vector_conformance(op, which):
    rng = np.random.default_rng(31)
    u, ru = _mkv(rng, 9)
    v, rv = _mkv(rng, 9)
    w0, rw0 = _mkv(rng, 9, density=0.3)
    m, rm = _mkv(rng, 9, density=0.5)
    w = w0.dup()
    fn = ops.ewise_add if which == "add" else ops.ewise_mult
    rfn = ref.ref_ewise_add if which == "add" else ref.ref_ewise_mult
    fn(w, u, v, op, mask=m, accum="MAX", desc="S")
    expected = rfn(rw0, ru, rv, op, mask=rm, accum="MAX", desc="S")
    assert expected.matches(w)


@pytest.mark.parametrize(
    "kind,op,kw",
    [
        ("unary", "AINV", {}),
        ("unary", "ABS", {}),
        ("unary", "MINV", {}),
        ("bind", "PLUS", {"right": 3.0}),
        ("bind", "MINUS", {"left": 10.0}),
        ("iu", "ROWINDEX", {"thunk": 1}),
        ("iu", "VALUEGT", {"thunk": 4.0}),
    ],
)
@pytest.mark.parametrize("desc", [None, "R", "T0"])
def test_apply_conformance(kind, op, kw, desc):
    rng = np.random.default_rng(40)
    A, rA = _mk(rng, 6, 7)
    shape = (7, 6) if desc == "T0" else (6, 7)
    C0, rC0 = _mk(rng, *shape, density=0.3)
    M, rM = _mk(rng, *shape, density=0.5)
    C = C0.dup()
    ops.apply(C, A, op, mask=M, accum="PLUS", desc=desc, **kw)
    expected = ref.ref_apply(rC0, rA, op, mask=rM, accum="PLUS", desc=desc, **kw)
    assert expected.matches(C)


@pytest.mark.parametrize(
    "op,thunk", [("TRIL", 0), ("TRIU", 1), ("VALUEGT", 5.0), ("OFFDIAG", 0)]
)
def test_select_conformance(op, thunk):
    rng = np.random.default_rng(50)
    A, rA = _mk(rng, 7, 7)
    C0, rC0 = _mk(rng, 7, 7, density=0.2)
    C = C0.dup()
    ops.select(C, A, op, thunk, accum="PLUS")
    expected = ref.ref_select(rC0, rA, op, thunk, accum="PLUS")
    assert expected.matches(C)


@pytest.mark.parametrize("mon", ["PLUS", "MIN", "MAX", "TIMES"])
@pytest.mark.parametrize("desc", [None, "T0"])
def test_reduce_conformance(mon, desc):
    rng = np.random.default_rng(60)
    A, rA = _mk(rng, 6, 8)
    size = 8 if desc == "T0" else 6
    w0, rw0 = _mkv(rng, size, density=0.3)
    w = w0.dup()
    ops.reduce_rowwise(w, A, mon, accum="PLUS", desc=desc)
    expected = ref.ref_reduce_rowwise(rw0, rA, mon, accum="PLUS", desc=desc)
    assert expected.matches(w)
    # scalar reduce
    assert np.isclose(
        float(ops.reduce_scalar(A, mon)), float(ref.ref_reduce_scalar(rA, mon))
    )


@pytest.mark.parametrize("desc", [None, "R", "C"])
def test_transpose_conformance(desc):
    rng = np.random.default_rng(70)
    A, rA = _mk(rng, 5, 8)
    C0, rC0 = _mk(rng, 8, 5, density=0.3)
    M, rM = _mk(rng, 8, 5, density=0.5)
    C = C0.dup()
    ops.transpose(C, A, mask=M, accum="PLUS", desc=desc)
    expected = ref.ref_transpose(rC0, rA, mask=rM, accum="PLUS", desc=desc)
    assert expected.matches(C)


@pytest.mark.parametrize("dup_idx", [False, True])
def test_extract_conformance(dup_idx):
    rng = np.random.default_rng(80)
    A, rA = _mk(rng, 8, 8)
    I = np.array([1, 3, 3, 5]) if dup_idx else np.array([0, 2, 5, 7])
    J = np.array([6, 0, 0]) if dup_idx else np.array([1, 4, 6])
    C0, rC0 = _mk(rng, 4, 3, density=0.3)
    C = C0.dup()
    ops.extract(C, A, I, J, accum="PLUS")
    expected = ref.ref_extract(rC0, rA, I, J, accum="PLUS")
    assert expected.matches(C)


def test_extract_vector_and_column_conformance():
    rng = np.random.default_rng(81)
    u, ru = _mkv(rng, 10)
    I = np.array([2, 4, 4, 9])
    w = Vector("FP64", 4)
    ops.extract(w, u, I)
    expected = ref.ref_extract(ref.RefVector.zeros(w.dtype, 4), ru, I)
    assert expected.matches(w)

    A, rA = _mk(rng, 6, 6)
    col = Vector("FP64", 3)
    ops.extract(col, A, np.array([0, 2, 4]), 3)
    expected = ref.ref_extract(
        ref.RefVector.zeros(col.dtype, 3), rA, np.array([0, 2, 4]), 3
    )
    assert expected.matches(col)


@pytest.mark.parametrize("accum", [None, "PLUS"])
@pytest.mark.parametrize("what", ["matrix", "scalar", "row", "col"])
def test_assign_conformance(accum, what):
    rng = np.random.default_rng(90)
    C0, rC0 = _mk(rng, 8, 8, density=0.4)
    M, rM = _mk(rng, 8, 8, density=0.5)
    I = np.array([1, 4, 6])
    J = np.array([0, 3, 7])
    if what == "matrix":
        A, rA = _mk(rng, 3, 3, density=0.6)
    elif what == "scalar":
        A, rA = 7.5, 7.5
    elif what == "row":
        v, rA = _mkv(rng, 3, density=0.7)
        A = v
        I = np.array([4])
    else:
        v, rA = _mkv(rng, 3, density=0.7)
        A = v
        J = np.array([5])
    C = C0.dup()
    ops.assign(C, A, I, J, mask=M, accum=accum)
    expected = ref.ref_assign(rC0, rA, I, J, mask=rM, accum=accum)
    assert expected.matches(C)


@pytest.mark.parametrize("accum", [None, "PLUS"])
def test_assign_vector_conformance(accum):
    rng = np.random.default_rng(91)
    w0, rw0 = _mkv(rng, 9, density=0.4)
    m, rm = _mkv(rng, 9, density=0.5)
    u, ru = _mkv(rng, 3, density=0.8)
    I = np.array([2, 5, 8])
    w = w0.dup()
    ops.assign(w, u, I, mask=m, accum=accum)
    expected = ref.ref_assign(rw0, ru, I, mask=rm, accum=accum)
    assert expected.matches(w)


def test_assign_scalar_masked_fastpath_conformance():
    """The BFS 'levels<frontier> = depth' shape uses a dedicated fast path."""
    rng = np.random.default_rng(92)
    w0, rw0 = _mkv(rng, 12, density=0.4)
    m, rm = _mkv(rng, 12, density=0.4)
    w = w0.dup()
    ops.assign(w, 42.0, ops.ALL, mask=m)
    expected = ref.ref_assign(rw0, 42.0, None, mask=rm)
    assert expected.matches(w)
    # structural variant
    w2 = w0.dup()
    ops.assign(w2, 42.0, ops.ALL, mask=m, desc="S")
    expected2 = ref.ref_assign(rw0, 42.0, None, mask=rm, desc="S")
    assert expected2.matches(w2)


@pytest.mark.parametrize("desc", [None, "T0", "T1"])
def test_kronecker_conformance(desc):
    rng = np.random.default_rng(100)
    A, rA = _mk(rng, 3, 4)
    B, rB = _mk(rng, 2, 3)
    if desc == "T0":
        shape = (4 * 2, 3 * 3)
    elif desc == "T1":
        shape = (3 * 3, 4 * 2)
    else:
        shape = (3 * 2, 4 * 3)
    C0, rC0 = _mk(rng, *shape, density=0.2)
    C = C0.dup()
    ops.kronecker(C, A, B, "TIMES", accum="PLUS", desc=desc)
    expected = ref.ref_kronecker(rC0, rA, rB, "TIMES", accum="PLUS", desc=desc)
    assert expected.matches(C)


def test_positional_semiring_conformance():
    rng = np.random.default_rng(110)
    A, rA = _mk(rng, 6, 6)
    B, rB = _mk(rng, 6, 6)
    for sr in ("MIN_SECONDI", "MIN_FIRSTI"):
        C = Matrix("INT64", 6, 6)
        ops.mxm(C, A, B, sr)
        expected = ref.ref_mxm(
            ref.RefMatrix.zeros(C.dtype, 6, 6), rA, rB, sr
        )
        assert expected.matches(C), sr


@pytest.mark.parametrize("dtype", [np.bool_, np.int32, np.float32])
def test_mxm_conformance_across_domains(dtype):
    rng = np.random.default_rng(120)
    A, rA = _mk(rng, 6, 6, dtype=dtype)
    B, rB = _mk(rng, 6, 6, dtype=dtype)
    sr = "LOR_LAND" if dtype == np.bool_ else "PLUS_TIMES"
    out_dtype = np.bool_ if dtype == np.bool_ else dtype
    C = Matrix(out_dtype, 6, 6)
    ops.mxm(C, A, B, sr)
    expected = ref.ref_mxm(ref.RefMatrix.zeros(C.dtype, 6, 6), rA, rB, sr)
    assert expected.matches(C)
