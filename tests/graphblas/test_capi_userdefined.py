"""User-defined algebra through the C-API facade (GrB_*_new)."""

import numpy as np
import pytest

from repro.graphblas import capi as grb
from repro.graphblas.errors import Info


class TestUserDefinedOps:
    def test_unary_op_new_and_apply(self):
        info, clamp = grb.GrB_UnaryOp_new(lambda x: min(x, 5.0), "clamp5")
        assert info == grb.GrB_SUCCESS and not clamp.builtin
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 1, 2)
        grb.GrB_Matrix_build(A, [0, 0], [0, 1], [3.0, 9.0])
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 1, 2)
        assert grb.GrB_apply(C, None, None, clamp, A) == grb.GrB_SUCCESS
        assert C.to_dense().tolist() == [[3.0, 5.0]]

    def test_binary_op_new_in_ewise(self):
        info, hyp = grb.GrB_BinaryOp_new(lambda x, y: (x**2 + y**2) ** 0.5, "hypot")
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 1, 1)
        grb.GrB_Matrix_build(A, [0], [0], [3.0])
        _, B = grb.GrB_Matrix_new(grb.GrB_FP64, 1, 1)
        grb.GrB_Matrix_build(B, [0], [0], [4.0])
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 1, 1)
        assert grb.GrB_eWiseMult(C, None, None, hyp, A, B) == grb.GrB_SUCCESS
        assert C[0, 0] == 5.0

    def test_monoid_and_semiring_new_drive_mxm(self):
        info, mx = grb.GrB_BinaryOp_new(max, "mymax")
        info, mon = grb.GrB_Monoid_new(mx, 0)
        info, sr = grb.GrB_Semiring_new(mon, "PLUS")  # max-plus algebra
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        grb.GrB_Matrix_build(A, [0, 0, 1], [0, 1, 0], [1.0, 2.0, 3.0])
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        assert grb.GrB_mxm(C, None, None, sr, A, A) == grb.GrB_SUCCESS
        assert C[0, 0] == 5.0  # max(1+1, 2+3)

    def test_monoid_new_rejects_positional(self):
        info, mon = grb.GrB_Monoid_new("FIRSTI", 0)
        assert info == Info.DOMAIN_MISMATCH and mon is None

    def test_type_new(self):
        info, t = grb.GrB_Type_new(np.dtype([("re", "f8"), ("im", "f8")]))
        assert info == grb.GrB_SUCCESS and not t.builtin

    def test_user_monoid_reduce(self):
        from repro.graphblas import Vector, operations as ops

        _, gcd_op = grb.GrB_BinaryOp_new(np.gcd, "gcd")
        _, mon = grb.GrB_Monoid_new(gcd_op, 0)
        v = Vector.from_coo([0, 1, 2], [12, 18, 30], size=3, dtype="INT64")
        assert ops.reduce_scalar(v, mon) == 6


class TestDescriptorBuilder:
    def test_build_fig2d_descriptor(self):
        info, d = grb.GrB_Descriptor_new()
        info, d = grb.GrB_Descriptor_set(d, "INP0", "TRAN")
        info, d = grb.GrB_Descriptor_set(d, "MASK", "COMP")
        info, d = grb.GrB_Descriptor_set(d, "OUTP", "REPLACE")
        assert d.transpose_a and d.complement_mask and d.replace
        assert not d.structural_mask

    def test_bad_field(self):
        info, d = grb.GrB_Descriptor_new()
        info, d2 = grb.GrB_Descriptor_set(d, "WARP", "DRIVE")
        assert info == Info.INVALID_VALUE and d2 is d

    def test_descriptor_used_in_operation(self):
        info, d = grb.GrB_Descriptor_new()
        info, d = grb.GrB_Descriptor_set(d, "INP0", "TRAN")
        _, A = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        grb.GrB_Matrix_build(A, [0], [1], [7.0])
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 2, 2)
        # transpose of transpose: C = A
        assert grb.GrB_transpose(C, None, None, A, d) == grb.GrB_SUCCESS
        assert C[0, 1] == 7.0


class TestGxBSubassign:
    def test_matrix_region(self):
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 3, 3)
        assert grb.GxB_subassign(C, None, None, 5.0, [0, 2], [0, 2]) == grb.GrB_SUCCESS
        assert C.nvals == 4 and C[2, 2] == 5.0 and C.get(1, 1) is None

    def test_vector_region(self):
        _, v = grb.GrB_Vector_new(grb.GrB_FP64, 4)
        assert grb.GxB_subassign(v, None, None, 1.5, [1, 3]) == grb.GrB_SUCCESS
        assert v.to_dense().tolist() == [0.0, 1.5, 0.0, 1.5]

    def test_error_code_on_duplicates(self):
        _, C = grb.GrB_Matrix_new(grb.GrB_FP64, 3, 3)
        assert grb.GxB_subassign(C, None, None, 1.0, [0, 0], [1]) == Info.INVALID_VALUE
