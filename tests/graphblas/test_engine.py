"""The hot-path performance engine: specialization, twins, parallel blocks.

The engine's contract is *bit-for-bit* equality with the generic paths:
every test here compares engine-on against engine-off (or parallel
against serial) on identical inputs and asserts exact array equality,
dtypes included.
"""

import numpy as np
import pytest

from repro.generators import random_matrix, random_vector
from repro.graphblas import Descriptor, Matrix, Vector, capi, engine, telemetry
from repro.graphblas import operations as ops
from repro.graphblas import plan as planning
from repro.graphblas.errors import Info
from repro.graphblas.matrix import Matrix as _Matrix
from repro.graphblas.types import lookup_type


@pytest.fixture(autouse=True)
def _fresh_engine():
    """Every test starts from the env-default engine state and leaves no
    configuration, cache contents, or executor behind."""
    engine.reset()
    yield
    engine.reset()


def _mats(n=80, density=0.08, dtype=np.float64, seeds=(11, 12)):
    A = random_matrix(n, n, density, dtype=dtype, seed=seeds[0])
    B = random_matrix(n, n, density, dtype=dtype, seed=seeds[1])
    return A, B


def _same(p, q):
    for x, y in zip(p, q):
        assert x.dtype == y.dtype
        assert np.array_equal(x, y, equal_nan=True)


# -- configuration -----------------------------------------------------------


class TestConfig:
    def test_defaults_on(self):
        cfg = engine.get_config()
        assert cfg.enabled and cfg.kernel_cache and cfg.dual_format
        assert cfg.workers == engine.DEFAULT_WORKERS
        assert engine.ENABLED and engine.KERNEL_CACHE and engine.DUAL_FORMAT

    def test_master_switch_disables_all_mechanisms(self):
        engine.set_engine(False)
        assert not engine.ENABLED
        assert not engine.KERNEL_CACHE
        assert not engine.DUAL_FORMAT
        assert not engine.PARALLEL
        engine.set_engine(True)
        assert engine.ENABLED and engine.KERNEL_CACHE

    def test_individual_toggles(self):
        engine.set_engine(dual_format=False)
        assert engine.ENABLED and not engine.DUAL_FORMAT
        engine.set_engine(parallel=False)
        assert not engine.PARALLEL and engine.KERNEL_CACHE

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_ENGINE", "off")
        engine.reset()
        assert not engine.ENABLED and not engine.DUAL_FORMAT

    def test_env_workers_and_cache(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_ENGINE_WORKERS", "7")
        monkeypatch.setenv("GRAPHBLAS_ENGINE_CACHE", "3")
        engine.reset()
        cfg = engine.get_config()
        assert cfg.workers == 7 and cfg.cache_size == 3

    def test_workers_floor_is_one(self):
        cfg = engine.set_engine(workers=0)
        assert cfg.workers == 1


# -- kernel specialization cache ---------------------------------------------


class TestKernelCache:
    def test_hit_miss_counting(self):
        from repro.graphblas.semiring import semiring
        from repro.graphblas.types import FP64

        sr = semiring("PLUS_TIMES")
        engine.clear_kernel_cache()
        k1 = engine.kernel_for(sr, FP64)
        k2 = engine.kernel_for(sr, FP64)
        assert k1 is k2 and k1 is not None
        st = engine.kernel_cache_stats()
        assert st["misses"] == 1 and st["hits"] == 1

    def test_distinct_keys_per_dtype_and_method(self):
        from repro.graphblas.semiring import semiring
        from repro.graphblas.types import FP32, FP64

        sr = semiring("PLUS_TIMES")
        engine.clear_kernel_cache()
        a = engine.kernel_for(sr, FP64)
        b = engine.kernel_for(sr, FP32)
        c = engine.kernel_for(sr, FP64, method="dot")
        assert a is not b and a is not c
        assert engine.kernel_cache_stats()["size"] == 3

    def test_lru_eviction(self):
        from repro.graphblas.semiring import semiring
        from repro.graphblas.types import FP64

        engine.set_engine(cache_size=2)
        engine.clear_kernel_cache()
        for name in ("PLUS_TIMES", "MIN_PLUS", "MAX_PLUS"):
            engine.kernel_for(semiring(name), FP64)
        st = engine.kernel_cache_stats()
        assert st["size"] == 2 and st["evictions"] == 1

    def test_positional_semiring_not_specialized(self):
        from repro.graphblas.semiring import semiring
        from repro.graphblas.types import INT64

        assert engine.kernel_for(semiring("ANY_SECONDI"), INT64) is None
        assert engine.kernel_cache_stats()["unspecializable"] >= 1

    def test_disabled_engine_returns_none(self):
        from repro.graphblas.semiring import semiring
        from repro.graphblas.types import FP64

        engine.set_engine(False)
        assert engine.kernel_for(semiring("PLUS_TIMES"), FP64) is None

    def test_compile_emits_telemetry_decision(self):
        from repro.graphblas.semiring import semiring
        from repro.graphblas.types import FP64

        engine.clear_kernel_cache()
        with telemetry.collect() as col:
            engine.kernel_for(semiring("PLUS_TIMES"), FP64)
        names = [e["name"] for e in col.snapshot(include_events=True)["events"]]
        assert "engine.kernel" in names


# -- bit-for-bit parity: engine on vs off ------------------------------------


SEMIRING_DTYPES = [
    ("PLUS_TIMES", np.float64),
    ("PLUS_TIMES", np.float32),
    ("MIN_PLUS", np.int64),
    ("MAX_PLUS", np.float64),
    ("LOR_LAND", bool),
    ("PLUS_PAIR", np.int64),
]


class TestParity:
    @pytest.mark.parametrize("sr,dtype", SEMIRING_DTYPES)
    def test_mxm_gustavson(self, sr, dtype):
        A, B = _mats(dtype=dtype)
        out_t = planning.resolve_semiring(sr).out_type(A.dtype, B.dtype)

        def run():
            C = Matrix(out_t, 80, 80)
            ops.mxm(C, A, B, sr, method="gustavson")
            return C.extract_tuples()

        engine.set_engine(True)
        on = run()
        engine.set_engine(False)
        off = run()
        _same(on, off)

    @pytest.mark.parametrize("sr,dtype", SEMIRING_DTYPES)
    def test_mxm_dot(self, sr, dtype):
        A, B = _mats(n=40, density=0.15, dtype=dtype)
        out_t = planning.resolve_semiring(sr).out_type(A.dtype, B.dtype)

        def run():
            C = Matrix(out_t, 40, 40)
            ops.mxm(C, A, B, sr, method="dot")
            return C.extract_tuples()

        engine.set_engine(True)
        on = run()
        engine.set_engine(False)
        off = run()
        _same(on, off)

    @pytest.mark.parametrize("method", ["push", "pull"])
    @pytest.mark.parametrize("sr,dtype", SEMIRING_DTYPES)
    def test_mxv_both_directions(self, sr, dtype, method):
        A, _ = _mats(dtype=dtype)
        u = random_vector(80, 0.3, dtype=dtype, seed=5)
        out_t = planning.resolve_semiring(sr).out_type(A.dtype, u.dtype)

        def run():
            w = Vector(out_t, 80)
            ops.mxv(w, A, u, sr, method=method)
            return w.extract_tuples()

        engine.set_engine(True)
        on = run()
        engine.set_engine(False)
        off = run()
        _same(on, off)

    def test_vxm_pull_transposed(self):
        A, _ = _mats()
        u = random_vector(80, 0.4, seed=9)

        def run():
            w = Vector("FP64", 80)
            ops.vxm(w, u, A, "PLUS_TIMES", method="pull")
            return w.extract_tuples()

        engine.set_engine(True)
        on = run()
        engine.set_engine(False)
        off = run()
        _same(on, off)

    def test_dot_early_exit_terminal_monoid(self):
        A, B = _mats(dtype=bool, density=0.3)

        def run():
            C = Matrix("BOOL", 80, 80)
            ops.mxm(C, A, B, "LOR_LAND", method="dot")
            return C.extract_tuples()

        engine.set_engine(True)
        on = run()
        engine.set_engine(False)
        off = run()
        _same(on, off)


class TestParallelParity:
    def test_parallel_mxm_bit_identical_to_serial(self, monkeypatch):
        A, B = _mats(n=150, density=0.15)
        monkeypatch.setattr(engine, "MIN_PARALLEL_FLOPS", 1)

        def run():
            C = Matrix("FP64", 150, 150)
            ops.mxm(C, A, B, "PLUS_TIMES", method="gustavson")
            return C.extract_tuples()

        engine.set_engine(True, workers=4)
        par = run()
        engine.set_engine(parallel=False)
        ser = run()
        _same(par, ser)

    def test_parallel_pull_mxv_bit_identical(self, monkeypatch):
        A, _ = _mats(n=150, density=0.15)
        u = random_vector(150, 0.6, seed=6)
        monkeypatch.setattr(engine, "MIN_PARALLEL_ENTRIES", 1)

        def run():
            w = Vector("FP64", 150)
            ops.mxv(w, A, u, "PLUS_TIMES", method="pull")
            return w.extract_tuples()

        engine.set_engine(True, workers=4)
        par = run()
        engine.set_engine(parallel=False)
        ser = run()
        _same(par, ser)

    def test_parallel_blocks_recorded_in_telemetry(self, monkeypatch):
        from repro.graphblas.backends import current_backend_name

        if current_backend_name() != "optimized":
            pytest.skip("row-blocked SpGEMM is an optimized-backend path")
        A, B = _mats(n=150, density=0.15)
        monkeypatch.setattr(engine, "MIN_PARALLEL_FLOPS", 1)
        engine.set_engine(True, workers=4)
        with telemetry.collect() as col:
            ops.mxm(Matrix("FP64", 150, 150), A, B, "PLUS_TIMES",
                    method="gustavson")
        spans = [
            e for e in col.snapshot(include_events=True)["events"]
            if e["type"] == "span" and e["name"] == "engine.block"
        ]
        assert len(spans) >= 2
        assert all(s["args"]["op"] == "mxm" for s in spans)


# -- dual-format twins -------------------------------------------------------


class TestDualFormat:
    def test_twin_cached_and_reused(self):
        A, _ = _mats()
        A.wait()
        first = A.by_col()
        assert A._alt is first
        assert A.by_col() is first  # O(1) second time

    def test_mutation_invalidates_twin(self):
        A, _ = _mats()
        A.by_col()
        A.set_element(0, 0, 3.25)
        A.wait()
        fresh = A.by_col()
        assert fresh.nvals == A.nvals
        i, j, v = A.extract_tuples()
        tw_major, tw_minor, tw_vals = fresh.to_coo()
        order = np.lexsort((i, j))
        assert np.array_equal(tw_major, j[order])
        assert np.array_equal(tw_minor, i[order])
        assert np.array_equal(tw_vals, v[order])

    def test_engine_off_does_not_cache(self):
        engine.set_engine(False)
        A, _ = _mats()
        A.wait()
        A.by_col()
        assert A._alt is None

    def test_twin_emits_telemetry_decision(self):
        A, _ = _mats()
        with telemetry.collect() as col:
            A.by_col()
        evs = [
            e for e in col.snapshot(include_events=True)["events"]
            if e["name"] == "engine.twin"
        ]
        assert len(evs) == 1 and evs[0]["args"]["orientation"] == "col"


class TestTransposeFastPath:
    def test_transpose_matches_generic(self):
        A, _ = _mats()

        def run():
            C = Matrix("FP64", 80, 80)
            ops.transpose(C, A)
            return C.extract_tuples()

        engine.set_engine(True)
        on = run()
        engine.set_engine(False)
        off = run()
        _same(on, off)

    def test_transpose_output_has_warm_twin(self):
        from repro.graphblas.backends import current_backend_name

        if current_backend_name() != "optimized":
            pytest.skip("twin handoff is an optimized-backend fast path")
        A, _ = _mats()
        C = Matrix("FP64", 80, 80)
        ops.transpose(C, A)
        assert C._alt is not None and C._alt_epoch == C._epoch
        # both orientations now free — and consistent with each other
        rows_view = C.by_row()
        cols_view = C.by_col()
        assert rows_view.nvals == cols_view.nvals == A.nvals

    def test_mutate_then_retranspose(self):
        A, _ = _mats()
        C = Matrix("FP64", 80, 80)
        ops.transpose(C, A)
        C.set_element(1, 2, 42.0)
        C.wait()
        assert C[1, 2] == 42.0
        D = Matrix("FP64", 80, 80)
        ops.transpose(D, C)
        assert D[2, 1] == 42.0

    def test_masked_transpose_takes_generic_path(self):
        A, _ = _mats()
        M = random_matrix(80, 80, 0.2, dtype=bool, seed=3)

        def run():
            C = Matrix("FP64", 80, 80)
            ops.transpose(C, A, mask=M)
            return C.extract_tuples()

        engine.set_engine(True)
        on = run()
        engine.set_engine(False)
        off = run()
        _same(on, off)


# -- wait() sortedness fast path ---------------------------------------------


class TestWaitFastPath:
    def _assembly_events(self, col):
        return [
            e for e in col.snapshot(include_events=True)["events"]
            if e["name"] == "assembly"
        ]

    def test_matrix_sorted_log_takes_fast_path(self):
        A = Matrix("FP64", 50, 50)
        with telemetry.collect() as col:
            for k in range(10):
                A.set_element(k, k, float(k))
            A.wait()
        (ev,) = self._assembly_events(col)
        assert ev["args"]["fast_path"] is True
        assert A.nvals == 10 and A[4, 4] == 4.0

    def test_matrix_unsorted_log_takes_slow_path(self):
        A = Matrix("FP64", 50, 50)
        with telemetry.collect() as col:
            A.set_element(5, 5, 1.0)
            A.set_element(2, 2, 2.0)
            A.wait()
        (ev,) = self._assembly_events(col)
        assert ev["args"]["fast_path"] is False
        assert A[2, 2] == 2.0 and A[5, 5] == 1.0

    def test_matrix_zombies_take_slow_path(self):
        A = Matrix("FP64", 50, 50)
        A.set_element(1, 1, 1.0)
        A.wait()
        with telemetry.collect() as col:
            A.remove_element(1, 1)
            A.wait()
        (ev,) = self._assembly_events(col)
        assert ev["args"]["fast_path"] is False
        assert A.nvals == 0

    def test_vector_sorted_log_takes_fast_path(self):
        v = Vector("FP64", 50)
        with telemetry.collect() as col:
            for k in range(8):
                v.set_element(k * 3, float(k))
            v.wait()
        (ev,) = self._assembly_events(col)
        assert ev["args"]["fast_path"] is True
        assert v.nvals == 8 and v[6] == 2.0

    def test_vector_duplicate_index_takes_slow_path(self):
        v = Vector("FP64", 50)
        with telemetry.collect() as col:
            v.set_element(4, 1.0)
            v.set_element(4, 9.0)  # last-wins requires the dedup sort
            v.wait()
        (ev,) = self._assembly_events(col)
        assert ev["args"]["fast_path"] is False
        assert v[4] == 9.0

    def test_fast_and_slow_paths_agree(self):
        a = Matrix("FP64", 30, 30)
        b = Matrix("FP64", 30, 30)
        coords = [(i, (7 * i) % 30) for i in range(20)]
        for i, j in sorted(coords):
            a.set_element(i, j, float(i + j))  # sorted → fast path
        for i, j in reversed(sorted(coords)):
            b.set_element(i, j, float(i + j))  # reversed → slow path
        a.wait()
        b.wait()
        _same(a.extract_tuples(), b.extract_tuples())


# -- resolver memoization ----------------------------------------------------


class TestResolverMemo:
    def test_string_specs_cached(self):
        planning.reset_resolver_cache()
        s1 = planning.resolve_semiring("PLUS_TIMES")
        s2 = planning.resolve_semiring("plus_times")
        assert s1 is s2
        st = planning.resolver_cache_stats()
        assert st["misses"] == 1 and st["hits"] == 1

    def test_object_specs_bypass_cache(self):
        planning.reset_resolver_cache()
        sr = planning.resolve_semiring("MIN_PLUS")
        before = planning.resolver_cache_stats()
        assert planning.resolve_semiring(sr) is sr
        after = planning.resolver_cache_stats()
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]

    def test_planning_hits_cache_and_tallies(self):
        A, B = _mats(n=20, density=0.2)
        planning.reset_resolver_cache()
        ops.mxm(Matrix("FP64", 20, 20), A, B, "PLUS_TIMES")
        with telemetry.collect() as col:
            ops.mxm(Matrix("FP64", 20, 20), A, B, "PLUS_TIMES")
        assert planning.resolver_cache_stats()["hits"] >= 1
        snap = col.snapshot()["ops"]
        assert snap.get("plan.resolve_cache", {}).get("calls", 0) >= 1

    def test_distinct_kinds_do_not_collide(self):
        planning.reset_resolver_cache()
        mon = planning.resolve_monoid("PLUS")
        acc = planning.resolve_binary("PLUS")
        assert mon is not acc


# -- C-API surface -----------------------------------------------------------


class TestCapi:
    def test_engine_set_get_roundtrip(self):
        assert capi.GxB_Engine_set(False) == Info.SUCCESS
        assert capi.GxB_Engine_get()["enabled"] is False
        assert capi.GxB_Engine_set(True, workers=2) == Info.SUCCESS
        got = capi.GxB_Engine_get()
        assert got["enabled"] is True and got["workers"] == 2
        assert "cache" in got

    def test_engine_set_invalid_kwarg(self):
        assert capi.GxB_Engine_set(True, bogus=1) == Info.INVALID_VALUE

    def test_descriptor_nthreads_set(self):
        info, d = capi.GrB_Descriptor_new()
        assert info == Info.SUCCESS
        info, d = capi.GrB_Descriptor_set(d, capi.GxB_NTHREADS, 8)
        assert info == Info.SUCCESS and d.nthreads == 8
        info, d = capi.GrB_Descriptor_set(d, "NTHREADS", 0)
        assert info == Info.SUCCESS and d.nthreads is None
        info, _ = capi.GrB_Descriptor_set(d, "NTHREADS", "many")
        assert info == Info.INVALID_VALUE

    def test_descriptor_and_merges_nthreads(self):
        a = Descriptor(nthreads=3)
        b = Descriptor(transpose_a=True)
        assert (a & b).nthreads == 3
        assert (b & a).nthreads == 3
        assert (b & b).nthreads is None

    def test_mxm_with_nthreads_descriptor(self, monkeypatch):
        monkeypatch.setattr(engine, "MIN_PARALLEL_FLOPS", 1)
        A, B = _mats(n=60, density=0.2)
        C1 = Matrix("FP64", 60, 60)
        ops.mxm(C1, A, B, "PLUS_TIMES", desc=Descriptor(nthreads=3),
                method="gustavson")
        C2 = Matrix("FP64", 60, 60)
        engine.set_engine(parallel=False)
        ops.mxm(C2, A, B, "PLUS_TIMES", method="gustavson")
        _same(C1.extract_tuples(), C2.extract_tuples())


def test_lookup_type_roundtrip_for_engine_dtypes():
    # the parity matrix above leans on these dtype names resolving
    for np_dtype in (np.float64, np.float32, np.int64, bool):
        assert lookup_type(np_dtype) is lookup_type(np.dtype(np_dtype))


def test_engine_matrix_class_is_package_matrix():
    assert _Matrix is Matrix
