"""Monoids: identities, terminals, scalar and segmented reductions."""

import numpy as np
import pytest

from repro.graphblas import BOOL, FP64, INT8, INT32, INT64, monoid
from repro.graphblas.errors import DomainMismatch, InvalidValue
from repro.graphblas.monoid import ARITH_MONOIDS, BOOL_MONOIDS, MONOIDS, make_monoid

RNG = np.random.default_rng(11)


class TestIdentities:
    def test_plus_times(self):
        assert monoid("PLUS").identity(INT64) == 0
        assert monoid("TIMES").identity(INT64) == 1

    def test_min_max_depend_on_domain(self):
        assert monoid("MIN").identity(INT8) == 127
        assert monoid("MAX").identity(INT8) == -128
        assert monoid("MIN").identity(FP64) == np.inf
        assert monoid("MAX").identity(FP64) == -np.inf

    def test_bool_monoids(self):
        assert monoid("LOR").identity(BOOL) == False  # noqa: E712
        assert monoid("LAND").identity(BOOL) == True  # noqa: E712
        assert monoid("LXOR").identity(BOOL) == False  # noqa: E712
        assert monoid("EQ").identity(BOOL) == True  # noqa: E712

    @pytest.mark.parametrize("name", sorted(set(MONOIDS)))
    def test_identity_is_neutral(self, name):
        m = monoid(name)
        dtype = BOOL if name in BOOL_MONOIDS or name == "LXNOR" else INT32
        ident = m.identity(dtype)
        for v in ([0, 1, 5] if dtype is INT32 else [False, True]):
            v = dtype.np_dtype.type(v)
            if name == "ANY":  # ANY may return either argument
                continue
            assert m.op.fn(ident, v) == v, name
            assert m.op.fn(v, ident) == v, name


class TestTerminals:
    """The early-exit (annihilator) values of paper section II.A."""

    def test_lor_terminal_true(self):
        assert monoid("LOR").terminal(BOOL) == True  # noqa: E712

    def test_land_terminal_false(self):
        assert monoid("LAND").terminal(BOOL) == False  # noqa: E712

    def test_min_max_terminals(self):
        assert monoid("MIN").terminal(INT8) == -128
        assert monoid("MAX").terminal(INT8) == 127

    def test_times_terminal_zero(self):
        assert monoid("TIMES").terminal(INT64) == 0

    def test_plus_has_no_terminal(self):
        assert monoid("PLUS").terminal(INT64) is None

    @pytest.mark.parametrize("name", ["MIN", "MAX", "LOR", "LAND", "TIMES"])
    def test_terminal_annihilates(self, name):
        m = monoid(name)
        dtype = BOOL if name in ("LOR", "LAND") else INT32
        t = m.terminal(dtype)
        for v in ([0, 1, 7] if dtype is INT32 else [False, True]):
            v = dtype.np_dtype.type(v)
            assert m.op.fn(t, v) == t


class TestReduce:
    def test_empty_reduces_to_identity(self):
        assert monoid("PLUS").reduce_array(np.empty(0), INT64) == 0
        assert monoid("MIN").reduce_array(np.empty(0), FP64) == np.inf

    def test_plus(self):
        assert monoid("PLUS").reduce_array(np.array([1, 2, 3]), INT64) == 6

    def test_min(self):
        assert monoid("MIN").reduce_array(np.array([5.0, -1.0, 2.0]), FP64) == -1.0

    def test_lxor_parity(self):
        vals = np.array([True, True, True])
        assert monoid("LXOR").reduce_array(vals, BOOL) == True  # noqa: E712

    def test_any_picks_a_member(self):
        vals = np.array([42, 42, 42])
        assert monoid("ANY").reduce_array(vals, INT64) == 42

    def test_segments_basic(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        starts = np.array([0, 2, 2, 3])  # segment 1 empty
        out = monoid("PLUS").reduce_segments(vals, starts, FP64)
        assert out.tolist() == [3.0, 0.0, 3.0, 9.0]

    def test_segments_trailing_empty(self):
        vals = np.array([1.0, 2.0])
        starts = np.array([0, 2])
        out = monoid("MIN").reduce_segments(vals, starts, FP64)
        assert out[0] == 1.0 and out[1] == np.inf

    def test_segments_any(self):
        vals = np.array([7, 8, 9], dtype=np.int64)
        out = monoid("ANY").reduce_segments(vals, np.array([0, 1]), INT64)
        assert out[0] in (7,) and out[1] in (8, 9)

    @pytest.mark.parametrize("name", sorted(set(MONOIDS) - {"ANY"}))
    def test_segments_match_scalar_reduce(self, name):
        m = monoid(name)
        dtype = BOOL if name in BOOL_MONOIDS or name == "LXNOR" else FP64
        vals = (
            RNG.random(30) < 0.5
            if dtype is BOOL
            else RNG.uniform(0.5, 2.0, 30)
        )
        starts = np.array([0, 7, 7, 20], dtype=np.int64)
        seg = m.reduce_segments(np.asarray(vals), starts, dtype)
        ends = [7, 7, 20, 30]
        for k, (s, e) in enumerate(zip(starts, ends)):
            expect = m.reduce_array(np.asarray(vals)[s:e], dtype)
            assert np.isclose(float(seg[k]), float(expect)), (name, k)


class TestUserDefined:
    def test_make_monoid(self):
        m = make_monoid("MAX", identity=0, name="max0")
        assert not m.builtin
        assert m.reduce_array(np.array([3, 9, 1]), INT64) == 9

    def test_positional_rejected(self):
        with pytest.raises(DomainMismatch):
            make_monoid("FIRSTI", identity=0)

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidValue):
            monoid("NOPE")

    def test_census_families(self):
        assert ARITH_MONOIDS == ("MIN", "MAX", "PLUS", "TIMES")
        assert BOOL_MONOIDS == ("LOR", "LAND", "LXOR", "EQ")
