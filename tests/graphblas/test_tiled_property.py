"""Property test: tiled/spilled execution is bit-identical to in-memory.

Hypothesis drives random interleavings of ``set_element`` /
``remove_element`` / ``wait`` / ``mxm`` against a matrix in each of the
four storage formats.  Every ``mxm`` runs twice — once un-governed in
memory, once under a 1-byte memory budget that forces the governor to
re-plan it as tiled spill-to-disk execution with a zero resident-tile
budget (every tile round-trips through disk) — and the two results must
match bit for bit: same coordinates, same value bytes.

Values are integer-valued FP64, so any ordering the fold could take is
exact; the coordinate sets and storage structure are what this property
exercises across formats.  (Floating-point fold-order parity is covered
on RMAT-14 with random values in tests/resilience/test_tiled_spill.py.)
"""

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphblas import Matrix, engine, governor
from repro.graphblas import operations as ops

N = 8

FORMATS = ("csr", "csc", "hypercsr", "hypercsc")

_action = st.one_of(
    st.tuples(
        st.just("set"),
        st.integers(0, N - 1),
        st.integers(0, N - 1),
        st.integers(-5, 5),
    ),
    st.tuples(st.just("remove"), st.integers(0, N - 1), st.integers(0, N - 1)),
    st.tuples(st.just("wait")),
    st.tuples(st.just("mxm")),
)


@pytest.fixture(autouse=True)
def _engine_on():
    engine.reset()
    engine.set_engine(True)
    yield
    engine.reset()


def _bits_equal(got, want) -> None:
    for g, w in zip(got, want):
        assert g.dtype == w.dtype
        assert np.array_equal(g, w)
        assert g.tobytes() == w.tobytes()


@settings(max_examples=40, deadline=None)
@given(
    fmt=st.sampled_from(FORMATS),
    actions=st.lists(_action, min_size=1, max_size=10),
)
def test_tiled_spill_bit_identical_under_interleaving(fmt, actions):
    # per-example scratch space (tmp_path is function-scoped, which
    # hypothesis rightly rejects across generated examples)
    base = tempfile.mkdtemp(prefix="tiled-prop-")
    try:
        _run_example(fmt, actions, base)
    finally:
        shutil.rmtree(base, ignore_errors=True)


def _run_example(fmt, actions, base):
    A = Matrix("FP64", N, N)
    A.set_format(fmt)
    B = Matrix("FP64", N, N)
    B.set_format(fmt)
    rng = np.random.default_rng(0)
    for _ in range(N * 2):
        B.set_element(int(rng.integers(N)), int(rng.integers(N)),
                      float(rng.integers(-5, 6)))
    B.wait()

    for step, act in enumerate(actions):
        if act[0] == "set":
            _, i, j, v = act
            A.set_element(i, j, float(v))
        elif act[0] == "remove":
            _, i, j = act
            A.remove_element(i, j)
        elif act[0] == "wait":
            A.wait()
        else:  # mxm: in-memory vs tiled-spilled, bit for bit
            expected = Matrix("FP64", N, N)
            ops.mxm(expected, A, B, "PLUS_TIMES")
            C = Matrix("FP64", N, N)
            spill_dir = os.path.join(base, f"step{step}")
            with governor.ExecutionContext(
                memory_budget=1,          # everything is over budget
                spill_dir=spill_dir,
                spill_budget=0,           # every tile round-trips disk
            ) as ctx:
                ops.mxm(C, A, B, "PLUS_TIMES")
            assert ctx.stats["tiled"] == 1
            _bits_equal(C.extract_tuples(), expected.extract_tuples())
            # pools clean up completely even inside the example loop
            assert not os.path.exists(spill_dir) or not os.listdir(spill_dir)
