"""Push vs pull SpMV and the direction-optimization rule (paper II.E)."""

import numpy as np
import pytest

from repro.graphblas import DirectionOptimizer, Matrix, Vector
from repro.graphblas import operations as ops
from repro.graphblas.errors import InvalidValue
from tests.helpers import random_matrix_np, random_vector_np


class TestPushPullEquivalence:
    @pytest.mark.parametrize("density", [0.02, 0.3, 0.9])
    @pytest.mark.parametrize("semiring", ["PLUS_TIMES", "MIN_PLUS", "LOR_LAND"])
    def test_push_equals_pull(self, density, semiring):
        rng = np.random.default_rng(5)
        A, _, _ = random_matrix_np(rng, 30, 30, 0.15)
        u, _, _ = random_vector_np(rng, 30, density)
        w_push = Vector("FP64", 30)
        w_pull = Vector("FP64", 30)
        ops.mxv(w_push, A, u, semiring, method="push")
        ops.mxv(w_pull, A, u, semiring, method="pull")
        assert w_push.pattern().tolist() == w_pull.pattern().tolist()
        assert np.allclose(w_push.to_dense(), w_pull.to_dense())

    def test_pull_uses_output_mask_hint(self):
        """Masked pull computes only admitted rows but matches push output."""
        rng = np.random.default_rng(6)
        A, _, _ = random_matrix_np(rng, 40, 40, 0.2)
        u, _, _ = random_vector_np(rng, 40, 0.8)
        m, _, _ = random_vector_np(rng, 40, 0.2, dtype=np.bool_)
        out_a = Vector("FP64", 40)
        out_b = Vector("FP64", 40)
        ops.mxv(out_a, A, u, "PLUS_TIMES", mask=m, method="pull", desc="RS")
        ops.mxv(out_b, A, u, "PLUS_TIMES", mask=m, method="push", desc="RS")
        assert out_a.isequal(out_b)

    def test_unknown_method(self):
        A = Matrix.sparse_identity(3)
        u = Vector.full(1.0, 3)
        with pytest.raises(InvalidValue):
            ops.mxv(Vector("FP64", 3), A, u, method="sideways")


class TestDirectionOptimizer:
    """The literal GraphBLAST hysteresis rule from section II.E."""

    def test_starts_push_when_sparse(self):
        opt = DirectionOptimizer(threshold=0.1)
        assert opt.choose(0.01) == "push"

    def test_starts_pull_when_dense(self):
        opt = DirectionOptimizer(threshold=0.1)
        assert opt.choose(0.5) == "pull"

    def test_crossing_above_switches_to_pull(self):
        opt = DirectionOptimizer(threshold=0.1)
        opt.choose(0.05)
        assert opt.choose(0.2) == "pull"

    def test_crossing_below_switches_to_push(self):
        opt = DirectionOptimizer(threshold=0.1)
        opt.choose(0.5)
        assert opt.choose(0.01) == "push"

    def test_no_crossing_keeps_previous(self):
        """'If neither outcome has occurred, use the previous traversal.'"""
        opt = DirectionOptimizer(threshold=0.1)
        opt.choose(0.05)          # push
        opt.choose(0.2)           # crossed above -> pull
        assert opt.choose(0.5) == "pull"   # stays above: keep pull
        assert opt.choose(0.3) == "pull"   # still above: keep pull
        assert opt.choose(0.02) == "push"  # crossed below -> push
        assert opt.choose(0.01) == "push"  # stays below: keep push

    def test_history_records_choices(self):
        opt = DirectionOptimizer(threshold=0.1)
        for d in (0.01, 0.5, 0.4, 0.01):
            opt.choose(d)
        assert opt.history == ["push", "pull", "pull", "push"]

    def test_bad_threshold(self):
        with pytest.raises(InvalidValue):
            DirectionOptimizer(threshold=1.5)

    def test_bfs_switches_directions_on_rmat(self):
        """On a scale-free graph the frontier densifies then shrinks; the
        optimizer must use both directions across the traversal."""
        from repro.generators import rmat_graph
        from repro.graphblas import backends
        from repro.lagraph import bfs_level

        g = rmat_graph(9, 12, seed=1, kind="undirected")
        opt = DirectionOptimizer(threshold=0.02)
        # direction switching is an optimized-engine internal: pin the backend
        with backends.backend("optimized"):
            bfs_level(0, g, optimizer=opt)
        assert "push" in opt.history and "pull" in opt.history

    def test_auto_without_optimizer_picks_by_density(self):
        rng = np.random.default_rng(8)
        A, _, _ = random_matrix_np(rng, 30, 30, 0.2)
        sparse_u, _, _ = random_vector_np(rng, 30, 0.02)
        dense_u, _, _ = random_vector_np(rng, 30, 0.9)
        # both must compute correctly regardless of chosen direction
        for u in (sparse_u, dense_u):
            w_auto = Vector("FP64", 30)
            w_ref = Vector("FP64", 30)
            ops.mxv(w_auto, A, u, "PLUS_TIMES", method="auto")
            ops.mxv(w_ref, A, u, "PLUS_TIMES", method="push")
            assert w_auto.isequal(w_ref)
