"""Property-based parity: compiled kernels vs the dense spec reference.

Every example routes a Table-I workload through the differential engine
with ``primary="compiled"``, so the JIT tier executes exactly the kernel
production dispatch would pick (declining to ``optimized`` where it
must) and the result is replayed on the spec-literal dense mimic; any
pattern or value disagreement raises
:class:`~repro.graphblas.errors.BackendDivergence` and fails the test.

The sweep crosses all four storage formats with the four semirings the
tier compiles most often — ``PLUS_TIMES``, ``MIN_PLUS``, ``MAX_MIN``
over FP64/INT64 and ``LOR_LAND`` over BOOL — masked and unmasked, and
the edge shapes the generators are nudged toward: empty operands and
iso (single-valued) inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphblas import Matrix, Vector, compiled
from repro.graphblas import operations as ops
from repro.graphblas.backends.differential import DifferentialBackend
from repro.graphblas.types import BOOL, FP64, INT64

pytestmark = pytest.mark.skipif(
    not compiled.available(),
    reason="no compiled toolchain (numba or cc) available",
)

N = 7
FORMATS = ["csr", "csc", "hypercsr", "hypercsc"]
SEMIRINGS = [
    ("PLUS_TIMES", FP64),
    ("MIN_PLUS", FP64),
    ("MAX_MIN", INT64),
    ("LOR_LAND", BOOL),
]

coords = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1))


def _values(dtype):
    if dtype is BOOL:
        return st.booleans()
    if dtype is INT64:
        return st.integers(-20, 20)
    return st.floats(-8, 8, allow_nan=False, allow_infinity=False)


@st.composite
def sparse_matrix(draw, dtype, fmt):
    # bias toward the edge shapes: empty and iso (one repeated value)
    shape = draw(st.sampled_from(["empty", "iso", "general", "general"]))
    if shape == "empty":
        entries = {}
    elif shape == "iso":
        keys = draw(st.lists(coords, max_size=20, unique=True))
        v = draw(_values(dtype))
        entries = {k: v for k in keys}
    else:
        entries = draw(st.dictionaries(coords, _values(dtype), max_size=25))
    if entries:
        r, c = map(np.asarray, zip(*entries))
        v = np.asarray(list(entries.values()), dtype=dtype.np_dtype)
    else:
        r = c = np.empty(0, dtype=np.int64)
        v = np.empty(0, dtype=dtype.np_dtype)
    A = Matrix.from_coo(r, c, v, nrows=N, ncols=N, dtype=dtype)
    A.set_format(fmt)
    return A


@st.composite
def sparse_vector(draw, dtype):
    entries = draw(
        st.dictionaries(st.integers(0, N - 1), _values(dtype), max_size=N))
    idx = np.asarray(sorted(entries), dtype=np.int64)
    vals = np.asarray([entries[i] for i in sorted(entries)],
                      dtype=dtype.np_dtype)
    return Vector.from_coo(idx, vals, size=N, dtype=dtype)


@st.composite
def maybe_mask_matrix(draw):
    if not draw(st.booleans()):
        return None
    keys = draw(st.lists(coords, min_size=1, max_size=25, unique=True))
    r, c = map(np.asarray, zip(*keys))
    v = np.ones(len(keys), dtype=np.bool_)
    return Matrix.from_coo(r, c, v, nrows=N, ncols=N, dtype=BOOL)


@st.composite
def maybe_mask_vector(draw):
    if not draw(st.booleans()):
        return None
    idx = draw(st.lists(st.integers(0, N - 1), min_size=1, max_size=N,
                        unique=True))
    idx = np.asarray(sorted(idx), dtype=np.int64)
    return Vector.from_coo(idx, np.ones(idx.size, dtype=np.bool_),
                           size=N, dtype=BOOL)


def _fresh_backend():
    be = DifferentialBackend(primary="compiled")
    assert be.primary == "compiled"
    return be


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("sr,dtype", SEMIRINGS, ids=lambda v: str(v))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_mxm_matches_reference(fmt, sr, dtype, data):
    A = data.draw(sparse_matrix(dtype, fmt))
    B = data.draw(sparse_matrix(dtype, fmt))
    M = data.draw(maybe_mask_matrix())
    be = _fresh_backend()
    C = Matrix(dtype, N, N)
    ops.mxm(C, A, B, sr, mask=M, backend=be)  # divergence raises
    assert be.stats["verified"] == 1
    assert be.stats["divergences"] == 0


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("sr,dtype", SEMIRINGS, ids=lambda v: str(v))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_mxv_vxm_match_reference(fmt, sr, dtype, data):
    A = data.draw(sparse_matrix(dtype, fmt))
    u = data.draw(sparse_vector(dtype))
    m = data.draw(maybe_mask_vector())
    be = _fresh_backend()
    w = Vector(dtype, N)
    if data.draw(st.booleans()):
        ops.mxv(w, A, u, sr, mask=m, backend=be)
    else:
        ops.vxm(w, u, A, sr, mask=m, backend=be)
    assert be.stats["verified"] == 1
    assert be.stats["divergences"] == 0


@pytest.mark.parametrize("sr,dtype", SEMIRINGS, ids=lambda v: str(v))
def test_empty_times_empty(sr, dtype):
    be = _fresh_backend()
    A = Matrix(dtype, N, N)
    B = Matrix(dtype, N, N)
    C = Matrix(dtype, N, N)
    ops.mxm(C, A, B, sr, backend=be)
    assert C.nvals == 0
    assert be.stats["divergences"] == 0
