"""Error model (API vs execution errors) and execution modes."""

import pytest

from repro.graphblas import (
    ApiError,
    ExecutionError,
    GraphBLASError,
    Info,
    Matrix,
    Mode,
    Vector,
    blocking,
    get_mode,
    nonblocking,
    set_mode,
)
from repro.graphblas import operations as ops
from repro.graphblas.errors import (
    DimensionMismatch,
    DomainMismatch,
    IndexOutOfBounds,
    InvalidIndex,
    InvalidValue,
    NoValue,
    check_index,
)


class TestHierarchy:
    """Paper II.B: API errors vs execution errors are distinct classes."""

    def test_api_errors(self):
        assert issubclass(DimensionMismatch, ApiError)
        assert issubclass(DomainMismatch, ApiError)
        assert issubclass(InvalidValue, ApiError)
        assert issubclass(InvalidIndex, ApiError)

    def test_execution_errors(self):
        assert issubclass(IndexOutOfBounds, ExecutionError)

    def test_all_are_graphblas_errors(self):
        assert issubclass(ApiError, GraphBLASError)
        assert issubclass(ExecutionError, GraphBLASError)
        assert issubclass(NoValue, GraphBLASError)

    def test_info_codes_unique(self):
        codes = [
            DimensionMismatch.info,
            DomainMismatch.info,
            InvalidValue.info,
            IndexOutOfBounds.info,
            NoValue.info,
        ]
        assert len(set(codes)) == len(codes)
        assert NoValue.info == Info.NO_VALUE

    def test_check_index(self):
        assert check_index(3, 5) == 3
        with pytest.raises(InvalidIndex):
            check_index(5, 5)
        with pytest.raises(InvalidIndex):
            check_index(-1, 5)

    def test_check_index_rejects_bools(self):
        import numpy as np

        # True/False are ints in Python, but GrB_Index is not a bool
        for bad in (True, False, np.True_, np.False_):
            with pytest.raises(InvalidIndex):
                check_index(bad, 5)

    def test_check_index_float_handling(self):
        import numpy as np

        assert check_index(2.0, 5) == 2  # integral float: convenience
        assert check_index(np.float64(3.0), 5) == 3
        with pytest.raises(InvalidIndex):
            check_index(2.7, 5)  # non-integral float is an error
        with pytest.raises(InvalidIndex):
            check_index(float("nan"), 5)

    def test_check_index_numpy_integers(self):
        import numpy as np

        for i in (np.int32(4), np.uint64(4), np.int8(4), np.array(4)):
            got = check_index(i, 5)
            assert got == 4 and type(got) is int

    def test_check_index_rejects_non_numbers(self):
        for bad in ("3", None, [3], (3,), 3 + 0j):
            with pytest.raises(InvalidIndex):
                check_index(bad, 5)

    def test_custom_out_of_range_exception(self):
        # object methods classify out-of-range as an execution error
        with pytest.raises(IndexOutOfBounds):
            check_index(9, 5, exc=IndexOutOfBounds)
        with pytest.raises(InvalidIndex):  # type errors stay InvalidIndex
            check_index(True, 5, exc=IndexOutOfBounds)

    def test_set_element_rejects_bool_index(self):
        import numpy as np

        A = Matrix("FP64", 3, 3)
        with pytest.raises(InvalidIndex):
            A.set_element(True, 0, 1.0)
        v = Vector("FP64", 3)
        with pytest.raises(InvalidIndex):
            v.set_element(np.True_, 1.0)
        with pytest.raises(InvalidIndex):
            v.set_element(1.5, 1.0)
        v.set_element(np.int64(1), 1.0)  # numpy integer scalars accepted
        assert v[1] == 1.0


class TestDimensionChecks:
    def test_mxm(self):
        A = Matrix("FP64", 2, 3)
        B = Matrix("FP64", 2, 3)
        C = Matrix("FP64", 2, 3)
        with pytest.raises(DimensionMismatch):
            ops.mxm(C, A, B)

    def test_mxm_output_shape(self):
        A = Matrix("FP64", 2, 3)
        B = Matrix("FP64", 3, 4)
        C = Matrix("FP64", 9, 9)
        with pytest.raises(DimensionMismatch):
            ops.mxm(C, A, B)

    def test_mxv_sizes(self):
        A = Matrix("FP64", 2, 3)
        with pytest.raises(DimensionMismatch):
            ops.mxv(Vector("FP64", 2), A, Vector("FP64", 9))
        with pytest.raises(DimensionMismatch):
            ops.mxv(Vector("FP64", 9), A, Vector("FP64", 3))

    def test_mask_shape(self):
        A = Matrix("FP64", 2, 2)
        C = Matrix("FP64", 2, 2)
        M = Matrix("FP64", 3, 3)
        with pytest.raises(DimensionMismatch):
            ops.ewise_add(C, A, A, "PLUS", mask=M)

    def test_ewise_shapes(self):
        A = Matrix("FP64", 2, 2)
        B = Matrix("FP64", 2, 3)
        with pytest.raises(DimensionMismatch):
            ops.ewise_mult(Matrix("FP64", 2, 2), A, B)

    def test_positional_accum_rejected(self):
        A = Matrix.sparse_identity(2)
        with pytest.raises(DomainMismatch):
            ops.ewise_add(Matrix("FP64", 2, 2), A, A, "PLUS", accum="FIRSTI")

    def test_positional_ewise_rejected(self):
        A = Matrix.sparse_identity(2)
        with pytest.raises(DomainMismatch):
            ops.ewise_add(Matrix("FP64", 2, 2), A, A, "SECONDI")

    def test_assign_duplicate_indices_rejected(self):
        C = Matrix("FP64", 4, 4)
        with pytest.raises(InvalidValue):
            ops.assign(C, 1.0, [1, 1], [0])

    def test_bad_descriptor_name(self):
        A = Matrix.sparse_identity(2)
        with pytest.raises(InvalidValue):
            ops.transpose(Matrix("FP64", 2, 2), A, desc="T9")


class TestModes:
    def test_default_is_nonblocking(self):
        assert get_mode() == Mode.NONBLOCKING

    def test_set_mode(self):
        set_mode(Mode.BLOCKING)
        try:
            assert get_mode() == Mode.BLOCKING
        finally:
            set_mode(Mode.NONBLOCKING)

    def test_set_bad_mode(self):
        with pytest.raises(InvalidValue):
            set_mode("warp-speed")

    def test_contexts_nest_and_restore(self):
        with blocking():
            assert get_mode() == Mode.BLOCKING
            with nonblocking():
                assert get_mode() == Mode.NONBLOCKING
            assert get_mode() == Mode.BLOCKING
        assert get_mode() == Mode.NONBLOCKING

    def test_nonblocking_defers_blocking_does_not(self):
        with nonblocking():
            A = Matrix("FP64", 2, 2)
            A.set_element(0, 0, 1.0)
            assert A.has_pending
        with blocking():
            B = Matrix("FP64", 2, 2)
            B.set_element(0, 0, 1.0)
            assert not B.has_pending

    def test_operations_force_materialization(self):
        with nonblocking():
            A = Matrix("FP64", 2, 2)
            A.set_element(0, 0, 2.0)
            C = Matrix("FP64", 2, 2)
            ops.mxm(C, A, A)  # must see the pending entry
            assert C[0, 0] == 4.0
