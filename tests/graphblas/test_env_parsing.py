"""Hardened environment parsing: bad knob values warn once and fall back."""

import warnings

import numpy as np
import pytest

from repro.graphblas import envutil, faults
from repro.graphblas.backends import current_backend
from repro.graphblas.backends.differential import (
    DEFAULT_BUDGET,
    DifferentialBackend,
)


@pytest.fixture(autouse=True)
def _fresh_warn_state():
    envutil.reset_warned()
    yield
    envutil.reset_warned()


class TestEnvUtil:
    def test_env_int_valid(self, monkeypatch):
        monkeypatch.setenv("X_INT", "42")
        assert envutil.env_int("X_INT", 7) == 42

    def test_env_int_unset_and_blank(self, monkeypatch):
        monkeypatch.delenv("X_INT", raising=False)
        assert envutil.env_int("X_INT", 7) == 7
        monkeypatch.setenv("X_INT", "   ")
        assert envutil.env_int("X_INT", 7) == 7

    def test_env_int_garbage_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("X_INT", "banana")
        with pytest.warns(RuntimeWarning, match="X_INT"):
            assert envutil.env_int("X_INT", 7) == 7

    def test_env_int_below_minimum(self, monkeypatch):
        monkeypatch.setenv("X_INT", "-5")
        with pytest.warns(RuntimeWarning, match="minimum"):
            assert envutil.env_int("X_INT", 7, minimum=0) == 7

    def test_warns_once_per_value(self, monkeypatch):
        monkeypatch.setenv("X_INT", "banana")
        with pytest.warns(RuntimeWarning):
            envutil.env_int("X_INT", 7)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert envutil.env_int("X_INT", 7) == 7
        # a *different* bad value warns again
        monkeypatch.setenv("X_INT", "kiwi")
        with pytest.warns(RuntimeWarning):
            envutil.env_int("X_INT", 7)

    def test_env_float_rejects_nan(self, monkeypatch):
        monkeypatch.setenv("X_F", "nan")
        with pytest.warns(RuntimeWarning):
            assert envutil.env_float("X_F", 1.5) == 1.5
        envutil.reset_warned()
        monkeypatch.setenv("X_F", "2.5")
        assert envutil.env_float("X_F", 1.5) == 2.5

    def test_env_bytes_suffixes(self, monkeypatch):
        for raw, want in [("1024", 1024), ("4k", 4 << 10),
                          ("64m", 64 << 20), ("2G", 2 << 30)]:
            monkeypatch.setenv("X_B", raw)
            assert envutil.env_bytes("X_B", None) == want

    def test_env_bytes_garbage(self, monkeypatch):
        monkeypatch.setenv("X_B", "lots")
        with pytest.warns(RuntimeWarning):
            assert envutil.env_bytes("X_B", 99) == 99

    def test_env_choice(self, monkeypatch):
        monkeypatch.setenv("X_C", "b")
        assert envutil.env_choice("X_C", "a", {"a", "b"}) == "b"
        monkeypatch.setenv("X_C", "z")
        with pytest.warns(RuntimeWarning, match="X_C"):
            assert envutil.env_choice("X_C", "a", {"a", "b"}) == "a"


class TestHardenedKnobs:
    @pytest.fixture(autouse=True)
    def _fresh_default_backend(self):
        from repro.graphblas.backends import set_default_backend

        set_default_backend(None)  # force the env to be re-read
        yield
        set_default_backend(None)

    def test_bogus_backend_falls_back_to_optimized(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_BACKEND", "turbo9000")
        with pytest.warns(RuntimeWarning, match="GRAPHBLAS_BACKEND"):
            assert current_backend().name == "optimized"

    def test_valid_backend_env_respected(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_BACKEND", "reference")
        assert current_backend().name == "reference"

    def test_bogus_diff_budget_falls_back(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_DIFF_BUDGET", "a lot")
        with pytest.warns(RuntimeWarning, match="GRAPHBLAS_DIFF_BUDGET"):
            be = DifferentialBackend()
        assert be.budget == DEFAULT_BUDGET

    def test_negative_diff_budget_falls_back(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_DIFF_BUDGET", "-3")
        with pytest.warns(RuntimeWarning, match="minimum"):
            be = DifferentialBackend()
        assert be.budget == DEFAULT_BUDGET

    def test_explicit_budget_beats_env(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_DIFF_BUDGET", "123")
        assert DifferentialBackend(budget=77).budget == 77


class TestFaultRunSeed:
    @pytest.fixture(autouse=True)
    def _reset_seed(self):
        faults.set_run_seed(None)
        yield
        faults.set_run_seed(None)

    def test_env_seed_pins_run_seed(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_FAULT_SEED", "12345")
        assert faults.run_seed() == 12345

    def test_garbage_env_seed_warns_and_uses_entropy(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_FAULT_SEED", "dice")
        with pytest.warns(RuntimeWarning, match="GRAPHBLAS_FAULT_SEED"):
            seed = faults.run_seed()
        assert 0 <= seed <= 0xFFFFFFFF

    def test_probabilistic_plan_seeds_reproducible(self, monkeypatch):
        monkeypatch.delenv("GRAPHBLAS_FAULT_SEED", raising=False)

        def arm_two():
            seeds = []
            with faults.inject("ewise", probability=0.5) as p1:
                seeds.append(p1.seed)
                with faults.inject("apply", probability=0.5) as p2:
                    seeds.append(p2.seed)
            return seeds

        faults.set_run_seed(777)
        first = arm_two()
        faults.set_run_seed(777)
        second = arm_two()
        assert first == second
        assert len(set(first)) == 2  # distinct streams per plan
        faults.set_run_seed(778)
        assert arm_two() != first

    def test_explicit_seed_untouched(self):
        with faults.inject("ewise", probability=0.5, seed=5) as plan:
            assert plan.seed == 5

    def test_deterministic_plan_has_no_seed(self):
        with faults.inject("ewise", nth=2) as plan:
            assert plan.seed is None
