"""Oracle helpers shared across the test suite."""

from __future__ import annotations

import numpy as np

from repro.graphblas import Matrix, Vector


def random_matrix_np(rng, m, n, density=0.35, dtype=np.float64, low=1, high=9):
    """A random sparse matrix plus its dense-numpy twin (0 = absent)."""
    mask = rng.random((m, n)) < density
    if np.issubdtype(np.dtype(dtype), np.integer):
        dense = rng.integers(low, high + 1, (m, n)).astype(dtype)
    elif np.dtype(dtype) == np.bool_:
        dense = np.ones((m, n), dtype=bool)
    else:
        dense = rng.uniform(low, high, (m, n)).astype(dtype)
    dense = np.where(mask, dense, 0)
    r, c = np.nonzero(mask)
    A = Matrix.from_coo(r, c, dense[mask], nrows=m, ncols=n, dtype=dtype)
    return A, dense, mask


def random_vector_np(rng, n, density=0.4, dtype=np.float64):
    mask = rng.random(n) < density
    if np.issubdtype(np.dtype(dtype), np.integer):
        dense = rng.integers(1, 10, n).astype(dtype)
    elif np.dtype(dtype) == np.bool_:
        dense = np.ones(n, dtype=bool)
    else:
        dense = rng.uniform(1, 9, n).astype(dtype)
    dense = np.where(mask, dense, 0)
    (idx,) = np.nonzero(mask)
    v = Vector.from_coo(idx, dense[mask], size=n, dtype=dtype)
    return v, dense, mask


def assert_matrix_equals_dense(A: Matrix, dense: np.ndarray, mask: np.ndarray):
    """Value-and-pattern equality of a sparse matrix vs (dense, mask)."""
    assert np.array_equal(A.pattern(), mask), "pattern mismatch"
    got = A.to_dense()
    assert np.allclose(
        np.where(mask, got, 0), np.where(mask, dense, 0)
    ), "value mismatch"
