"""Deliverable (b) regression net: every example must run to completion.

Each example is executed as a subprocess (the way a user runs it) with a
hard timeout; a nonzero exit or an uncaught assertion fails the suite.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_example_inventory():
    """The paper-deliverable floor: a quickstart plus domain scenarios."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"
