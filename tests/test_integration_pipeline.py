"""End-to-end pipeline integration: the paper's data-science story.

Section IV frames the use case: data arrives from outside, becomes an
opaque GraphBLAS graph, flows through algorithms, and results flow back
out — with I/O, incremental updates, and move semantics along the way.
This test walks one miniature pipeline through every layer.
"""

import io

import numpy as np
import pytest

from repro import lagraph as lg
from repro import pygb
from repro.generators import rmat_graph
from repro.graphblas import (
    Matrix,
    Vector,
    export_matrix,
    import_matrix,
    nonblocking,
)
from repro.io import (
    load_graph_npz,
    mmread,
    mmwrite,
    read_edgelist,
    save_graph_npz,
    write_edgelist,
)


@pytest.fixture(scope="module")
def pipeline_graph():
    return rmat_graph(8, 8, seed=21, kind="undirected")


class TestFullPipeline:
    def test_generate_analyze_serialize_roundtrip(self, pipeline_graph, tmp_path):
        g = pipeline_graph

        # 1. analytics pass
        rank, _ = lg.pagerank(g)
        lg.check_pagerank(rank)
        cc = lg.connected_components(g)
        lg.check_component_labels(g, cc)
        tri = lg.triangle_count(g)
        assert tri >= 0

        # 2. binary serialization round trip preserves every result input
        save_graph_npz(tmp_path / "g.npz", g)
        g2 = load_graph_npz(tmp_path / "g.npz")
        assert g2.A.isequal(g.A)
        rank2, _ = lg.pagerank(g2)
        assert np.allclose(rank.to_dense(), rank2.to_dense())

        # 3. Matrix Market round trip through a text buffer
        buf = io.StringIO()
        mmwrite(buf, g.A)
        A3 = mmread(buf.getvalue())
        assert A3.isequal(g.A)

        # 4. edge-list round trip
        buf = io.StringIO()
        write_edgelist(buf, g)
        g4 = read_edgelist(buf.getvalue(), kind="undirected", n=g.n)
        assert lg.triangle_count(g4) == tri

    def test_streaming_update_then_reanalyze(self, pipeline_graph):
        g = pipeline_graph
        before = lg.connected_components(g)
        n_before = len(lg.component_sizes(before))
        # stream in a star of new edges from vertex 0 in non-blocking mode
        A = g.A.dup()
        with nonblocking():
            targets = np.arange(1, g.n, 7)
            for t in targets:
                A.set_element(0, int(t), 1.0)
                A.set_element(int(t), 0, 1.0)
            assert A.has_pending
        g2 = lg.Graph(A, "undirected")
        after = lg.connected_components(g2)
        n_after = len(lg.component_sizes(after))
        assert n_after <= n_before  # new edges can only merge components

    def test_move_out_compute_move_in(self, pipeline_graph):
        g = pipeline_graph
        tri = lg.triangle_count(g)
        # move the adjacency out, let "another library" normalize weights,
        # and move it back — zero copies end to end
        ex = export_matrix(g.A.dup(), "csr")
        ex.Ax[:] = 1.0  # the external consumer owns the arrays now
        A2 = import_matrix(ex)
        g2 = lg.Graph(A2, "undirected")
        assert lg.triangle_count(g2) == tri  # structure untouched

    def test_dsl_and_library_agree_end_to_end(self, pipeline_graph):
        g = pipeline_graph
        lib_levels = lg.bfs_level(0, g)

        graph = pygb.Matrix(g.A)
        frontier = pygb.Vector(Vector("BOOL", g.n))
        frontier[0] = True
        levels = pygb.Vector(Vector("INT64", g.n))
        depth = 0
        while frontier.nvals > 0:
            depth += 1
            levels[frontier][:] = depth
            with pygb.LogicalSemiring, pygb.Replace:
                frontier[~levels] = graph.T @ frontier
        got = {
            i: v - 1
            for i, v in zip(*(a.tolist() for a in levels._obj.extract_tuples()))
        }
        exp = dict(zip(*(a.tolist() for a in lib_levels.extract_tuples())))
        assert got == exp

    def test_block_assembly_of_bipartite_system(self, pipeline_graph):
        """concat builds the symmetric [0 B; B^T 0] bipartite embedding."""
        from repro.graphblas import operations as ops

        B = Matrix.from_coo([0, 1, 2], [1, 0, 2], np.ones(3), nrows=3, ncols=3)
        Z = Matrix("FP64", 3, 3)
        BT = Matrix("FP64", 3, 3)
        ops.transpose(BT, B)
        M = ops.concat([[Z, B], [BT, Z]])
        g = lg.Graph(M, "undirected")
        assert g.is_symmetric_structure
        # a bipartite embedding is 2-colorable
        colors = lg.greedy_color(g, seed=0)
        assert lg.is_valid_coloring(g, colors)
