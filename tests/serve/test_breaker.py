"""Circuit-breaker state machine, driven by an injected fake clock."""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


def make(clock, **kw):
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("reset_timeout_s", 5.0)
    kw.setdefault("probe_successes", 2)
    return CircuitBreaker("test", clock=clock, **kw)


class TestTrip:
    def test_starts_closed_and_allows(self, clock):
        br = make(clock)
        assert br.state == CLOSED
        assert br.allow()

    def test_trips_after_threshold_consecutive_failures(self, clock):
        br = make(clock)
        br.record_failure()
        br.record_failure()
        assert br.state == CLOSED
        br.record_failure()
        assert br.state == OPEN
        assert not br.allow()
        assert br.opened_total == 1

    def test_success_resets_the_consecutive_count(self, clock):
        br = make(clock)
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == CLOSED  # never 3 in a row

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_successes=0)


class TestHalfOpen:
    def trip(self, br):
        for _ in range(3):
            br.record_failure()
        assert br.state == OPEN

    def test_reset_timeout_goes_half_open(self, clock):
        br = make(clock)
        self.trip(br)
        clock.advance(4.9)
        assert br.state == OPEN
        clock.advance(0.2)
        assert br.state == HALF_OPEN

    def test_single_probe_slot(self, clock):
        br = make(clock)
        self.trip(br)
        clock.advance(5.1)
        assert br.allow()       # claims the probe slot
        assert not br.allow()   # a second concurrent probe is refused
        assert br.probes_total == 1

    def test_release_probe_frees_the_slot(self, clock):
        br = make(clock)
        self.trip(br)
        clock.advance(5.1)
        assert br.allow()
        br.release_probe()
        assert br.allow()

    def test_probe_successes_close_the_breaker(self, clock):
        br = make(clock)
        self.trip(br)
        clock.advance(5.1)
        assert br.allow()
        br.record_success()
        assert br.state == HALF_OPEN  # needs 2
        assert br.allow()
        br.record_success()
        assert br.state == CLOSED
        assert br.allow()

    def test_probe_failure_reopens_for_full_timeout(self, clock):
        br = make(clock)
        self.trip(br)
        clock.advance(5.1)
        assert br.allow()
        br.record_failure()
        assert br.state == OPEN
        assert br.opened_total == 2
        clock.advance(4.9)
        assert br.state == OPEN  # the timeout restarted
        clock.advance(0.2)
        assert br.state == HALF_OPEN


class TestHooks:
    def test_transition_hook_sees_every_change(self, clock):
        seen = []
        br = CircuitBreaker(
            "hooked", failure_threshold=2, reset_timeout_s=1.0,
            probe_successes=1, clock=clock,
            on_transition=lambda name, old, new: seen.append((name, old, new)),
        )
        br.record_failure()
        br.record_failure()
        clock.advance(1.1)
        assert br.allow()
        br.record_success()
        assert seen == [
            ("hooked", CLOSED, OPEN),
            ("hooked", OPEN, HALF_OPEN),
            ("hooked", HALF_OPEN, CLOSED),
        ]

    def test_snapshot_counters(self, clock):
        br = make(clock)
        br.record_failure()
        br.record_success()
        snap = br.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failures_total"] == 1
        assert snap["successes_total"] == 1
        assert snap["consecutive_failures"] == 0

    def test_state_codes(self, clock):
        br = make(clock)
        assert br.state_code == 0
        for _ in range(3):
            br.record_failure()
        assert br.state_code == 2
        clock.advance(5.1)
        assert br.state_code == 1
