"""Bounded admission: fair share, round-robin service, shedding."""

import pytest

from repro.serve.admission import AdmissionQueue
from repro.serve.errors import Overloaded


class TestBasics:
    def test_fifo_within_one_tenant(self):
        q = AdmissionQueue(8)
        for i in range(4):
            q.put(i, "a")
        assert [q.get(0) for _ in range(4)] == [0, 1, 2, 3]
        assert q.get(0) is None

    def test_depth_and_load(self):
        q = AdmissionQueue(4)
        assert q.load() == 0.0
        q.put("x", "a")
        q.put("y", "b")
        assert q.depth == 2
        assert q.depth_for("a") == 1
        assert q.depth_for("c") == 0
        assert q.load() == pytest.approx(0.5)
        assert set(q.tenants()) == {"a", "b"}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestFairness:
    def test_round_robin_across_tenants(self):
        q = AdmissionQueue(16)
        for i in range(3):
            q.put(f"a{i}", "a")
        for i in range(3):
            q.put(f"b{i}", "b")
        q.put("c0", "c")
        got = [q.get(0) for _ in range(7)]
        # tenant c's single request does not wait behind a's flood
        assert got.index("c0") < got.index("a2")
        assert got.index("b0") < got.index("a2")
        # per-tenant order is preserved
        assert got.index("a0") < got.index("a1") < got.index("a2")

    def test_full_queue_sheds_tenant_over_quota(self):
        q = AdmissionQueue(4)
        for i in range(4):
            q.put(i, "hog")  # fills the queue
        with pytest.raises(Overloaded) as exc:
            q.put(99, "hog")
        assert exc.value.reason == "queue_full"  # only tenant -> queue_full
        assert exc.value.tenant == "hog"
        assert q.shed_total == 1

    def test_quiet_tenant_admitted_past_capacity(self):
        q = AdmissionQueue(4)
        for i in range(4):
            q.put(i, "hog")
        # a quiet tenant is below its fair share (4 // 2 = 2): admitted
        q.put("first", "quiet")
        q.put("second", "quiet")
        with pytest.raises(Overloaded) as exc:
            q.put("third", "quiet")
        assert exc.value.reason == "tenant_quota"
        assert q.depth == 6  # bounded overflow, < 2 * capacity

    def test_hard_tenant_cap_always_enforced(self):
        q = AdmissionQueue(100)
        q.put(1, "t", max_queue=2)
        q.put(2, "t", max_queue=2)
        with pytest.raises(Overloaded) as exc:
            q.put(3, "t", max_queue=2)
        assert exc.value.reason == "tenant_limit"

    def test_admitted_counter(self):
        q = AdmissionQueue(4)
        q.put(1, "a")
        q.put(2, "b")
        assert q.admitted_total == 2


class TestLifecycle:
    def test_get_timeout_returns_none(self):
        q = AdmissionQueue(4)
        assert q.get(timeout=0.01) is None

    def test_close_wakes_getters(self):
        q = AdmissionQueue(4)
        q.close()
        assert q.get(timeout=5.0) is None  # returns immediately, no block

    def test_drain_empties_everything(self):
        q = AdmissionQueue(8)
        q.put(1, "a")
        q.put(2, "b")
        q.put(3, "a")
        items = q.drain()
        assert sorted(items) == [1, 2, 3]
        assert q.depth == 0
        assert q.get(0) is None
