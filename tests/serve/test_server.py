"""GraphServer end-to-end: the full query surface, lifecycle, tenancy,
deadlines, cancellation, health, configuration, and serve metrics."""

import time

import pytest

from repro import obs
from repro.graphblas import capi
from repro.graphblas.errors import Cancelled, DeadlineExceeded, InvalidValue
from repro.lagraph import Graph, bfs, connected_components, pagerank, sssp, \
    triangle_count
from repro.serve import (
    ALGORITHMS,
    GraphServer,
    Overloaded,
    ServeConfig,
    ServerClosed,
    TenantPolicy,
    register_algorithm,
)
from repro.serve.config import env_config
from repro.stream import GraphStream


def counter_total(name: str) -> float:
    merged = obs.registry().merged()
    return sum(v for (n, _), v in merged["counters"].items() if n == name)


@pytest.fixture
def server(edges):
    n, src, dst = edges
    with GraphServer(workers=2, deadline_s=None) as srv:
        srv.add_graph("g", n=n)
        srv.ingest("g", src, dst)
        srv.publish("g")
        yield srv


class TestQuerySurface:
    def test_every_algorithm_matches_a_direct_call(self, server):
        snap = server.snapshot("g")
        assert server.query("bfs", graph="g", source=0).isequal(
            bfs(0, snap)[0]
        )
        assert server.query("sssp", graph="g", source=0).isequal(
            sssp(0, snap)
        )
        assert server.query("pagerank", graph="g").isequal(
            pagerank(snap)[0]
        )
        assert server.query("triangles", graph="g") == triangle_count(snap)
        assert server.query("components", graph="g").isequal(
            connected_components(snap)
        )

    def test_async_tickets_resolve(self, server):
        tickets = [server.submit("bfs", graph="g", source=i)
                   for i in range(6)]
        for t in tickets:
            assert t.result(timeout=30) is not None
            assert t.outcome == "ok"
            assert t.backend == "optimized"
            assert t.tier == "full"
            assert t.exec_s is not None and t.queue_wait_s is not None

    def test_unknown_algorithm_rejected_at_submit(self, server):
        with pytest.raises(InvalidValue, match="unknown algorithm"):
            server.submit("nope", graph="g")

    def test_unknown_graph_rejected_at_submit(self, server):
        with pytest.raises(InvalidValue, match="unknown graph"):
            server.submit("bfs", graph="nope", source=0)

    def test_registered_algorithm_is_served(self, server):
        register_algorithm("nvals", lambda g: int(g.A.nvals))
        try:
            assert server.query("nvals", graph="g") == \
                int(server.snapshot("g").A.nvals)
            with pytest.raises(InvalidValue, match="already registered"):
                register_algorithm("nvals", lambda g: 0)
        finally:
            ALGORITHMS.pop("nvals", None)


class TestGraphManagement:
    def test_publish_returns_monotone_epochs(self, edges):
        n, src, dst = edges
        with GraphServer(workers=1, deadline_s=None) as srv:
            srv.add_graph("g", n=n)
            srv.ingest("g", src[:100], dst[:100])
            e1 = srv.publish("g")
            srv.ingest("g", src[100:], dst[100:])
            e2 = srv.publish("g")
            assert e2 > e1
            assert srv.snapshot("g").published_epoch == e2

    def test_static_graph_served_without_ingest(self, edges):
        n, src, dst = edges
        g = Graph.from_edges(src, dst, n=n)
        with GraphServer(workers=1, deadline_s=None) as srv:
            srv.add_graph("static", graph=g)
            assert srv.query("triangles", graph="static") == triangle_count(g)
            with pytest.raises(InvalidValue, match="static"):
                srv.ingest("static", src, dst)
            # publishing a static graph is a no-op returning its epoch
            assert srv.publish("static") == srv.snapshot(
                "static"
            ).published_epoch

    def test_add_graph_arg_validation(self):
        with GraphServer(workers=1, start=False) as srv:
            with pytest.raises(InvalidValue, match="exactly one"):
                srv.add_graph("g")
            with pytest.raises(InvalidValue, match="exactly one"):
                srv.add_graph("g", n=4, stream=GraphStream(4))
            srv.add_graph("g", n=4)
            with pytest.raises(InvalidValue, match="already served"):
                srv.add_graph("g", n=4)

    def test_query_before_publish_rejected(self, edges):
        n, src, dst = edges
        with GraphServer(workers=1, deadline_s=None) as srv:
            srv.add_graph("g", n=n)
            srv.ingest("g", src, dst)
            with pytest.raises(InvalidValue, match="no published snapshot"):
                srv.submit("bfs", graph="g", source=0)


class TestDeadlinesAndCancellation:
    @pytest.fixture(autouse=True)
    def sleeper(self):
        register_algorithm("sleep", lambda g, secs=0.2: time.sleep(secs))
        yield
        ALGORITHMS.pop("sleep", None)

    def test_deadline_passed_in_queue(self, edges):
        n, src, dst = edges
        with GraphServer(workers=1, deadline_s=None) as srv:
            srv.add_graph("g", n=n)
            srv.ingest("g", src, dst)
            srv.publish("g")
            srv.register_tenant("rush", deadline_s=0.05)
            blocker = srv.submit("sleep", graph="g", secs=0.3)
            late = srv.submit("bfs", graph="g", source=0, tenant="rush")
            with pytest.raises(DeadlineExceeded):
                late.result(timeout=10)
            assert late.outcome == "deadline"
            blocker.result(timeout=10)

    def test_cancel_while_queued(self, edges):
        n, src, dst = edges
        with GraphServer(workers=1, deadline_s=None) as srv:
            srv.add_graph("g", n=n)
            srv.ingest("g", src, dst)
            srv.publish("g")
            blocker = srv.submit("sleep", graph="g", secs=0.3)
            victim = srv.submit("bfs", graph="g", source=0)
            victim.cancel("changed my mind")
            with pytest.raises(Cancelled, match="changed my mind"):
                victim.result(timeout=10)
            assert victim.outcome == "cancelled"
            blocker.result(timeout=10)


class TestLifecycle:
    def test_drain_finishes_queued_work(self, server):
        tickets = [server.submit("bfs", graph="g", source=i)
                   for i in range(4)]
        assert server.drain(timeout=30)
        assert all(t.outcome == "ok" for t in tickets)
        with pytest.raises(ServerClosed):
            server.submit("bfs", graph="g", source=0)

    def test_close_then_submit_raises(self, edges):
        n, src, dst = edges
        srv = GraphServer(workers=1, deadline_s=None)
        srv.add_graph("g", n=n)
        srv.ingest("g", src, dst)
        srv.publish("g")
        srv.close()
        with pytest.raises(ServerClosed):
            srv.submit("bfs", graph="g", source=0)
        srv.close()  # idempotent

    def test_ready_requires_a_published_graph(self, edges):
        n, src, dst = edges
        with GraphServer(workers=1, deadline_s=None) as srv:
            assert not srv.ready()
            srv.add_graph("g", n=n)
            srv.ingest("g", src, dst)
            assert not srv.ready()
            srv.publish("g")
            assert srv.ready()

    def test_health_report_shape(self, server):
        server.query("bfs", graph="g", source=0)
        h = server.health()
        assert h["status"] == "running"
        assert h["ready"] is True
        assert h["tier"] == "full"
        assert h["workers"] == 2
        assert h["requests"].get("ok", 0) >= 1
        assert h["graphs"]["g"]["published_epoch"] is not None
        assert h["breakers"]["optimized"]["state"] == "closed"


class TestTenancy:
    def test_policies_inherit_server_defaults(self, server):
        server.register_tenant("vip", TenantPolicy(memory_budget=1 << 30))
        assert server.policy_for("vip").memory_budget == 1 << 30
        assert server.policy_for("unknown") == TenantPolicy()

    def test_hard_tenant_cap_sheds(self, edges):
        n, src, dst = edges
        srv = GraphServer(workers=1, deadline_s=None, start=False)
        srv.add_graph("g", n=n)
        srv.ingest("g", src, dst)
        srv.publish("g")
        srv.start()
        register_algorithm("block", lambda g: time.sleep(0.2))
        try:
            srv.register_tenant("capped", max_queue=1)
            shed = None
            for _ in range(6):  # cap is on *queued* work; one may be running
                try:
                    srv.submit("block", graph="g", tenant="capped")
                except Overloaded as exc:
                    shed = exc
                    break
            assert shed is not None
            assert shed.reason == "tenant_limit"
        finally:
            ALGORITHMS.pop("block", None)
            srv.close()


class TestConfiguration:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_SERVE_WORKERS", "7")
        monkeypatch.setenv("GRAPHBLAS_SERVE_QUEUE_DEPTH", "33")
        monkeypatch.setenv("GRAPHBLAS_SERVE_DEADLINE_S", "0")
        monkeypatch.setenv("GRAPHBLAS_SERVE_BUDGET", "64m")
        cfg = env_config()
        assert cfg.workers == 7
        assert cfg.queue_depth == 33
        assert cfg.deadline_s is None  # 0 disables
        assert cfg.memory_budget == 64 * 1024 * 1024

    def test_malformed_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_SERVE_WORKERS", "banana")
        assert env_config().workers == ServeConfig().workers

    def test_gxb_serve_set_get_roundtrip(self):
        assert capi.GxB_Serve_set(
            workers=2, queue_depth=9, backend="reference"
        ) == capi.GrB_SUCCESS
        cfg = capi.GxB_Serve_get()
        assert cfg["workers"] == 2
        assert cfg["queue_depth"] == 9
        assert cfg["backend"] == "reference"
        srv = GraphServer(start=False)
        assert srv.config.workers == 2
        assert srv.config.backend == "reference"

    def test_gxb_serve_set_rejects_bad_values(self):
        assert capi.GxB_Serve_set(queue_depth=0) == capi.Info.INVALID_VALUE
        assert capi.GxB_Serve_set(bogus=1) == capi.Info.INVALID_VALUE
        # a failed set never leaves a partial override behind
        assert capi.GxB_Serve_get()["queue_depth"] == \
            env_config().queue_depth

    def test_constructor_overrides_win(self):
        srv = GraphServer(workers=3, queue_depth=5, start=False)
        assert srv.config.workers == 3
        assert srv.config.queue_depth == 5


class TestServeMetrics:
    def test_request_counters_and_histograms_land(self, server):
        before = counter_total("serve_requests_total")
        server.query("bfs", graph="g", source=0)
        server.query("triangles", graph="g")
        assert counter_total("serve_requests_total") == before + 2
        merged = obs.registry().merged()
        hist = [k for k in merged["histograms"]
                if k[0] == "serve_request_seconds"]
        assert hist, "latency histogram missing"

    def test_queue_and_breaker_gauges_registered(self, server):
        # callback gauges are evaluated at scrape time via the merged view
        merged = obs.registry().merged()
        gauges = merged["gauges"]
        mine = {k for k in gauges
                if ("server", server.name) in k[1]}
        names = {k[0] for k in mine}
        assert "serve_queue_depth" in names
        assert "serve_inflight" in names
        assert "serve_breaker_state" in names

    def test_callback_gauges_released_on_close(self, edges):
        srv = GraphServer(workers=1, deadline_s=None, name="ephemeral")
        depth_key = ("serve_queue_depth", (("server", "ephemeral"),))
        assert depth_key in obs.registry().merged()["gauges"]
        srv.close()
        assert depth_key not in obs.registry().merged()["gauges"]
