"""Property: published snapshots are immutable under concurrent ingest.

Hypothesis drives random interleavings of ingest / publish / query
against a served graph in each of the four storage formats.  The
invariants:

* a published snapshot equals the oracle of every edge applied before
  the publish (dict semantics: last write per coordinate wins);
* later ingestion and publication never change an already-taken
  snapshot — readers pinned to an epoch observe no in-flight mutation;
* a query submitted against an epoch computes exactly what a direct
  call on that pinned snapshot computes.

A separate threaded test runs real concurrent readers against a writer
that ingests and republishes in a loop.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lagraph import Graph, GraphKind, bfs, triangle_count
from repro.serve import GraphServer
from repro.stream import GraphStream

N = 12
FORMATS = ("csr", "csc", "hypercsr", "hypercsc")

_edge = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
    lambda e: e[0] != e[1]
)
_step = st.one_of(
    st.tuples(st.just("ingest"), st.lists(_edge, min_size=1, max_size=6)),
    st.tuples(st.just("publish")),
    st.tuples(st.just("query")),
)


def _oracle_graph(edges: set) -> Graph:
    """The expected published graph for a set of applied (u, v) edges.

    Canonicalize each undirected edge to one (min, max) pair;
    ``from_edges`` mirrors it, matching the stream's UNDIRECTED ingest,
    and coordinate collisions collapse (stream setElement is last-wins,
    every weight is the default 1.0).
    """
    canon = sorted({(min(u, v), max(u, v)) for u, v in edges})
    if canon:
        s, d = map(np.asarray, zip(*canon))
    else:
        s = d = np.empty(0, dtype=np.int64)
    w = np.ones(s.size, dtype=np.float64)
    return Graph.from_edges(s, d, w, n=N, kind=GraphKind.UNDIRECTED)


@pytest.mark.parametrize("fmt", FORMATS)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(steps=st.lists(_step, min_size=1, max_size=12))
def test_snapshots_isolated_from_later_ingest(fmt, steps):
    stream = GraphStream(N, kind=GraphKind.UNDIRECTED, width=1e9)
    stream.graph.A.set_format(fmt)
    with GraphServer(workers=2, deadline_s=None) as srv:
        srv.add_graph("g", stream=stream)
        applied: set = set()     # edges ingested so far
        published: set = set()   # oracle for the live published snapshot
        taken = []               # (snapshot, oracle-at-publish) history
        ts = 0.0
        srv.publish("g")         # epoch 0: the empty graph
        for step in steps:
            if step[0] == "ingest":
                _, batch = step
                s = np.array([e[0] for e in batch])
                d = np.array([e[1] for e in batch])
                srv.ingest("g", s, d, np.full(s.size, ts))
                ts += 1e-3
                applied |= set(batch)
            elif step[0] == "publish":
                srv.publish("g")
                published = set(applied)
                snap = srv.snapshot("g")
                assert snap.A.isequal(_oracle_graph(published).A)
                taken.append((snap, _oracle_graph(published)))
            else:  # query: parity against a direct call on the pinned epoch
                t = srv.submit("triangles", graph="g")
                assert t.result(30) == triangle_count(t.snapshot)
        # no snapshot in the history mutated, no matter what came after
        for snap, oracle in taken:
            assert snap.A.isequal(oracle.A)


def test_concurrent_readers_never_see_inflight_mutations():
    rng = np.random.default_rng(5)
    stream = GraphStream(N * 8, kind=GraphKind.UNDIRECTED, width=1e9)
    failures = []
    stop = threading.Event()
    with GraphServer(workers=4, deadline_s=None) as srv:
        srv.add_graph("g", stream=stream)
        srv.publish("g")

        def writer():
            ts = 0.0
            for _ in range(30):
                s = rng.integers(0, N * 8, 40)
                d = rng.integers(0, N * 8, 40)
                keep = s != d
                srv.ingest("g", s[keep], d[keep], np.full(keep.sum(), ts))
                ts += 1e-3
                srv.publish("g")
            stop.set()

        def reader(seed):
            while not stop.is_set():
                t = srv.submit("bfs", graph="g", source=seed)
                got = t.result(30)
                # the pinned snapshot must reproduce the served result
                # exactly, even though the writer kept publishing
                want = bfs(seed, t.snapshot)[0]
                if not got.isequal(want):
                    failures.append(t.seq)
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    assert not failures, f"non-reproducible reads: {failures}"
