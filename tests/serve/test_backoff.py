"""The shared backoff schedule and its adoption by the governor."""

import pytest

from repro.graphblas import governor
from repro.graphblas.errors import InvalidValue, OutOfMemory
from repro.serve.backoff import Backoff, retry_call


class TestBackoff:
    def test_raw_is_capped_exponential(self):
        b = Backoff(base=0.01, cap=0.05, factor=2.0, jitter=0.0)
        assert b.raw(1) == pytest.approx(0.01)
        assert b.raw(2) == pytest.approx(0.02)
        assert b.raw(3) == pytest.approx(0.04)
        assert b.raw(4) == pytest.approx(0.05)  # capped
        assert b.raw(10) == pytest.approx(0.05)

    def test_zero_jitter_is_deterministic_ladder(self):
        b = Backoff(base=0.01, cap=1.0, jitter=0.0)
        assert b.delays(3) == [b.raw(1), b.raw(2), b.raw(3)]

    def test_jitter_bounds(self):
        b = Backoff(base=0.01, cap=1.0, jitter=1.0, seed=3)
        for k in range(1, 8):
            d = b.delay(k)
            assert 0.0 <= d <= b.raw(k)
        half = Backoff(base=0.01, cap=1.0, jitter=0.5, seed=3)
        for k in range(1, 8):
            d = half.delay(k)
            assert half.raw(k) * 0.5 <= d <= half.raw(k)

    def test_seeded_replay(self):
        a = Backoff(base=0.01, cap=1.0, jitter=1.0, seed=42)
        b = Backoff(base=0.01, cap=1.0, jitter=1.0, seed=42)
        assert a.delays(6) == b.delays(6)
        c = Backoff(base=0.01, cap=1.0, jitter=1.0, seed=43)
        assert a.delays(6) != c.delays(6)

    def test_reset_rewinds_the_stream(self):
        b = Backoff(base=0.01, cap=1.0, jitter=1.0, seed=9)
        first = b.delays(4)
        b.reset()
        assert b.delays(4) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(base=-1)
        with pytest.raises(ValueError):
            Backoff(jitter=1.5)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)
        with pytest.raises(ValueError):
            Backoff().raw(0)


class TestRetryCall:
    def test_success_needs_no_backoff(self):
        calls = []
        out = retry_call(lambda: calls.append(1) or "ok", attempts=3,
                         backoff=Backoff(jitter=0.0), transient=ValueError,
                         sleep=lambda d: None)
        assert out == "ok" and len(calls) == 1

    def test_transient_retried_then_succeeds(self):
        state = {"n": 0}
        slept = []

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise ValueError("transient")
            return state["n"]

        out = retry_call(flaky, attempts=5,
                         backoff=Backoff(base=0.01, jitter=0.0),
                         transient=ValueError, sleep=slept.append)
        assert out == 3
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_attempts_exhausted_raises_last(self):
        def always():
            raise ValueError("still broken")

        with pytest.raises(ValueError, match="still broken"):
            retry_call(always, attempts=3, backoff=Backoff(jitter=0.0),
                       transient=ValueError, sleep=lambda d: None)

    def test_non_transient_propagates_immediately(self):
        calls = []

        def wrong():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_call(wrong, attempts=5, backoff=Backoff(jitter=0.0),
                       transient=ValueError, sleep=lambda d: None)
        assert len(calls) == 1

    def test_on_retry_runs_before_sleep_and_can_abort(self):
        order = []

        def failing():
            raise ValueError("x")

        def on_retry(failures, delay, exc):
            order.append(("retry", failures))
            if failures == 2:
                raise RuntimeError("cancelled mid-backoff")

        with pytest.raises(RuntimeError):
            retry_call(failing, attempts=5,
                       backoff=Backoff(base=0.01, jitter=0.0),
                       transient=ValueError,
                       on_retry=on_retry,
                       sleep=lambda d: order.append(("sleep", d)))
        # the abort in on_retry fired before its sleep
        assert order == [("retry", 1), ("sleep", 0.01), ("retry", 2)]


class TestGovernorAdoption:
    """RetryPolicy now delegates to the shared Backoff schedule."""

    def test_delay_matches_shared_backoff(self):
        policy = governor.RetryPolicy(
            3, base_delay=0.01, max_delay=0.3, jitter=0.7, seed=11
        )
        mirror = Backoff(base=0.01, cap=0.3, jitter=0.7, seed=11)
        assert [policy.delay(k) for k in (1, 2, 3)] == mirror.delays(3)

    def test_policy_retries_transient_and_counts(self):
        policy = governor.RetryPolicy(
            3, base_delay=0.0, max_delay=0.0, seed=0
        )
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 2:
                raise OutOfMemory("injected")
            return "served"

        with governor.ExecutionContext() as ctx:
            assert policy.call(flaky, op="test") == "served"
        assert ctx.stats["retries"] == 1

    def test_policy_rejects_bad_jitter(self):
        with pytest.raises(InvalidValue):
            governor.RetryPolicy(3, jitter=2.0)
