"""Serve-suite plumbing: every test here carries the `serve` mark.

Mirrors the resilience suite's guards: fault injection must be fully
disarmed around every test, and the CI serve-smoke leg's
``GRAPHBLAS_GOVERNOR_*`` environment wraps each test in a governed
context so the whole suite doubles as an admission-path stress test.
"""

import os

import numpy as np
import pytest

import repro.graphblas.faults as faults
import repro.graphblas.governor as governor
from repro.serve.config import reset_serve_config

_HERE = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    for item in items:
        if str(item.fspath).startswith(_HERE):
            item.add_marker(pytest.mark.serve)


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Fault injection must be fully disarmed before and after every test."""
    assert not faults.ENABLED and not faults.active_plans()
    faults.reset_stats()
    yield
    assert not faults.ENABLED and not faults.active_plans()


@pytest.fixture(autouse=True)
def _clean_serve_config():
    """GxB_Serve_set overrides never leak across tests."""
    reset_serve_config()
    yield
    reset_serve_config()


@pytest.fixture(autouse=True)
def _governed():
    budget, deadline = governor.env_limits()
    if budget is None and deadline is None:
        yield
        return
    with governor.ExecutionContext(memory_budget=budget, deadline=deadline):
        yield


@pytest.fixture
def edges():
    """A reproducible random edge batch on 96 vertices (no self loops)."""
    rng = np.random.default_rng(7)
    n = 96
    src = rng.integers(0, n, 900)
    dst = rng.integers(0, n, 900)
    keep = src != dst
    return n, src[keep], dst[keep]
