"""Failure handling under load: breaker trips and transparent fallback,
half-open recovery, the degradation ladder, and serve-level retries."""

import threading
import time

import pytest

from repro import obs
from repro.graphblas import backends, engine, faults, governor
from repro.graphblas.errors import BudgetExceeded, OutOfMemory
from repro.lagraph import bfs
from repro.serve import ALGORITHMS, GraphServer, register_algorithm
from repro.serve.server import _engine_off


def counter_total(name: str, **labels) -> float:
    want = tuple(sorted((k, str(v)) for k, v in labels.items()))
    merged = obs.registry().merged()
    return sum(
        v for (n, ls), v in merged["counters"].items()
        if n == name and all(pair in ls for pair in want)
    )


class FlakyBackend(backends.KernelBackend):
    """Delegates to the optimized backend; raises while ``broken``."""

    name = "flaky"
    fallback = None
    broken = True

    def __init__(self):
        from repro.graphblas.plan import TABLE1_OPS

        inner = backends.get_backend("optimized")
        for op in TABLE1_OPS:
            setattr(self, op, self._wrap(getattr(inner, op)))

    @staticmethod
    def _wrap(inner_op):
        def call(plan):
            if FlakyBackend.broken:
                raise OutOfMemory("flaky backend down")
            return inner_op(plan)

        return call


@pytest.fixture
def flaky():
    backends.register_backend("flaky", FlakyBackend, replace=True)
    FlakyBackend.broken = True
    yield FlakyBackend
    FlakyBackend.broken = False


class TestBreakerFallback:
    def test_trip_fallback_and_half_open_recovery(self, edges, flaky):
        n, src, dst = edges
        with GraphServer(
            workers=1, deadline_s=None, backend="flaky",
            fallbacks=("reference", "scipy"), attempts=1,
            breaker_threshold=2, breaker_reset_s=0.15, breaker_probes=2,
        ) as srv:
            srv.add_graph("g", n=n)
            srv.ingest("g", src, dst)
            srv.publish("g")
            expected = bfs(0, srv.snapshot("g"))[0]

            # the broken primary fails over transparently: correct results
            t1 = srv.submit("bfs", graph="g", source=0)
            assert t1.result(30).isequal(expected)
            assert t1.backend == "reference"
            assert t1.failovers >= 1
            t2 = srv.submit("bfs", graph="g", source=0)
            assert t2.result(30).isequal(expected)
            br = srv.stats()["breakers"]["flaky"]
            assert br["state"] == "open"          # threshold 2 reached
            assert br["failures_total"] >= 2

            # while open, the primary is skipped outright (no failovers)
            t3 = srv.submit("bfs", graph="g", source=0)
            assert t3.result(30).isequal(expected)
            assert t3.backend == "reference"
            assert t3.failovers == 0

            # backend heals; after the reset timeout, half-open probes
            # restore the primary
            flaky.broken = False
            time.sleep(0.2)
            restored = None
            for _ in range(4):  # probe_successes=2 probes close it
                t = srv.submit("bfs", graph="g", source=0)
                assert t.result(30).isequal(expected)
                if t.backend == "flaky":
                    restored = t
            assert restored is not None, "primary never restored"
            assert srv.stats()["breakers"]["flaky"]["state"] == "closed"

    def test_breaker_transition_metrics(self, edges, flaky):
        n, src, dst = edges
        before = counter_total("serve_breaker_transitions_total",
                               backend="flaky")
        with GraphServer(
            workers=1, deadline_s=None, backend="flaky",
            fallbacks=("reference",), attempts=1,
            breaker_threshold=1, breaker_reset_s=60.0,
        ) as srv:
            srv.add_graph("g", n=n)
            srv.ingest("g", src, dst)
            srv.publish("g")
            srv.query("triangles", graph="g")
        assert counter_total("serve_breaker_transitions_total",
                             backend="flaky") > before


class TestDegradationLadder:
    @pytest.fixture
    def gated(self, edges):
        n, src, dst = edges
        gate = threading.Event()
        register_algorithm("gate", lambda g: gate.wait(10))
        srv = GraphServer(workers=1, deadline_s=None, queue_depth=10)
        srv.add_graph("g", n=n)
        srv.ingest("g", src, dst)
        srv.publish("g")
        yield srv, gate
        gate.set()
        srv.close()
        ALGORITHMS.pop("gate", None)

    def test_queue_load_walks_the_tiers(self, gated):
        srv, gate = gated
        assert srv.current_tier() == "full"
        blocker = srv.submit("gate", graph="g")
        # wait until the worker picked the blocker up (it leaves the queue)
        for _ in range(100):
            if srv._queue.depth == 0 and blocker.t_start is not None:
                break
            time.sleep(0.01)
        before = counter_total("serve_degrade_total")
        queued = [srv.submit("gate", graph="g") for _ in range(6)]
        assert srv.current_tier() == "lite"       # 6/10 >= 0.60
        queued += [srv.submit("gate", graph="g") for _ in range(3)]
        assert srv.current_tier() == "reference"  # 9/10 >= 0.85
        assert counter_total("serve_degrade_total") >= before + 2
        gate.set()
        for t in [blocker, *queued]:
            t.result(30)
        assert srv.current_tier() == "full"

    def test_degraded_tiers_still_answer_correctly(self, gated):
        srv, gate = gated
        blocker = srv.submit("gate", graph="g")
        for _ in range(100):  # let the worker pick the blocker up
            if blocker.t_start is not None:
                break
            time.sleep(0.01)
        # FIFO within a tenant: the probe runs right after the blocker,
        # while the six gated requests still stuff the queue (load 0.6)
        probe = srv.submit("bfs", graph="g", source=0)
        queued = [srv.submit("gate", graph="g") for _ in range(6)]
        gate.set()
        expected = bfs(0, srv.snapshot("g"))[0]
        assert probe.result(30).isequal(expected)
        assert probe.tier in ("lite", "reference")
        for t in [blocker, *queued]:
            t.result(30)


class TestEngineOffTier:
    def test_refcounted_toggle_restores_engine(self):
        assert engine.get_config().enabled
        with _engine_off():
            assert not engine.get_config().enabled
            with _engine_off():  # nested: refcounted, stays off
                assert not engine.get_config().enabled
            assert not engine.get_config().enabled
        assert engine.get_config().enabled


class TestServeRetries:
    def test_fault_injected_failures_are_retried(self, edges):
        n, src, dst = edges
        with GraphServer(workers=1, deadline_s=None,
                         base_delay_s=0.0, max_delay_s=0.0) as srv:
            srv.add_graph("g", n=n)
            srv.ingest("g", src, dst)
            srv.publish("g")
            expected = bfs(0, srv.snapshot("g"))[0]
            before = counter_total("serve_retries_total")
            with faults.inject("serve.exec", nth=1, max_fires=2):
                t = srv.submit("bfs", graph="g", source=0)
                assert t.result(30).isequal(expected)
            assert t.retries >= 1
            assert t.outcome == "ok"
            assert counter_total("serve_retries_total") > before

    def test_budget_exceeded_retries_with_spill_forced(self, edges):
        n, src, dst = edges
        seen = {"spill": [], "calls": 0}

        def budgety(g):
            ctx = governor.current()
            seen["spill"].append(None if ctx is None else ctx.spill)
            seen["calls"] += 1
            if seen["calls"] == 1:
                raise BudgetExceeded("estimated over budget")
            return "served"

        register_algorithm("budgety", budgety)
        try:
            with GraphServer(workers=1, deadline_s=None,
                             base_delay_s=0.0, max_delay_s=0.0) as srv:
                srv.add_graph("g", n=n)
                srv.ingest("g", src, dst)
                srv.publish("g")
                t = srv.submit("budgety", graph="g")
                assert t.result(30) == "served"
                assert t.retries == 1
            # the retry forced the governor's tiled spill path on
            assert seen["spill"] == [None, True]
        finally:
            ALGORITHMS.pop("budgety", None)
