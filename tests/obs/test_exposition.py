"""Prometheus text / JSON snapshot exposition, linter, emitter."""

import io
import json

import pytest

from repro.obs.exposition import (
    Emitter,
    check_prometheus_text,
    json_snapshot,
    prometheus_text,
)
from repro.obs.registry import MetricsRegistry


def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.declare("req_total", "counter", "Requests served")
    reg.declare("lat_seconds", "histogram", "Request latency")
    reg.declare("depth", "gauge", "Queue depth")
    reg.counter_inc("req_total", 3, {"op": "mxm"})
    reg.counter_inc("req_total", 1, {"op": "mxv"})
    for v in (0.001, 0.004, 0.25, 1.5):
        reg.observe("lat_seconds", v, {"op": "mxm"})
    reg.gauge_set("depth", 4)
    return reg


class TestPrometheusText:
    def test_help_type_and_samples(self):
        text = prometheus_text(sample_registry())
        lines = text.splitlines()
        assert "# HELP req_total Requests served" in lines
        assert "# TYPE req_total counter" in lines
        assert 'req_total{op="mxm"} 3' in lines
        assert 'req_total{op="mxv"} 1' in lines
        assert "# TYPE depth gauge" in lines
        assert "depth 4" in lines

    def test_histogram_series(self):
        text = prometheus_text(sample_registry())
        lines = text.splitlines()
        count = [l for l in lines if l.startswith("lat_seconds_count")]
        assert count == ['lat_seconds_count{op="mxm"} 4']
        (sum_line,) = [l for l in lines if l.startswith("lat_seconds_sum")]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(1.755)
        buckets = [l for l in lines if l.startswith("lat_seconds_bucket")]
        # cumulative and capped by +Inf == count
        values = [float(l.rsplit(" ", 1)[1]) for l in buckets]
        assert values == sorted(values)
        assert 'le="+Inf"' in buckets[-1]
        assert values[-1] == 4

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter_inc("c", 1, {"msg": 'a"b\\c\nd'})
        text = prometheus_text(reg)
        assert r'msg="a\"b\\c\nd"' in text
        assert check_prometheus_text(text) == []

    def test_lint_clean(self):
        assert check_prometheus_text(prometheus_text(sample_registry())) == []

    def test_lint_catches_garbage(self):
        assert check_prometheus_text("this is not prometheus\n") != []
        # non-cumulative buckets
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\nh_count 5\n"
        )
        assert any("monotonic" in e or "cumulative" in e
                   for e in check_prometheus_text(bad))

    def test_empty_registry_is_valid(self):
        text = prometheus_text(MetricsRegistry())
        assert check_prometheus_text(text) == []


class TestJsonSnapshot:
    def test_round_trip_against_prometheus(self):
        reg = sample_registry()
        snap = json.loads(json_snapshot(reg))
        text = prometheus_text(reg)
        # every counter total in the JSON appears verbatim as a sample
        for name, series in snap["counters"].items():
            for s in series:
                labels = ",".join(
                    f'{k}="{v}"' for k, v in sorted(s["labels"].items())
                )
                want = f"{name}{{{labels}}} {s['value']}" if labels else \
                    f"{name} {s['value']}"
                assert want in text
        # histogram counts match the _count samples
        (h,) = snap["histograms"]["lat_seconds"]
        assert 'lat_seconds_count{op="mxm"} 4' in text
        assert h["count"] == 4


class TestEmitter:
    def test_emit_once_writes_one_json_line(self):
        reg = sample_registry()
        out = io.StringIO()
        em = Emitter(reg, interval_s=3600, stream=out)
        em.emit_once()
        (line,) = out.getvalue().strip().splitlines()
        payload = json.loads(line)
        assert payload["kind"] == "metrics"
        assert payload["counters"]["req_total"] == 4  # summed across labels
        assert payload["histograms"]["lat_seconds"]["count"] == 4

    def test_start_stop_final_emit(self):
        reg = sample_registry()
        out = io.StringIO()
        em = Emitter(reg, interval_s=3600, stream=out)
        em.start()
        em.stop(final_emit=True)
        assert out.getvalue().count('"kind": "metrics"') >= 1
