"""obs.enable end-to-end: telemetry fan-out, metric names, capi, slow ops."""

import json

import pytest

from repro import obs
from repro.graphblas import FP64, Matrix, Vector, capi, operations as ops
from repro.graphblas import telemetry


def do_work():
    A = Matrix.from_coo([0, 1, 2, 0], [1, 2, 0, 2], [1.0, 2.0, 3.0, 4.0],
                        nrows=3, ncols=3, dtype=FP64)
    B = Matrix.from_coo([0, 1, 2], [0, 1, 2], [1.0, 1.0, 1.0],
                        nrows=3, ncols=3, dtype=FP64)
    C = Matrix(FP64, 3, 3)
    ops.mxm(C, A, B, "plus_times")
    v = Vector.from_coo([0, 1], [1.0, 2.0], size=3, dtype=FP64)
    w = Vector(FP64, 3)
    ops.mxv(w, A, v, "plus_times")
    return C


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert not telemetry.ENABLED

    def test_enable_sets_flags_and_collects(self):
        obs.enable()
        assert obs.enabled()
        assert telemetry.ENABLED  # sink alone keeps the fast path on
        do_work()
        snap = obs.snapshot()
        ops_hist = {s["labels"]["op"] for s in snap["histograms"]["graphblas_op_seconds"]}
        assert {"mxm", "mxv"} <= ops_hist
        routes = snap["counters"]["graphblas_plan_route_total"]
        assert sum(s["value"] for s in routes) == 2
        dispatch = snap["counters"]["graphblas_backend_dispatch_total"]
        assert all(s["labels"]["backend"] for s in dispatch)

    def test_enable_is_idempotent(self):
        r1 = obs.enable()
        r2 = obs.enable()
        assert r1 is r2
        do_work()
        snap = obs.snapshot()
        assert sum(
            s["value"] for s in snap["counters"]["graphblas_plan_route_total"]
        ) == 2

    def test_disable_stops_collection_keeps_totals(self):
        obs.enable()
        do_work()
        before = obs.snapshot()
        obs.disable()
        assert not obs.enabled()
        assert not telemetry.ENABLED
        do_work()
        after = obs.snapshot()
        # nothing new landed, nothing lost (gauges excluded: callback
        # gauges read live engine state and keep moving by design)
        assert after["counters"] == before["counters"]
        assert after["histograms"] == before["histograms"]

    def test_works_from_threads_without_collectors(self):
        import threading

        obs.enable()
        ts = [threading.Thread(target=do_work) for _ in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        snap = obs.snapshot()
        total = sum(
            s["value"] for s in snap["counters"]["graphblas_plan_route_total"]
        )
        assert total == 8  # 4 threads x (mxm + mxv)

    def test_engine_gauges_present(self):
        obs.enable()
        do_work()
        snap = obs.snapshot()
        kc = snap["gauges"]["graphblas_engine_kernel_cache"]
        stats = {s["labels"]["stat"] for s in kc}
        assert {"hits", "misses", "size", "capacity"} <= stats


class TestCollectorStillWorks:
    def test_collector_and_sink_both_fed(self):
        obs.enable()
        with telemetry.collect() as col:
            do_work()
            snap = col.snapshot()
        assert snap["ops"]["mxm"]["calls"] == 1
        reg_snap = obs.snapshot()
        assert "graphblas_op_seconds" in reg_snap["histograms"]

    def test_collector_only_stream_unchanged_without_obs(self):
        # plan.done must not leak into collector-only telemetry
        with telemetry.collect() as col:
            do_work()
            kinds = set(col.snapshot()["decisions"])
        assert "plan.done" not in kinds


class TestDroppedEvents:
    def test_dropped_counter_reaches_registry(self):
        obs.enable()
        with telemetry.collect(max_events=2):
            do_work()  # overflows the 2-event ring buffer
        snap = obs.snapshot()
        dropped = snap["counters"].get("graphblas_telemetry_dropped_total")
        assert dropped is not None
        assert sum(s["value"] for s in dropped) > 0
        assert all("type" in s["labels"] for s in dropped)


class TestSlowOps:
    def test_slow_ops_recorded_with_explain_fields(self):
        obs.enable(slow_ms=0.0)  # admit every plan
        do_work()
        records = obs.slow_ops()
        assert records
        r = records[0]
        assert {"op", "backend", "route", "seconds"} <= set(r)
        # slowest-first ordering
        secs = [rec["seconds"] for rec in records]
        assert secs == sorted(secs, reverse=True)

    def test_threshold_filters(self):
        obs.enable(slow_ms=1e6)  # nothing is that slow
        do_work()
        assert obs.slow_ops() == []

    def test_threshold_roundtrip(self):
        obs.set_slow_op_threshold(250.0)
        assert obs.slow_op_threshold() == pytest.approx(250.0)


class TestCapi:
    def test_obs_set_get(self):
        assert capi.GxB_Obs_get() is False
        assert capi.GxB_Obs_set(True) == capi.GrB_SUCCESS
        assert capi.GxB_Obs_get() is True
        assert capi.GxB_Obs_set(False) == capi.GrB_SUCCESS
        assert capi.GxB_Obs_get() is False

    def test_metrics_get_formats(self):
        capi.GxB_Obs_set(True)
        do_work()
        snap = capi.GxB_Metrics_get("snapshot")
        assert "graphblas_plan_route_total" in snap["counters"]
        parsed = json.loads(capi.GxB_Metrics_get("json"))
        assert parsed["counters"].keys() == snap["counters"].keys()
        text = capi.GxB_Metrics_get("prometheus")
        assert obs.check_prometheus_text(text) == []
        with pytest.raises(Exception):
            capi.GxB_Metrics_get("xml")


class TestPrometheusRoundTrip:
    def test_text_totals_match_snapshot(self):
        obs.enable()
        do_work()
        text = obs.prometheus_text()
        assert obs.check_prometheus_text(text) == []
        snap = obs.snapshot()
        samples = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                body, value = line.rsplit(" ", 1)
                samples[body] = float(value) if value != "+Inf" else float("inf")
        for name, series in snap["counters"].items():
            for s in series:
                labels = ",".join(
                    f'{k}="{v}"' for k, v in sorted(s["labels"].items())
                )
                key = f"{name}{{{labels}}}" if labels else name
                assert samples[key] == s["value"]
