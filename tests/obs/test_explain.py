"""obs.explain: per-plan reports, including the over-budget tiled case."""

import numpy as np
import pytest

from repro import obs
from repro.graphblas import FP64, Matrix, Vector, capi, operations as ops
from repro.graphblas import telemetry


def small_mats():
    A = Matrix.from_coo([0, 1, 2, 0], [1, 2, 0, 2], [1.0, 2.0, 3.0, 4.0],
                        nrows=3, ncols=3, dtype=FP64)
    B = Matrix.from_coo([0, 1, 2], [0, 1, 2], [1.0, 1.0, 1.0],
                        nrows=3, ncols=3, dtype=FP64)
    return A, B


class TestExplainBasics:
    def test_one_plan_per_dispatch(self):
        A, B = small_mats()

        def run():
            C = Matrix(FP64, 3, 3)
            ops.mxm(C, A, B, "plus_times")
            return C

        rep = obs.explain(run)
        assert len(rep.records) == 1
        r = rep.records[0]
        assert r["op"] == "mxm"
        assert r["route"] == "direct"
        assert r["backend"]
        assert r["seconds"] > 0
        assert r["actual_bytes"] > 0
        assert rep.result is not None
        assert rep.result.nvals == 4

    def test_report_renders_text_and_dict(self):
        A, B = small_mats()
        rep = obs.explain(
            lambda: ops.mxm(Matrix(FP64, 3, 3), A, B, "plus_times")
        )
        text = str(rep)
        assert "EXPLAIN: executed plans" in text
        assert "mxm" in text
        d = rep.as_dict()
        assert d["plans"][0]["op"] == "mxm"
        assert "ops" in d and "spans" in d

    def test_no_plans(self):
        rep = obs.explain(lambda: 42)
        assert rep.records == []
        assert rep.result == 42
        assert "no plans executed" in str(rep)

    def test_args_passthrough(self):
        rep = obs.explain(lambda a, b=0: a + b, 1, b=2)
        assert rep.result == 3

    def test_mxv_direction_shows_as_method(self):
        A, _ = small_mats()
        v = Vector.from_coo([0, 1], [1.0, 2.0], size=3, dtype=FP64)

        def run():
            w = Vector(FP64, 3)
            ops.mxv(w, A, v, "plus_times")

        rep = obs.explain(run)
        (r,) = rep.records
        assert r["op"] == "mxv"
        assert r.get("direction") in ("push", "pull", None) or r.get("method")

    def test_works_without_obs_enabled(self):
        assert not obs.enabled()
        A, B = small_mats()
        rep = obs.explain(
            lambda: ops.mxm(Matrix(FP64, 3, 3), A, B, "plus_times")
        )
        assert len(rep.records) == 1
        # and plan events stop once the capture exits
        assert not telemetry.PLAN_EVENTS

    def test_nested_in_outer_collector_keeps_outer_events(self):
        A, B = small_mats()
        with telemetry.collect() as col:
            ops.mxm(Matrix(FP64, 3, 3), A, B, "plus_times")
            before = len(col.events)
            rep = obs.explain(
                lambda: ops.mxm(Matrix(FP64, 3, 3), A, B, "plus_times")
            )
            # the outer collector saw the explained run's events too
            assert len(col.events) > before
        assert len(rep.records) == 1


class TestExplainOverBudget:
    """The acceptance case: an over-budget mxm must show the governor's
    tiled re-plan, spill counts, and est-vs-actual bytes in one report."""

    def test_tiled_replan_with_spills(self, tmp_path):
        rng = np.random.default_rng(7)
        n, nnz = 200, 4000
        r = rng.integers(0, n, nnz)
        c = rng.integers(0, n, nnz)
        v = rng.random(nnz)
        A = Matrix.from_coo(r, c, v, nrows=n, ncols=n, dtype=FP64, dup="first")
        B = Matrix.from_coo(c, r, v, nrows=n, ncols=n, dtype=FP64, dup="first")

        def run():
            C = Matrix(FP64, n, n)
            with capi.GxB_Context_new(
                memory_budget=64 * 1024, spill=True,
                spill_dir=str(tmp_path), spill_budget=32 * 1024,
            ):
                ops.mxm(C, A, B, "plus_times")
            return C

        rep = obs.explain(run)
        (r0,) = [r for r in rep.records if r["op"] == "mxm"]
        assert r0["route"] == "tiled"
        assert r0["admission"] == "tiled"
        assert r0["est_bytes"] > 0
        assert r0["actual_bytes"] > 0
        assert r0["tiles"] > 0
        # the tiny resident budget forces real spill traffic
        assert r0["spills"] > 0
        assert r0["spilled_bytes"] > 0
        # and the one-call report carries it all as a single row
        text = str(rep)
        assert "tiled" in text
        assert rep.result.nvals > 0

    def test_degraded_route_visible(self):
        A, B = small_mats()

        def run():
            C = Matrix(FP64, 3, 3)
            with capi.GxB_Context_new(memory_budget=1, spill=False,
                                      degrade=True):
                ops.mxm(C, A, B, "plus_times")
            return C

        rep = obs.explain(run)
        (r0,) = [r for r in rep.records if r["op"] == "mxm"]
        assert r0["route"] == "degraded"
        assert r0["admission"] == "degraded"
