"""MetricsRegistry: sharded counters, log2 histograms, concurrency."""

import math
import threading

import pytest

from repro.obs.registry import (
    MAX_EXP,
    MIN_EXP,
    MetricsRegistry,
    bucket_upper_bound,
    percentiles_from_buckets,
)


class TestCounters:
    def test_inc_and_merge(self):
        reg = MetricsRegistry()
        reg.counter_inc("hits")
        reg.counter_inc("hits", 4)
        reg.counter_inc("hits", 1, {"op": "mxm"})
        m = reg.merged()
        assert m["counters"][("hits", ())] == 5
        assert m["counters"][("hits", (("op", "mxm"),))] == 1

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter_inc("c", 1, {"b": 1, "a": 2})
        reg.counter_inc("c", 1, {"a": 2, "b": 1})
        m = reg.merged()
        assert m["counters"][("c", (("a", "2"), ("b", "1")))] == 2
        assert len(m["counters"]) == 1

    def test_counters_survive_thread_exit(self):
        # Prometheus requires counters never go backwards: a shard written
        # by a dead thread must still be merged.
        reg = MetricsRegistry()

        def work():
            reg.counter_inc("done", 3)

        t = threading.Thread(target=work)
        t.start()
        t.join()
        assert reg.merged()["counters"][("done", ())] == 3


class TestGauges:
    def test_set_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("depth", 4)
        reg.gauge_set("depth", 7)
        assert reg.merged()["gauges"][("depth", ())] == 7.0

    def test_callback_gauge_evaluated_at_read(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.register_gauge("size", lambda: box["v"])
        assert reg.merged()["gauges"][("size", ())] == 1.0
        box["v"] = 9
        assert reg.merged()["gauges"][("size", ())] == 9.0

    def test_broken_callback_does_not_kill_scrape(self):
        reg = MetricsRegistry()
        reg.register_gauge("bad", lambda: 1 / 0)
        reg.counter_inc("ok")
        m = reg.merged()
        assert ("bad", ()) not in m["gauges"]
        assert m["counters"][("ok", ())] == 1

    def test_unregister(self):
        reg = MetricsRegistry()
        reg.register_gauge("g", lambda: 5)
        reg.unregister_gauge("g")
        assert reg.merged()["gauges"] == {}


class TestHistograms:
    def test_observe_counts_and_sum(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.0, 2.0, 3.0):
            reg.observe("lat", v)
        h = reg.merged()["histograms"][("lat", ())]
        assert h["count"] == 4
        assert h["sum"] == pytest.approx(6.5)

    def test_bucket_upper_bounds_contain_observations(self):
        reg = MetricsRegistry()
        values = [1e-6, 0.001, 0.7, 1.0, 3.5, 1000.0]
        for v in values:
            reg.observe("lat", v)
        h = reg.merged()["histograms"][("lat", ())]
        # every observation must fall within its bucket (le = 2**exp,
        # exclusive lower bound at 2**(exp-1) except the clamp buckets)
        total = 0
        for e, n in h["buckets"].items():
            assert MIN_EXP <= e <= MAX_EXP
            total += n
        assert total == len(values)

    def test_power_of_two_lands_in_le_bucket(self):
        # frexp(2**k) returns (0.5, k+1); the bucket must be k, not k+1,
        # so that value <= 2**exp holds tightly.
        reg = MetricsRegistry()
        reg.observe("b", 8.0)
        buckets = reg.merged()["histograms"][("b", ())]["buckets"]
        assert buckets == {3: 1}
        assert bucket_upper_bound(3) == 8.0

    def test_clamping_outside_range(self):
        reg = MetricsRegistry()
        reg.observe("b", 0.0)
        reg.observe("b", -1.0)
        reg.observe("b", 2.0**60)
        buckets = reg.merged()["histograms"][("b", ())]["buckets"]
        assert set(buckets) == {MIN_EXP, MAX_EXP}

    def test_percentiles_monotonic_and_bounded(self):
        reg = MetricsRegistry()
        for i in range(1, 200):
            reg.observe("lat", i / 100.0)  # 0.01 .. 1.99
        h = reg.merged()["histograms"][("lat", ())]
        p50, p90, p99 = percentiles_from_buckets(h["buckets"], h["count"])
        assert p50 <= p90 <= p99
        # log2 buckets guarantee at most one octave of relative error
        assert 0.5 <= p50 <= 2.0
        assert p99 <= 2.0

    def test_percentiles_empty(self):
        assert percentiles_from_buckets({}, 0) == [0.0, 0.0, 0.0]


class TestSnapshot:
    def test_shape(self):
        reg = MetricsRegistry()
        reg.counter_inc("c", 2, {"op": "mxm"})
        reg.observe("h", 0.25)
        reg.gauge_set("g", 1.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == [{"labels": {"op": "mxm"}, "value": 2}]
        assert snap["gauges"]["g"] == [{"labels": {}, "value": 1.5}]
        (series,) = snap["histograms"]["h"]
        assert series["count"] == 1
        assert series["sum"] == 0.25
        assert series["p50"] <= series["p90"] <= series["p99"]
        assert all(isinstance(k, str) for k in series["buckets"])

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter_inc("c")
        reg.register_gauge("g", lambda: 1)
        reg.reset()
        m = reg.merged()
        assert m["counters"] == {} and m["gauges"] == {}
        # writes after reset land in a fresh shard
        reg.counter_inc("c", 7)
        assert reg.merged()["counters"][("c", ())] == 7


class TestConcurrency:
    """The satellite: hammer one registry from N threads, assert exact
    totals (no lost updates) and monotonic percentiles."""

    N_THREADS = 8
    PER_THREAD = 5000

    def test_exact_totals_under_contention(self):
        reg = MetricsRegistry()
        barrier = threading.Barrier(self.N_THREADS)
        errors = []

        def work(tid):
            try:
                barrier.wait()
                for i in range(self.PER_THREAD):
                    reg.counter_inc("ops_total", 1, {"op": "mxm"})
                    reg.counter_inc("bytes_total", 10)
                    reg.observe("lat", (i % 100 + 1) / 1000.0)
                    if i % 100 == 0:
                        # interleave reads with writes: merge must never
                        # raise or observe torn state
                        m = reg.merged()
                        assert m["counters"].get(("bytes_total", ()), 0) >= 0
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        total = self.N_THREADS * self.PER_THREAD
        m = reg.merged()
        assert m["counters"][("ops_total", (("op", "mxm"),))] == total
        assert m["counters"][("bytes_total", ())] == 10 * total
        h = m["histograms"][("lat", ())]
        assert h["count"] == total
        expected_sum = self.N_THREADS * sum(
            (i % 100 + 1) / 1000.0 for i in range(self.PER_THREAD)
        )
        assert h["sum"] == pytest.approx(expected_sum)
        p50, p90, p99 = percentiles_from_buckets(h["buckets"], h["count"])
        assert 0 < p50 <= p90 <= p99 <= bucket_upper_bound(MAX_EXP)

    def test_concurrent_snapshot_reader(self):
        reg = MetricsRegistry()
        stop = threading.Event()
        snaps = []

        def reader():
            while not stop.is_set():
                snaps.append(reg.snapshot())

        def writer():
            for i in range(2000):
                reg.counter_inc("c")
                reg.observe("h", math.sin(i) + 2.0)

        r = threading.Thread(target=reader)
        ws = [threading.Thread(target=writer) for _ in range(4)]
        r.start()
        for w in ws:
            w.start()
        for w in ws:
            w.join()
        stop.set()
        r.join()
        # totals observed by the reader never decrease (counters are
        # monotonic even mid-hammer)
        seen = [
            s["counters"].get("c", [{"value": 0}])[0]["value"] for s in snaps
        ]
        assert all(a <= b for a, b in zip(seen, seen[1:]))
        assert reg.merged()["counters"][("c", ())] == 8000
