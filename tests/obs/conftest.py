"""Observability-suite fixtures: every test starts and ends with a
pristine disabled registry (a leaked sink would poison the telemetry
suite's ENABLED-flag invariant and cross-test totals)."""

import pytest

from repro import obs
from repro.graphblas import telemetry


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()
    assert telemetry.get_sink() is None
    assert not telemetry.ENABLED
