"""LoC counter (Table II methodology) and table rendering."""

import pytest

from repro.harness import Table, count_function_loc, count_loc, format_table


class TestLoc:
    def test_counts_code_lines(self):
        src = "x = 1\ny = 2\n"
        assert count_loc(src) == 2

    def test_blank_lines_excluded(self):
        assert count_loc("x = 1\n\n\ny = 2\n") == 2

    def test_comment_lines_excluded(self):
        assert count_loc("# comment\nx = 1\n# another\n") == 1

    def test_trailing_comment_line_counts(self):
        assert count_loc("x = 1  # inline comment\n") == 1

    def test_docstrings_excluded(self):
        src = 'def f():\n    """Docs.\n\n    More docs.\n    """\n    return 1\n'
        assert count_loc(src) == 2

    def test_module_docstring_excluded(self):
        assert count_loc('"""Module docs."""\nx = 1\n') == 1

    def test_dedent_handled(self):
        src = "    def f():\n        return 1\n"
        assert count_loc(src) == 2

    def test_function_counter(self):
        def sample():
            """Ignored docstring."""
            a = 1
            # a comment
            return a

        assert count_function_loc(sample) == 3  # def, a=1, return

    def test_real_algorithms_have_sane_counts(self):
        from repro.lagraph.bfs import bfs
        from repro.lagraph.clustering import local_clustering
        from repro.lagraph.sssp import delta_stepping_sssp

        assert 10 <= count_function_loc(bfs) <= 60
        assert 10 <= count_function_loc(delta_stepping_sssp) <= 70
        assert 15 <= count_function_loc(local_clustering) <= 70


class TestTable:
    def test_render_contains_all_cells(self):
        t = Table("Title", ["a", "b"])
        t.add(1, "x")
        t.add(2.5, "y")
        out = t.render()
        assert "Title" in out and "2.5" in out and "x" in out

    def test_row_arity_checked(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_notes_rendered(self):
        t = Table("T", ["a"])
        t.add(1)
        t.note("hello note")
        assert "hello note" in t.render()

    def test_float_formatting(self):
        out = format_table("t", ["x"], [[0.000001], [12345678.0], [3.25]])
        assert "e" in out  # scientific for extremes
        assert "3.25" in out

    def test_empty_table(self):
        out = format_table("t", ["col"], [])
        assert "col" in out
