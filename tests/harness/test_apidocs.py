"""The generated API reference must exist, be current-ish, and be complete."""

import os
import subprocess
import sys

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SCRIPT = os.path.join(ROOT, "scripts", "gen_api_docs.py")
DOC = os.path.join(ROOT, "docs", "API.md")


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    """Regenerate into the checked-in location (idempotent)."""
    subprocess.run([sys.executable, SCRIPT], check=True, capture_output=True)
    with open(DOC, encoding="utf-8") as f:
        return f.read()


class TestApiDocs:
    def test_generator_runs_and_writes(self, generated):
        assert "# API reference" in generated

    def test_every_package_has_a_section(self, generated):
        for section in (
            "repro.graphblas",
            "repro.graphblas.capi",
            "repro.lagraph",
            "repro.pygb",
            "repro.io",
            "repro.generators",
            "repro.harness",
        ):
            assert f"## `{section}`" in generated, section

    def test_core_symbols_documented(self, generated):
        for sym in ("Matrix", "Vector", "mxm", "bfs", "pagerank", "mmread",
                    "rmat_graph", "GrB_mxv", "subassign"):
            assert sym in generated, sym

    def test_exports_all_resolve(self):
        """Every __all__ name must exist (guards against stale exports)."""
        import repro.generators
        import repro.graphblas
        import repro.harness
        import repro.io
        import repro.lagraph
        import repro.pygb

        for mod in (
            repro.graphblas,
            repro.lagraph,
            repro.pygb,
            repro.io,
            repro.generators,
            repro.harness,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), (mod.__name__, name)

    def test_public_functions_have_docstrings(self):
        """No exported callable may be undocumented."""
        import inspect

        import repro.graphblas
        import repro.lagraph

        for mod in (repro.graphblas, repro.lagraph):
            for name in mod.__all__:
                obj = getattr(mod, name)
                if callable(obj) and not isinstance(obj, type):
                    assert inspect.getdoc(obj), (mod.__name__, name)
