"""Matrix Market, edge-list, and binary I/O."""

import io

import numpy as np
import pytest

from repro.graphblas import Matrix
from repro.graphblas.errors import InvalidValue
from repro.io import (
    load_matrix_npz,
    mmread,
    mmwrite,
    read_edgelist,
    save_matrix_npz,
    write_edgelist,
)
from repro.lagraph import Graph, GraphKind
from tests.helpers import random_matrix_np


class TestMatrixMarket:
    def test_coordinate_real_roundtrip(self, rng, tmp_path):
        A, _, _ = random_matrix_np(rng, 10, 7, 0.3)
        path = tmp_path / "a.mtx"
        mmwrite(path, A)
        B = mmread(path)
        assert B.isequal(A)

    def test_string_and_fileobj(self, rng):
        A, _, _ = random_matrix_np(rng, 5, 5, 0.4)
        buf = io.StringIO()
        mmwrite(buf, A, comment="hello\nworld")
        B = mmread(buf.getvalue())
        assert B.isequal(A)

    def test_pattern_field(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 1\n"
        A = mmread(text)
        assert A.nvals == 2 and A[0, 1] == 1.0 and A[2, 0] == 1.0

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 2 7\n"
        A = mmread(text)
        assert A.dtype.name == "INT64" and A[1, 1] == 7

    def test_symmetric_mirrored(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n"
        A = mmread(text)
        assert A[1, 0] == 5.0 and A[0, 1] == 5.0 and A[2, 2] == 1.0
        assert A.nvals == 3

    def test_skew_symmetric(self):
        text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4.0\n"
        A = mmread(text)
        assert A[1, 0] == 4.0 and A[0, 1] == -4.0

    def test_array_format(self):
        text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n3.0\n4.0\n"
        A = mmread(text)  # column-major on disk
        assert A.to_dense().tolist() == [[1.0, 3.0], [2.0, 4.0]]

    def test_array_symmetric(self):
        text = "%%MatrixMarket matrix array real symmetric\n2 2\n1.0\n2.0\n3.0\n"
        A = mmread(text)
        assert A.to_dense().tolist() == [[1.0, 2.0], [2.0, 3.0]]

    def test_comments_and_blanks_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n\n"
            "2 2 1\n"
            "% another\n"
            "1 1 3.5\n"
        )
        assert mmread(text)[0, 0] == 3.5

    def test_bad_header(self):
        with pytest.raises(InvalidValue):
            mmread("not a matrix market file\n1 1 1\n")

    def test_unsupported_field(self):
        with pytest.raises(InvalidValue):
            mmread("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 2\n")

    def test_entry_count_mismatch(self):
        with pytest.raises(InvalidValue):
            mmread("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n")

    def test_write_pattern_for_bool(self):
        A = Matrix.from_coo([0], [1], [True], nrows=2, ncols=2, dtype=bool)
        buf = io.StringIO()
        mmwrite(buf, A)
        assert "pattern" in buf.getvalue().splitlines()[0]

    def test_write_integer_for_ints(self, rng):
        A, _, _ = random_matrix_np(rng, 4, 4, 0.5, dtype=np.int64)
        buf = io.StringIO()
        mmwrite(buf, A)
        assert "integer" in buf.getvalue().splitlines()[0]
        assert mmread(buf.getvalue()).isequal(A)


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path):
        g = Graph.from_edges([0, 1], [1, 2], [5.0, 6.0], n=3)
        path = tmp_path / "g.el"
        write_edgelist(path, g)
        g2 = read_edgelist(path, n=3)
        assert g2.A.isequal(g.A)

    def test_roundtrip_undirected(self):
        g = Graph.from_edges([0], [1], [2.0], n=3, kind="undirected")
        buf = io.StringIO()
        write_edgelist(buf, g)
        g2 = read_edgelist(buf.getvalue(), kind="undirected", n=3)
        assert g2.A.isequal(g.A)
        # undirected writer emits each edge once
        data_lines = [
            ln for ln in buf.getvalue().splitlines() if not ln.startswith("#")
        ]
        assert len(data_lines) == 1

    def test_default_weight_one(self):
        g = read_edgelist("0 1\n1 2\n", n=3)
        assert g.A[0, 1] == 1.0

    def test_comments_ignored(self):
        g = read_edgelist("# c\n% c\n0 1 3.0\n", n=2)
        assert g.A[0, 1] == 3.0

    def test_unweighted_write(self):
        g = Graph.from_edges([0], [1], [5.0], n=2)
        buf = io.StringIO()
        write_edgelist(buf, g, weights=False)
        assert "5.0" not in buf.getvalue()


class TestBinary:
    @pytest.mark.parametrize("fmt", ["csr", "csc", "hypercsr"])
    def test_npz_roundtrip_preserves_format(self, rng, tmp_path, fmt):
        A, _, _ = random_matrix_np(rng, 9, 9, 0.3)
        A.set_format(fmt)
        path = tmp_path / "m.npz"
        save_matrix_npz(path, A)
        B = load_matrix_npz(path)
        assert B.format == fmt
        assert B.isequal(A)

    def test_save_is_nondestructive(self, rng, tmp_path):
        A, _, _ = random_matrix_np(rng, 5, 5, 0.4)
        save_matrix_npz(tmp_path / "m.npz", A)
        assert A.nvals > 0  # handle still usable

    def test_dtype_preserved(self, rng, tmp_path):
        A, _, _ = random_matrix_np(rng, 5, 5, 0.4, dtype=np.int32)
        save_matrix_npz(tmp_path / "m.npz", A)
        B = load_matrix_npz(tmp_path / "m.npz")
        assert B.dtype.name == "INT32"


class TestGraphSerialization:
    def test_roundtrip_kind_and_content(self, tmp_path):
        from repro.io import load_graph_npz, save_graph_npz

        g = Graph.from_edges([0, 1], [1, 2], [5.0, 6.0], n=4, kind="undirected")
        save_graph_npz(tmp_path / "g.npz", g)
        g2 = load_graph_npz(tmp_path / "g.npz")
        assert g2.kind == g.kind
        assert g2.A.isequal(g.A)

    def test_directed_roundtrip(self, tmp_path):
        from repro.io import load_graph_npz, save_graph_npz

        g = Graph.from_edges([0, 2], [1, 3], n=5, kind="directed")
        save_graph_npz(tmp_path / "g.npz", g)
        g2 = load_graph_npz(tmp_path / "g.npz")
        assert g2.kind.value == "directed" and g2.n == 5
        assert g2.A.isequal(g.A)
