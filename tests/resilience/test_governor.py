"""Execution governor: budgets, deadlines, cancellation, retry, degrade.

The acceptance property under test: a budget-rejected operation raises a
*typed* error (and the matching ``GxB_*`` code at the C-API boundary)
**before any output allocation**, leaving every operand bit-identical and
valid per ``graphblas.validate``.
"""

import time

import numpy as np
import pytest

from repro.graphblas import (
    BudgetExceeded,
    Cancelled,
    DeadlineExceeded,
    Info,
    InvalidValue,
    Matrix,
    OutOfMemory,
    Vector,
    capi,
    faults,
    governor,
    plan as gplan,
    telemetry,
    validate,
)
from repro.graphblas import operations as ops
from tests.helpers import random_matrix_np
from tests.resilience._state import assert_same_state, deep_state


@pytest.fixture
def AB():
    rng = np.random.default_rng(11)
    A, _, _ = random_matrix_np(rng, 20, 20, 0.3)
    B, _, _ = random_matrix_np(rng, 20, 20, 0.3)
    return A, B


# --------------------------------------------------------------------------
# admission control
# --------------------------------------------------------------------------

class TestBudget:
    def test_rejected_mxm_typed_error_no_output_no_corruption(self, AB):
        """The PR's acceptance criterion, at the Python level."""
        A, B = AB
        C = Matrix("FP64", 20, 20)
        snaps = [deep_state(o) for o in (C, A, B)]
        with governor.ExecutionContext(memory_budget=1, degrade=False) as ctx:
            with pytest.raises(BudgetExceeded):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["rejected"] == 1
        for obj, snap in zip((C, A, B), snaps):
            assert_same_state(obj, snap)
            assert validate.check(obj) == Info.SUCCESS
        assert C.nvals == 0  # no output was allocated

    def test_rejected_mxm_capi_code(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with capi.GxB_Context_new(memory_budget=1, degrade=False):
            info = capi.GrB_mxm(C, None, None, "PLUS_TIMES", A, B)
        assert info == capi.GxB_BUDGET_EXCEEDED == Info.BUDGET_EXCEEDED
        assert "budget" in capi.GrB_error()
        assert C.nvals == 0
        assert validate.check(A) == Info.SUCCESS

    def test_within_budget_admitted(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext(memory_budget=1 << 30) as ctx:
            ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["admitted"] >= 1
        assert ctx.stats["rejected"] == 0
        assert C.nvals > 0

    def test_no_budget_means_unlimited(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext() as ctx:
            ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["admitted"] >= 1

    def test_degrades_to_reference_backend(self, AB):
        from repro.graphblas.backends import backend as backend_scope

        A, B = AB
        expected = Matrix("FP64", 20, 20)
        with backend_scope("reference"):
            ops.mxm(expected, A, B, "PLUS_TIMES")
        C = Matrix("FP64", 20, 20)
        with telemetry.collect() as col:
            with governor.ExecutionContext(
                memory_budget=1, degrade_backends=("reference",),
                spill=False,  # force the degrade route, not tiled spill
            ) as ctx:
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["degraded"] >= 1
        assert C.isequal(expected)
        snap = col.snapshot()
        assert snap["governor"]["degrade"] >= 1

    def test_degrade_disabled_rejects(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext(memory_budget=1, degrade=False):
            with pytest.raises(BudgetExceeded):
                ops.mxm(C, A, B, "PLUS_TIMES")

    def test_estimate_recorded_on_plan(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        p = gplan.plan_mxm(C, A, B, "PLUS_TIMES")
        est = governor.estimate_plan_bytes(p)
        assert est > 0
        with governor.ExecutionContext(memory_budget=1 << 30):
            p2 = gplan.plan_mxm(C, A, B, "PLUS_TIMES")
        assert p2.params["est_bytes"] == est

    def test_estimates_scale_with_operands(self):
        rng = np.random.default_rng(5)
        small, _, _ = random_matrix_np(rng, 8, 8, 0.3)
        big, _, _ = random_matrix_np(rng, 64, 64, 0.3)
        Cs = Matrix("FP64", 8, 8)
        Cb = Matrix("FP64", 64, 64)
        es = governor.estimate_plan_bytes(gplan.plan_mxm(Cs, small, small))
        eb = governor.estimate_plan_bytes(gplan.plan_mxm(Cb, big, big))
        assert eb > es

    def test_invalid_limits_rejected(self):
        with pytest.raises(InvalidValue):
            governor.ExecutionContext(memory_budget=-1)
        with pytest.raises(InvalidValue):
            governor.ExecutionContext(deadline=-1.0)


# --------------------------------------------------------------------------
# deadline & cancellation
# --------------------------------------------------------------------------

class TestDeadlineCancel:
    def test_expired_deadline_raises_typed_error(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext(deadline=0.0):
            time.sleep(0.005)
            with pytest.raises(DeadlineExceeded):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert C.nvals == 0

    def test_deadline_capi_code(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with capi.GxB_Context_new(deadline=0.0):
            time.sleep(0.005)
            info = capi.GrB_mxm(C, None, None, "PLUS_TIMES", A, B)
        assert info == capi.GxB_DEADLINE_EXCEEDED

    def test_cancel_before_op(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext() as ctx:
            ctx.cancel("user abort")
            with pytest.raises(Cancelled, match="user abort"):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["cancelled"] >= 1

    def test_cancel_mid_bfs_leaves_valid_objects(self):
        from repro.lagraph import Graph, bfs

        rng = np.random.default_rng(3)
        A, _, _ = random_matrix_np(rng, 64, 64, 0.08)
        g = Graph(A)
        ctx = governor.ExecutionContext()

        def hook(alg, it, state):
            if it == 2:
                ctx.cancel("enough levels")
            for obj in state.values():
                assert validate.check(obj) == Info.SUCCESS

        with ctx:
            with pytest.raises(Cancelled, match="enough levels"):
                bfs(0, g, checkpoint=hook)

    def test_cancelled_token_latches_first_reason(self):
        tok = governor.CancellationToken()
        tok.cancel("first")
        tok.cancel("second")
        assert tok.reason == "first"
        with pytest.raises(Cancelled, match="first"):
            tok.raise_if_cancelled()

    def test_poll_is_noop_when_ungoverned(self):
        governor.poll()  # must not raise


# --------------------------------------------------------------------------
# retry
# --------------------------------------------------------------------------

class TestRetry:
    def test_transient_fault_retried_at_dispatch(self, AB):
        A, B = AB
        expected = Matrix("FP64", 20, 20)
        ops.mxm(expected, A, B, "PLUS_TIMES")
        C = Matrix("FP64", 20, 20)
        policy = governor.RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        with governor.ExecutionContext(retry=policy) as ctx:
            with faults.inject("spgemm.flop", OutOfMemory, nth=1):
                ops.mxm(C, A, B, "PLUS_TIMES")  # fails once, retried inside
        assert ctx.stats["retries"] == 1
        assert C.isequal(expected)

    def test_persistent_fault_exhausts_attempts(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        policy = governor.RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        with governor.ExecutionContext(retry=policy) as ctx:
            with faults.inject(
                "spgemm.flop", OutOfMemory, probability=1.0, seed=1,
                max_fires=None,
            ):
                with pytest.raises(OutOfMemory):
                    ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["retries"] == 2  # 3 attempts = 2 retries

    def test_nontransient_error_not_retried(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        policy = governor.RetryPolicy(attempts=5, base_delay=0.0, jitter=0.0)
        with governor.ExecutionContext(retry=policy) as ctx:
            with faults.inject("spgemm.flop", ValueError, nth=1):
                with pytest.raises(ValueError):
                    ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["retries"] == 0

    def test_with_retry_plain_callable(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OutOfMemory("transient")
            return "ok"

        policy = governor.RetryPolicy(attempts=4, base_delay=0.0, jitter=0.0)
        assert governor.with_retry(flaky, policy=policy) == "ok"
        assert len(calls) == 3

    def test_backoff_is_bounded_and_seeded(self):
        p1 = governor.RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=0.3, jitter=0.5, seed=9
        )
        p2 = governor.RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=0.3, jitter=0.5, seed=9
        )
        d1 = [p1.delay(k) for k in range(1, 6)]
        d2 = [p2.delay(k) for k in range(1, 6)]
        assert d1 == d2  # same seed, same jitter stream
        assert all(d <= 0.3 * 1.5 for d in d1)


# --------------------------------------------------------------------------
# context mechanics & environment
# --------------------------------------------------------------------------

class TestContext:
    def test_active_flag_tracks_scopes(self):
        # the CI governor leg wraps every test in a context, so compare
        # against the surrounding state rather than assuming False
        baseline = governor.ACTIVE
        assert baseline is (governor.current() is not None)
        with governor.ExecutionContext():
            assert governor.ACTIVE is True
            with governor.ExecutionContext():
                assert governor.ACTIVE is True
            assert governor.ACTIVE is True
        assert governor.ACTIVE is baseline

    def test_innermost_context_governs(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext(memory_budget=1, degrade=False):
            with governor.ExecutionContext() as inner:  # unlimited
                ops.mxm(C, A, B, "PLUS_TIMES")
            assert inner.stats["admitted"] >= 1
        assert C.nvals > 0

    def test_single_use(self):
        ctx = governor.ExecutionContext()
        with ctx:
            pass
        with pytest.raises(InvalidValue):
            ctx.__enter__()

    def test_env_limits(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_GOVERNOR_BUDGET", "64m")
        monkeypatch.setenv("GRAPHBLAS_GOVERNOR_DEADLINE", "60")
        assert governor.env_limits() == (64 << 20, 60.0)
        monkeypatch.delenv("GRAPHBLAS_GOVERNOR_BUDGET")
        monkeypatch.delenv("GRAPHBLAS_GOVERNOR_DEADLINE")
        assert governor.env_limits() == (None, None)

    def test_governor_decisions_in_snapshot(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with telemetry.collect() as col:
            with governor.ExecutionContext(memory_budget=1 << 30):
                ops.mxm(C, A, B, "PLUS_TIMES")
            snap = col.snapshot()
        assert snap["governor"]["admit"] >= 1
