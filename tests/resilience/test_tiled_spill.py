"""Tiled spill-to-disk execution: parity, pool mechanics, configuration.

The acceptance property under test: an mxm/mxv whose footprint estimate
exceeds the governor budget completes via tiled spill execution with
results *bit-identical* to unbudgeted in-memory execution — asserted here
on RMAT-14 with random FP64 values, where any regrouping of the
floating-point partial-product folds would change low-order bits.
"""

import os

import numpy as np
import pytest

from repro.generators import rmat_graph
from repro.graphblas import (
    BudgetExceeded,
    Matrix,
    Vector,
    capi,
    governor,
    telemetry,
    tiled,
)
from repro.graphblas import operations as ops
from repro.graphblas.formats import Orientation, SparseStore
from tests.helpers import random_matrix_np, random_vector_np


def _bits_equal(got, want) -> None:
    for g, w in zip(got, want):
        assert g.dtype == w.dtype
        assert np.array_equal(g, w)
        assert g.tobytes() == w.tobytes()


def _weighted_rmat(scale: int, edge_factor: int, seed: int) -> Matrix:
    A = rmat_graph(scale, edge_factor, seed=seed).A
    r, c, _ = A.extract_tuples()
    rng = np.random.default_rng(seed + 1)
    return Matrix.from_coo(
        r, c, rng.uniform(-1.0, 1.0, r.size), nrows=A.nrows, ncols=A.ncols,
        dtype="FP64",
    )


# --------------------------------------------------------------------------
# bit-identical parity (the acceptance criterion)
# --------------------------------------------------------------------------

class TestParity:
    def test_rmat14_mxm_tiled_spill_bit_identical(self, tmp_path):
        A = _weighted_rmat(14, 4, seed=7)
        expected = Matrix("FP64", A.nrows, A.ncols)
        ops.mxm(expected, A, A, "PLUS_TIMES")

        C = Matrix("FP64", A.nrows, A.ncols)
        with telemetry.collect() as col:
            with governor.ExecutionContext(
                memory_budget=1 << 20,
                spill_dir=tmp_path,
                spill_budget=1 << 20,
            ) as ctx:
                ops.mxm(C, A, A, "PLUS_TIMES")
        assert ctx.stats["tiled"] == 1
        assert ctx.stats["rejected"] == 0
        _bits_equal(C.extract_tuples(), expected.extract_tuples())
        gov = col.snapshot()["governor"]
        assert gov["tiled"] >= 1
        assert gov["spill"] >= 1 and gov["reload"] >= 1
        assert gov["spill_bytes"] > 0 and gov["reload_bytes"] > 0
        # the pool cleans up after itself: no orphaned tile files
        assert not any(tmp_path.iterdir())

    @pytest.mark.parametrize("op", ["mxv", "vxm"])
    def test_rmat14_matvec_tiled_bit_identical(self, op, tmp_path):
        A = _weighted_rmat(14, 4, seed=11)
        rng = np.random.default_rng(23)
        u, _, _ = random_vector_np(rng, A.nrows, density=0.3)
        run = getattr(ops, op)
        args = (A, u) if op == "mxv" else (u, A)

        expected = Vector("FP64", A.nrows)
        run(expected, *args, "PLUS_TIMES")
        w = Vector("FP64", A.nrows)
        with governor.ExecutionContext(
            memory_budget=1, spill_dir=tmp_path, spill_budget=1 << 18
        ) as ctx:
            run(w, *args, "PLUS_TIMES")
        assert ctx.stats["tiled"] == 1
        _bits_equal(w.extract_tuples(), expected.extract_tuples())
        assert not any(tmp_path.iterdir())

    def test_transposed_mxm_parity(self, tmp_path):
        rng = np.random.default_rng(3)
        A, _, _ = random_matrix_np(rng, 60, 60, 0.2)
        B, _, _ = random_matrix_np(rng, 60, 60, 0.2)
        expected = Matrix("FP64", 60, 60)
        ops.mxm(expected, A, B, "PLUS_TIMES", desc="T0")
        C = Matrix("FP64", 60, 60)
        with governor.ExecutionContext(
            memory_budget=1, spill_dir=tmp_path, spill_budget=0
        ):
            ops.mxm(C, A, B, "PLUS_TIMES", desc="T0")
        _bits_equal(C.extract_tuples(), expected.extract_tuples())

    def test_masked_mxm_parity_vs_gustavson(self, tmp_path):
        # masked "auto" picks the dot kernel in memory, whose float fold
        # order legitimately differs from Gustavson's; the tiled fold is
        # bit-identical to the Gustavson method, so pin the comparison
        rng = np.random.default_rng(4)
        A, _, _ = random_matrix_np(rng, 60, 60, 0.2)
        B, _, _ = random_matrix_np(rng, 60, 60, 0.2)
        M, _, _ = random_matrix_np(rng, 60, 60, 0.5)
        expected = Matrix("FP64", 60, 60)
        ops.mxm(expected, A, B, "PLUS_TIMES", mask=M, method="gustavson")
        C = Matrix("FP64", 60, 60)
        with governor.ExecutionContext(
            memory_budget=1, spill_dir=tmp_path, spill_budget=0
        ):
            ops.mxm(C, A, B, "PLUS_TIMES", mask=M, method="gustavson")
        _bits_equal(C.extract_tuples(), expected.extract_tuples())

    def test_positional_semiring_sees_global_coords(self, tmp_path):
        rng = np.random.default_rng(5)
        A, _, _ = random_matrix_np(rng, 50, 50, 0.2)
        B, _, _ = random_matrix_np(rng, 50, 50, 0.2)
        expected = Matrix("INT64", 50, 50)
        ops.mxm(expected, A, B, "MIN_SECONDI")
        C = Matrix("INT64", 50, 50)
        with governor.ExecutionContext(
            memory_budget=1, spill_dir=tmp_path, spill_budget=0
        ):
            ops.mxm(C, A, B, "MIN_SECONDI")
        _bits_equal(C.extract_tuples(), expected.extract_tuples())

    def test_explicit_tiled_method_without_budget(self):
        rng = np.random.default_rng(9)
        A, _, _ = random_matrix_np(rng, 40, 40, 0.25)
        B, _, _ = random_matrix_np(rng, 40, 40, 0.25)
        expected = Matrix("FP64", 40, 40)
        ops.mxm(expected, A, B, "PLUS_TIMES")
        C = Matrix("FP64", 40, 40)
        ops.mxm(C, A, B, "PLUS_TIMES", method="tiled")
        _bits_equal(C.extract_tuples(), expected.extract_tuples())


# --------------------------------------------------------------------------
# bounded-memory row-chunked folds
# --------------------------------------------------------------------------

class TestChunkedFold:
    """Skewed stripes fold in row chunks without changing a single bit.

    The fold decomposes exactly per output row, so partitioning a stripe
    by rows (``chunk_bytes``) must reproduce the in-memory result bit for
    bit while keeping the unreduced expansion bounded; chunk pieces are
    transient and must not survive the stripe that made them.
    """

    def test_chunked_mxm_bit_identical_pieces_dropped(self, tmp_path):
        # dense enough that stripes exceed the 1 MiB chunk floor and the
        # chunked path actually engages (several chunks per stripe)
        rng = np.random.default_rng(6)
        A, _, _ = random_matrix_np(rng, 200, 200, 0.4)
        B, _, _ = random_matrix_np(rng, 200, 200, 0.4)
        expected = Matrix("FP64", 200, 200)
        ops.mxm(expected, A, B, "PLUS_TIMES")
        with tiled.SpillPool(budget=1 << 14, directory=tmp_path) as pool:
            A_t = tiled.TiledMatrix.from_matrix(A, 16, pool)
            B_t = tiled.TiledMatrix.from_matrix(B, 16, pool)
            C_t = tiled.mxm_tiled(A_t, B_t, "PLUS_TIMES",
                                  chunk_bytes=1 << 20)
            got = C_t.to_matrix()
            # chunk pieces (keys like "<name>/p<bi>.<bj>.<ci>") are
            # dropped at stripe end: no piece files linger in the pool
            assert not any("_p" in f for f in os.listdir(pool.dir))
        _bits_equal(got.extract_tuples(), expected.extract_tuples())

    def test_bounded_stream_matches_full_stripes(self, tmp_path):
        rng = np.random.default_rng(7)
        A, _, _ = random_matrix_np(rng, 500, 500, 0.3)
        with tiled.SpillPool(budget=1 << 14, directory=tmp_path) as pool:
            T = A.to_tiled(128, pool=pool)
            blocks = list(T.iter_stripes(max_bytes=1))  # floored to 64 KiB
            assert len(blocks) > T.grid_rows  # stripes actually split
            got = (
                np.concatenate([b[0] for b in blocks]),
                np.concatenate([b[1] for b in blocks]),
                np.concatenate([b[2] for b in blocks]),
            )
            _bits_equal(got, A.extract_tuples())

    def test_major_lengths_exact(self, tmp_path):
        rng = np.random.default_rng(8)
        A, _, _ = random_matrix_np(rng, 45, 45, 0.3)
        with tiled.SpillPool(budget=0, directory=tmp_path) as pool:
            T = A.to_tiled(10, pool=pool)
            r, _, _ = A.extract_tuples()
            want = np.bincount(r, minlength=45)
            assert np.array_equal(T.major_lengths(), want)

    def test_chunk_bounds_partitions_by_target(self):
        counts = np.array([5, 5, 5, 100, 1, 1])
        assert tiled._chunk_bounds(counts, 10) == [
            (0, 2), (2, 3), (3, 4), (4, 6)  # a huge row rides alone
        ]
        assert tiled._chunk_bounds(np.array([1, 1]), 10) == [(0, 2)]
        assert tiled._chunk_bounds(np.zeros(0, dtype=np.int64), 10) == \
            [(0, 0)]


# --------------------------------------------------------------------------
# TiledMatrix round-trips
# --------------------------------------------------------------------------

class TestTiledMatrix:
    def test_roundtrip_preserves_bits(self, tmp_path):
        rng = np.random.default_rng(1)
        A, _, _ = random_matrix_np(rng, 37, 53, 0.3)
        with tiled.SpillPool(budget=0, directory=tmp_path) as pool:
            T = A.to_tiled(8, pool=pool)
            assert T.grid_rows == 5 and T.grid_cols == 7
            assert T.nvals == A.nvals
            R = T.to_matrix()
            _bits_equal(R.extract_tuples(), A.extract_tuples())

    def test_iter_stripes_sorted_and_complete(self, tmp_path):
        rng = np.random.default_rng(2)
        A, _, _ = random_matrix_np(rng, 33, 33, 0.4)
        with tiled.SpillPool(budget=1 << 10, directory=tmp_path) as pool:
            T = A.to_tiled(7, pool=pool)
            rows, cols, vals = [], [], []
            last_row = -1
            for r, c, v in T.iter_stripes():
                assert r.min() > last_row
                key = r * T.ncols + c
                assert np.all(np.diff(key) > 0)  # sorted unique per stripe
                last_row = int(r.max())
                rows.append(r); cols.append(c); vals.append(v)
            got = (np.concatenate(rows), np.concatenate(cols),
                   np.concatenate(vals))
            _bits_equal(got, A.extract_tuples())

    def test_choose_tile_dim_clamps(self):
        assert tiled.choose_tile_dim(100, 100) == 100
        assert tiled.choose_tile_dim(10**6, 10**6) == tiled.DEFAULT_TILE_DIM
        td = tiled.choose_tile_dim(1 << 14, 1 << 14, est_bytes=100 << 20,
                                   budget=64 << 20)
        assert tiled.MIN_TILE_DIM <= td <= (1 << 14)
        # a huge per-row footprint still yields a usable tile edge
        assert tiled.choose_tile_dim(4, 4, est_bytes=1 << 40,
                                     budget=1 << 20) == 4


# --------------------------------------------------------------------------
# SpillPool mechanics
# --------------------------------------------------------------------------

def _store(n=8, seed=0):
    rng = np.random.default_rng(seed)
    nv = n * 2
    maj = np.sort(rng.integers(0, n, nv))
    minr = rng.integers(0, n, nv)
    order = np.lexsort((minr, maj))
    maj, minr = maj[order], minr[order]
    keep = np.ones(nv, dtype=bool)
    keep[1:] = (np.diff(maj) != 0) | (np.diff(minr) != 0)
    vals = rng.uniform(-1, 1, nv)
    return SparseStore.from_coo(
        Orientation.ROW, n, n, maj[keep], minr[keep], vals[keep],
        _dtype("FP64"), hyper=True, assume_sorted_unique=True,
    )


def _dtype(name):
    from repro.graphblas.types import lookup_type

    return lookup_type(name)


class TestSpillPool:
    def test_lru_spills_cold_reloads_on_demand(self, tmp_path):
        s1, s2, s3 = _store(seed=1), _store(seed=2), _store(seed=3)
        budget = s1.nbytes + s2.nbytes  # room for two resident tiles
        with tiled.SpillPool(budget=budget, directory=tmp_path) as pool:
            pool.put("a", s1)
            pool.put("b", s2)
            assert pool.stats["spills"] == 0
            pool.put("c", s3)  # evicts "a", the least recently used
            assert pool.stats["spills"] == 1
            assert pool.stats["evictions"] == 1
            back = pool.get("a")  # reload from disk
            assert pool.stats["reloads"] == 1
            assert back.values.tobytes() == s1.values.tobytes()
            assert np.array_equal(back.minor, s1.minor)

    def test_spill_file_written_once(self, tmp_path):
        s = _store(seed=4)
        with tiled.SpillPool(budget=0, directory=tmp_path) as pool:
            pool.put("a", s)  # spilled immediately (budget 0)
            pool.get("a")     # reload; stays pinned-resident
            pool.get("a")     # cache hit
            assert pool.stats["reloads"] == 1
            pool.put("b", _store(seed=5))  # evicts both; "a" not rewritten
            pool.get("a")
            assert pool.stats["spills"] == 2  # one write per tile, ever
            assert pool.stats["reloads"] == 2

    def test_close_removes_all_tile_files(self, tmp_path):
        pool = tiled.SpillPool(budget=0, directory=tmp_path)
        pool.put("a", _store(seed=5))
        assert os.path.isdir(pool.dir)
        pool.close()
        assert not os.path.exists(pool.dir)
        assert not any(tmp_path.iterdir())
        pool.close()  # idempotent

    def test_partial_spill_rollback_on_init(self, tmp_path):
        stale = tmp_path / "t3.npz.tmp.12345"
        stale.write_bytes(b"torn write")
        complete = tmp_path / "unrelated.npz"
        complete.write_bytes(b"keep me")
        pool = tiled.SpillPool(budget=0, directory=tmp_path)
        assert str(stale) in pool.rolled_back
        assert not stale.exists()
        assert complete.exists()  # completed files are never touched
        pool.close()

    def test_unknown_tile_rejected(self, tmp_path):
        from repro.graphblas import InvalidValue

        with tiled.SpillPool(budget=0, directory=tmp_path) as pool:
            with pytest.raises(InvalidValue):
                pool.get("nope")
            pool.put("a", _store(seed=6))
            with pytest.raises(InvalidValue):
                pool.put("a", _store(seed=7))


# --------------------------------------------------------------------------
# configuration: environment, overrides, C API
# --------------------------------------------------------------------------

class TestConfig:
    def test_env_spill_routes_through_envutil(self, monkeypatch):
        monkeypatch.setenv("GRAPHBLAS_SPILL", "off")
        monkeypatch.setenv("GRAPHBLAS_SPILL_DIR", "/tmp/spill-here")
        monkeypatch.setenv("GRAPHBLAS_SPILL_BUDGET", "64m")
        assert governor.env_spill() == (False, "/tmp/spill-here", 64 << 20)

    def test_env_spill_malformed_warns_once_falls_back(self, monkeypatch):
        from repro.graphblas import envutil

        envutil.reset_warned()
        monkeypatch.setenv("GRAPHBLAS_SPILL", "sideways")
        monkeypatch.setenv("GRAPHBLAS_SPILL_DIR", "   ")
        monkeypatch.setenv("GRAPHBLAS_SPILL_BUDGET", "lots")
        with pytest.warns(RuntimeWarning):
            enabled, directory, budget = governor.env_spill()
        assert enabled is True
        assert directory is None
        assert budget == governor.DEFAULT_SPILL_BUDGET
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second read: already warned
            governor.env_spill()
        envutil.reset_warned()

    def test_spill_off_env_rejects_over_budget(self, monkeypatch, AB):
        monkeypatch.setenv("GRAPHBLAS_SPILL", "off")
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext(memory_budget=1, degrade=False):
            with pytest.raises(BudgetExceeded):
                ops.mxm(C, A, B, "PLUS_TIMES")

    def test_gxb_spill_roundtrip(self):
        try:
            assert capi.GxB_Spill_set(
                False, directory="/tmp/gxb-spill", budget=1 << 20
            ) == capi.GrB_SUCCESS
            cfg = capi.GxB_Spill_get()
            assert cfg == {
                "enabled": False, "directory": "/tmp/gxb-spill",
                "budget": 1 << 20,
            }
            assert capi.GxB_Spill_set(budget=-1) == capi.Info.INVALID_VALUE
        finally:
            governor.reset_spill_config()
        assert capi.GxB_Spill_get()["enabled"] is True

    def test_budget_exceeded_message_is_actionable(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext(memory_budget=1, degrade=False):
            with pytest.raises(BudgetExceeded) as exc:
                ops.mxm(C, A, B, "PLUS_TIMES")
        msg = str(exc.value)
        assert "budget" in msg and "1 B" in msg
        assert "exceeds" in msg and " by " in msg  # estimated vs available
        assert "tiled spill disabled" in msg
        assert "degrade disabled" in msg

    def test_context_spill_false_without_degrade_backends_rejects(self, AB):
        A, B = AB
        C = Matrix("FP64", 20, 20)
        with governor.ExecutionContext(
            memory_budget=1, spill=False, degrade_backends=()
        ) as ctx:
            with pytest.raises(BudgetExceeded):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["rejected"] == 1


@pytest.fixture
def AB():
    rng = np.random.default_rng(11)
    A, _, _ = random_matrix_np(rng, 20, 20, 0.3)
    B, _, _ = random_matrix_np(rng, 20, 20, 0.3)
    return A, B
