"""Bit-identical state capture for Matrix/Vector/Scalar operands.

The transactional guarantee under test is *bit-identical* rollback — not
just semantic equality.  ``deep_state`` copies every observable array and
field (primary store, cached dual-orientation twin, the full pending log)
and ``assert_same_state`` re-compares them exactly, dtypes included.

One deliberate carve-out: the performance engine may cache a
dual-orientation twin while merely *reading* a matrix, so a twin that
appears after the snapshot is accepted iff it is an epoch-current,
faithful conversion of the (unchanged) primary store.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas import Matrix, Scalar, Vector


def _arr(a: np.ndarray):
    return (a.dtype, a.copy())


def _arr_same(before, now: np.ndarray, what: str):
    dtype, vals = before
    assert now.dtype == dtype, f"{what}: dtype {now.dtype} != {dtype}"
    assert np.array_equal(vals, now, equal_nan=True), f"{what}: contents changed"


def _store_state(s):
    if s is None:
        return None
    return {
        "orientation": s.orientation,
        "hyper": s.hyper,
        "n_major": s.n_major,
        "n_minor": s.n_minor,
        "indptr": _arr(s.indptr),
        "minor": _arr(s.minor),
        "values": _arr(s.values),
        "h": _arr(s.h) if s.hyper else None,
    }


def _store_same(before, s, what: str):
    if before is None:
        assert s is None, f"{what}: twin appeared"
        return
    assert s is not None, f"{what}: store vanished"
    _store_equal(before, s, what)


def _store_equal(before, s, what: str) -> None:
    for key in ("orientation", "hyper", "n_major", "n_minor"):
        assert before[key] == getattr(s, key), f"{what}.{key} changed"
    _arr_same(before["indptr"], s.indptr, f"{what}.indptr")
    _arr_same(before["minor"], s.minor, f"{what}.minor")
    _arr_same(before["values"], s.values, f"{what}.values")
    if before["h"] is not None:
        _arr_same(before["h"], s.h, f"{what}.h")


def deep_state(obj):
    """Full copy of an opaque object's observable state."""
    if isinstance(obj, Matrix):
        return {
            "kind": "Matrix",
            "dtype": obj.dtype,
            "nrows": obj.nrows,
            "ncols": obj.ncols,
            "store": _store_state(obj._store),
            "alt": _store_state(obj._alt),
            "pend": (
                list(obj._pend_i),
                list(obj._pend_j),
                list(obj._pend_v),
                list(obj._pend_del),
            ),
            "valid": obj._valid,
            "keep_both": obj._keep_both,
        }
    if isinstance(obj, Vector):
        return {
            "kind": "Vector",
            "dtype": obj.dtype,
            "size": obj.size,
            "indices": _arr(obj.indices),
            "values": _arr(obj.values),
            "pend": (list(obj._pend_i), list(obj._pend_v), list(obj._pend_del)),
            "valid": obj._valid,
        }
    if isinstance(obj, Scalar):
        return {"kind": "Scalar", "dtype": obj.dtype, "value": obj._value, "has": obj._has}
    raise TypeError(f"unsupported: {type(obj).__name__}")


def assert_same_state(obj, before) -> None:
    """Assert ``obj`` is bit-identical to its captured ``deep_state``."""
    if before["kind"] == "Matrix":
        assert isinstance(obj, Matrix)
        assert obj.dtype == before["dtype"]
        assert (obj.nrows, obj.ncols) == (before["nrows"], before["ncols"])
        assert obj._valid == before["valid"]
        assert obj._keep_both == before["keep_both"]
        _store_same(before["store"], obj._store, "store")
        if before["alt"] is None and obj._alt is not None:
            # A dual-format twin may legitimately appear during an op that
            # read the matrix (the engine caches the opposite orientation of
            # the unchanged primary store).  Accept it only when it is an
            # epoch-current, faithful conversion of that store — a stale or
            # corrupt twin still fails.
            assert obj._alt_epoch == obj._epoch, "alt: stale twin appeared"
            fresh = obj._store.with_orientation(obj._store.orientation.flipped)
            _store_equal(_store_state(fresh), obj._alt, "alt")
        else:
            _store_same(before["alt"], obj._alt, "alt")
        assert (
            list(obj._pend_i),
            list(obj._pend_j),
            list(obj._pend_v),
            list(obj._pend_del),
        ) == before["pend"], "pending log changed"
    elif before["kind"] == "Vector":
        assert isinstance(obj, Vector)
        assert obj.dtype == before["dtype"]
        assert obj.size == before["size"]
        assert obj._valid == before["valid"]
        _arr_same(before["indices"], obj.indices, "indices")
        _arr_same(before["values"], obj.values, "values")
        assert (
            list(obj._pend_i),
            list(obj._pend_v),
            list(obj._pend_del),
        ) == before["pend"], "pending log changed"
    elif before["kind"] == "Scalar":
        assert isinstance(obj, Scalar)
        assert obj.dtype == before["dtype"]
        assert obj._has == before["has"]
        assert obj._value == before["value"] or (
            obj._value is None and before["value"] is None
        )
    else:  # pragma: no cover - defensive
        raise AssertionError(before["kind"])
