"""Fault-hardened spill I/O: seeded retry, clean failure, no orphans.

The transactional guarantee extends to disk: an injected write/read
failure during tiled spill execution is retried with seeded backoff;
when retry is exhausted the operation fails with the typed error,
operands stay bit-identical, the output is untouched, and no tile or
temp file is left behind.
"""

import numpy as np
import pytest

from repro.graphblas import (
    Matrix,
    OutOfMemory,
    faults,
    governor,
    telemetry,
    tiled,
)
from repro.graphblas import operations as ops
from tests.helpers import random_matrix_np
from tests.resilience._state import assert_same_state, deep_state


@pytest.fixture
def AB():
    rng = np.random.default_rng(17)
    A, _, _ = random_matrix_np(rng, 40, 40, 0.25)
    B, _, _ = random_matrix_np(rng, 40, 40, 0.25)
    return A, B


def _policy():
    return governor.RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)


class TestTransientFaults:
    def test_write_fault_retried_parity_preserved(self, AB, tmp_path):
        A, B = AB
        expected = Matrix("FP64", 40, 40)
        ops.mxm(expected, A, B, "PLUS_TIMES")
        C = Matrix("FP64", 40, 40)
        with telemetry.collect() as col:
            with governor.ExecutionContext(
                memory_budget=1, retry=_policy(),
                spill_dir=tmp_path, spill_budget=0,
            ) as ctx:
                with faults.inject("io.write", OutOfMemory, nth=1):
                    ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["retries"] >= 1
        assert C.isequal(expected)
        ev, cv = expected.extract_tuples()[2], C.extract_tuples()[2]
        assert ev.tobytes() == cv.tobytes()
        gov = col.snapshot()["governor"]
        assert gov["retry"] >= 1  # the backoff decision was recorded
        assert not any(tmp_path.iterdir())

    def test_read_fault_retried_parity_preserved(self, AB, tmp_path):
        A, B = AB
        expected = Matrix("FP64", 40, 40)
        ops.mxm(expected, A, B, "PLUS_TIMES")
        C = Matrix("FP64", 40, 40)
        with governor.ExecutionContext(
            memory_budget=1, retry=_policy(),
            spill_dir=tmp_path, spill_budget=0,
        ) as ctx:
            with faults.inject("io.read", OutOfMemory, nth=1):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["retries"] >= 1
        assert C.isequal(expected)
        assert not any(tmp_path.iterdir())

    def test_default_pool_policy_retries_oserror(self, tmp_path):
        # without a context retry policy the pool's own seeded default
        # applies, and OSError (real disk trouble) counts as transient
        rng = np.random.default_rng(2)
        A, _, _ = random_matrix_np(rng, 24, 24, 0.3)
        with governor.ExecutionContext(
            memory_budget=1, spill_dir=tmp_path, spill_budget=0
        ) as ctx:
            with faults.inject("io.write", OSError, nth=1):
                C = Matrix("FP64", 24, 24)
                ops.mxm(C, A, A, "PLUS_TIMES")
        assert ctx.stats["retries"] >= 1
        assert C.nvals > 0


class TestExhaustedRetry:
    def test_write_faults_exhaust_operands_intact_no_orphans(self, AB, tmp_path):
        A, B = AB
        C = Matrix("FP64", 40, 40)
        snaps = [deep_state(o) for o in (C, A, B)]
        with governor.ExecutionContext(
            memory_budget=1, retry=_policy(),
            spill_dir=tmp_path, spill_budget=0,
        ):
            with faults.inject(
                "io.write", OutOfMemory, probability=1.0, seed=3,
                max_fires=None,
            ):
                with pytest.raises(OutOfMemory):
                    ops.mxm(C, A, B, "PLUS_TIMES")
        for obj, snap in zip((C, A, B), snaps):
            assert_same_state(obj, snap)
        assert C.nvals == 0
        # no orphaned tiles, no torn temp files
        assert not any(tmp_path.iterdir())

    def test_read_faults_exhaust_operands_intact_no_orphans(self, AB, tmp_path):
        A, B = AB
        C = Matrix("FP64", 40, 40)
        snaps = [deep_state(o) for o in (C, A, B)]
        with governor.ExecutionContext(
            memory_budget=1, retry=_policy(),
            spill_dir=tmp_path, spill_budget=0,
        ):
            with faults.inject(
                "io.read", OutOfMemory, probability=1.0, seed=4,
                max_fires=None,
            ):
                with pytest.raises(OutOfMemory):
                    ops.mxm(C, A, B, "PLUS_TIMES")
        for obj, snap in zip((C, A, B), snaps):
            assert_same_state(obj, snap)
        assert C.nvals == 0
        assert not any(tmp_path.iterdir())

    def test_failed_spill_keeps_tile_usable(self, tmp_path):
        # a spill that fails even after retry must not lose the tile: it
        # stays resident and the pool remains consistent
        from tests.resilience.test_tiled_spill import _store

        pool = tiled.SpillPool(
            budget=0, directory=tmp_path,
            retry=governor.RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0),
        )
        try:
            s = _store(seed=9)
            with faults.inject(
                "io.write", OutOfMemory, probability=1.0, seed=5,
                max_fires=None,
            ):
                with pytest.raises(OutOfMemory):
                    pool.put("a", s)
            back = pool.get("a")  # still resident despite the failed spill
            assert back.values.tobytes() == s.values.tobytes()
            assert pool.stats["spills"] == 0
        finally:
            pool.close()
        assert not any(tmp_path.iterdir())


class TestSeededBackoff:
    def test_spill_retry_schedule_is_reproducible(self, tmp_path):
        # same seed -> same backoff delays on the spill path
        p1 = governor.RetryPolicy(
            attempts=4, base_delay=0.01, max_delay=0.05, jitter=0.5, seed=21
        )
        p2 = governor.RetryPolicy(
            attempts=4, base_delay=0.01, max_delay=0.05, jitter=0.5, seed=21
        )
        assert [p1.delay(k) for k in (1, 2, 3)] == [
            p2.delay(k) for k in (1, 2, 3)
        ]
