"""Fault injection under the LAGraph algorithm suite.

For each algorithm and each injected kernel point: run clean, snapshot
the graph, inject, and require that (a) the failure (if the point lay on
the algorithm's path) surfaces as a GraphBLAS execution error, (b) the
input graph is bit-identical and still deep-validates, and (c) a rerun
completes and matches the clean result exactly.
"""

import numpy as np
import pytest

import repro.lagraph as lg
from repro.generators import erdos_renyi_gnp
from repro.graphblas import Info, Matrix, OutOfMemory, Vector, faults, validate
from tests.resilience._state import assert_same_state, deep_state

N = 60


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_gnp(N, 0.08, seed=11, kind="undirected")


@pytest.fixture(scope="module")
def digraph():
    return erdos_renyi_gnp(N, 0.06, seed=13, kind="directed")


def _veq(a, b):
    if isinstance(a, (Vector, Matrix)):
        return a.isequal(b)
    if isinstance(a, tuple):
        return len(a) == len(b) and all(_veq(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    return a == b


ALGORITHMS = {
    "bfs_level": ("graph", lambda g: lg.bfs_level(0, g)),
    "bfs_parent": ("graph", lambda g: lg.bfs_parent(0, g)),
    "bellman_ford_sssp": ("graph", lambda g: lg.bellman_ford_sssp(0, g)),
    "pagerank": ("digraph", lambda g: lg.pagerank(g, tol=1e-8)),
    "triangle_count": ("graph", lambda g: lg.triangle_count(g)),
    "connected_components": ("graph", lambda g: lg.connected_components(g)),
    "maximal_independent_set": ("graph", lambda g: lg.maximal_independent_set(g, seed=5)),
    "greedy_color": ("graph", lambda g: lg.greedy_color(g, seed=5)),
    "kcore_decomposition": ("graph", lambda g: lg.kcore_decomposition(g)),
    "ktruss": ("graph", lambda g: lg.ktruss(g, 3)),
}

POINTS = ["spgemm.flop", "mxv.push", "mxv.pull", "ewise", "apply", "reduce", "assign", "select", "alloc"]

PARAMS = [
    pytest.param(alg, point, id=f"{alg}-{point}")
    for alg in ALGORITHMS
    for point in POINTS
]


@pytest.mark.parametrize("alg,point", PARAMS)
def test_algorithm_survives_injected_fault(alg, point, graph, digraph, request):
    which, run = ALGORITHMS[alg]
    g = {"graph": graph, "digraph": digraph}[which]

    clean = run(g)  # also settles any lazily-built caches on g
    snap = deep_state(g.A)

    raised = False
    with faults.inject(point, OutOfMemory, max_fires=None) as plan:
        try:
            out = run(g)
        except OutOfMemory:
            raised = True
    # the fault must surface iff the point lay on the algorithm's path
    assert raised == (plan.fires > 0), (alg, point, plan.fires)
    if not raised:
        assert _veq(out, clean)

    # the input graph is untouched and structurally sound either way
    assert_same_state(g.A, snap)
    assert validate.check(g.A) == Info.SUCCESS

    # rerun to completion: identical result to the clean run
    assert _veq(run(g), clean)
    assert_same_state(g.A, snap)


def test_fault_coverage_across_algorithms(graph, digraph):
    """Kernel faults must actually hit >= 8 distinct algorithms."""
    hit = set()
    for alg, (which, run) in ALGORITHMS.items():
        g = {"graph": graph, "digraph": digraph}[which]
        for point in POINTS:
            with faults.inject(point, OutOfMemory) as plan:
                try:
                    run(g)
                except OutOfMemory:
                    pass
            if plan.fires:
                hit.add(alg)
                break
    assert len(hit) >= 8, sorted(hit)
