"""The performance engine under governor limits.

Two properties: (1) the engine's parallel row-blocking asks the governor
how many workers the budget can fund, and is clamped (never rejected) to
a serial run when blocks don't fit; (2) an over-footprint multiply is
still rejected *before* any engine kernel runs — engine-on changes
nothing about the transactional admission guarantee.
"""

import numpy as np
import pytest

from repro.graphblas import (
    BudgetExceeded,
    Matrix,
    Vector,
    engine,
    governor,
    validate,
)
from repro.graphblas import operations as ops
from repro.graphblas.errors import Info
from tests.helpers import random_matrix_np
from tests.resilience._state import assert_same_state, deep_state


@pytest.fixture(autouse=True)
def _fresh_engine():
    engine.reset()
    engine.set_engine(True)
    yield
    engine.reset()


@pytest.fixture
def AB():
    rng = np.random.default_rng(23)
    A, _, _ = random_matrix_np(rng, 30, 30, 0.3)
    B, _, _ = random_matrix_np(rng, 30, 30, 0.3)
    return A, B


class TestAdmitWorkers:
    def test_no_context_grants_request(self):
        assert governor.admit_workers(4, 1 << 20) == 4

    def test_budget_clamps_worker_count(self):
        with governor.ExecutionContext(memory_budget=2 << 20):
            # 1 MiB per block against a 2 MiB budget: at most 2 workers
            assert governor.admit_workers(8, 1 << 20) == 2

    def test_clamp_floor_is_serial_not_rejection(self):
        with governor.ExecutionContext(memory_budget=16):
            assert governor.admit_workers(8, 1 << 20) == 1

    def test_unlimited_budget_grants_request(self):
        with governor.ExecutionContext():
            assert governor.admit_workers(6, 1 << 30) == 6

    def test_requests_below_one_are_normalized(self):
        assert governor.admit_workers(0, 1 << 20) == 1


class TestEngineUnderBudget:
    def test_over_footprint_mxm_rejected_operands_intact(self, AB):
        """Engine on, parallel on: admission still fires before any kernel
        (specialized or not) touches the operands."""
        A, B = AB
        C = Matrix("FP64", 30, 30)
        snaps = [deep_state(o) for o in (A, B, C)]
        with governor.ExecutionContext(memory_budget=1, degrade=False) as ctx:
            with pytest.raises(BudgetExceeded):
                ops.mxm(C, A, B, "PLUS_TIMES")
        assert ctx.stats["rejected"] == 1
        for obj, snap in zip((A, B, C), snaps):
            assert_same_state(obj, snap)
            assert validate.check(obj) == Info.SUCCESS

    def test_parallel_mxm_clamped_matches_serial(self, AB, monkeypatch):
        A, B = AB
        monkeypatch.setattr(engine, "MIN_PARALLEL_FLOPS", 1)
        engine.set_engine(workers=8)
        C_ser = Matrix("FP64", 30, 30)
        engine.set_engine(parallel=False)
        ops.mxm(C_ser, A, B, "PLUS_TIMES", method="gustavson")
        engine.set_engine(parallel=True)
        C_par = Matrix("FP64", 30, 30)
        # a budget big enough to admit the op but only ~2 parallel blocks
        with governor.ExecutionContext(memory_budget=8 << 20) as ctx:
            ops.mxm(C_par, A, B, "PLUS_TIMES", method="gustavson")
        assert ctx.stats["rejected"] == 0
        ri, ci, vi = C_ser.extract_tuples()
        rj, cj, vj = C_par.extract_tuples()
        assert np.array_equal(ri, rj)
        assert np.array_equal(ci, cj)
        assert np.array_equal(vi, vj)

    def test_engine_off_rejection_unchanged(self, AB):
        A, B = AB
        engine.set_engine(False)
        C = Matrix("FP64", 30, 30)
        with governor.ExecutionContext(memory_budget=1, degrade=False):
            with pytest.raises(BudgetExceeded):
                ops.mxm(C, A, B, "PLUS_TIMES")

    def test_pull_mxv_with_twin_rejected_cleanly(self, AB):
        """Rejection happens at plan admission — before the orientation
        cache would build a twin — so even the twin state is unchanged."""
        A, _ = AB
        A.wait()
        u = Vector("FP64", 30)
        for k in range(0, 30, 3):
            u.set_element(k, 1.0)
        u.wait()
        snap = deep_state(A)
        w = Vector("FP64", 30)
        with governor.ExecutionContext(memory_budget=1, degrade=False):
            with pytest.raises(BudgetExceeded):
                ops.mxv(w, A, u, "PLUS_TIMES", method="pull")
        assert_same_state(A, snap)
