"""``wait()`` interrupted mid-assembly, across every storage format.

Non-blocking mode defers updates into a pending log that ``wait()``
commits atomically.  Whether the interruption is an injected fault or a
governor cancellation, a failed ``wait()`` must leave the object exactly
as it was — store untouched, log intact — and a retried ``wait()`` must
apply the full log.
"""

import numpy as np
import pytest

from repro.graphblas import (
    Cancelled,
    Info,
    Matrix,
    OutOfMemory,
    Vector,
    faults,
    governor,
    nonblocking,
    validate,
)
from tests.resilience._state import assert_same_state, deep_state

FORMATS = ["csr", "csc", "hypercsr", "hypercsc"]


def make_matrix(fmt: str) -> Matrix:
    rng = np.random.default_rng(31)
    r = rng.integers(0, 30, 60)
    c = rng.integers(0, 30, 60)
    A = Matrix.from_coo(r, c, rng.random(60), nrows=30, ncols=30,
                        dtype="FP64", dup="PLUS")
    return A.set_format(fmt)


def stage_updates(A: Matrix) -> dict:
    """Queue inserts and a delete; return the expected final entries."""
    A.set_element(2, 3, 9.5)
    A.set_element(29, 0, -1.25)
    i, j, _ = A.extract_tuples() if not A.has_pending else (None, None, None)
    A.remove_element(0, 0)  # zombie if (0,0) exists, no-op log otherwise
    return {"set": [((2, 3), 9.5), ((29, 0), -1.25)], "removed": (0, 0)}


@pytest.mark.parametrize("fmt", FORMATS)
class TestFaultDuringWait:
    def test_failed_assembly_rolls_back_then_retry_commits(self, fmt):
        with nonblocking():
            A = make_matrix(fmt)
            expected = stage_updates(A)
            assert A.has_pending
            snap = deep_state(A)
            with faults.inject("assemble", OutOfMemory):
                with pytest.raises(OutOfMemory):
                    A.wait()
            assert_same_state(A, snap)  # store AND pending log intact
            assert validate.check(A) == Info.SUCCESS
            A.wait()  # retry commits the same log
            assert not A.has_pending
            for (i, j), val in expected["set"]:
                assert A.extract_element(i, j) == val
            ri, rj = expected["removed"]
            ii, jj, _ = A.extract_tuples()
            assert not np.any((ii == ri) & (jj == rj))
            assert validate.check(A) == Info.SUCCESS


@pytest.mark.parametrize("fmt", FORMATS)
class TestCancelDuringWait:
    def test_cancelled_wait_preserves_log_then_commits(self, fmt):
        with nonblocking():
            A = make_matrix(fmt)
            expected = stage_updates(A)
            snap = deep_state(A)
            ctx = governor.ExecutionContext()
            with ctx:
                ctx.cancel("operator interrupt")
                with pytest.raises(Cancelled):
                    A.wait()
                assert_same_state(A, snap)
                assert validate.check(A) == Info.SUCCESS
            A.wait()  # outside the cancelled scope the commit succeeds
            assert not A.has_pending
            for (i, j), val in expected["set"]:
                assert A.extract_element(i, j) == val
            assert validate.check(A) == Info.SUCCESS

    def test_deadline_during_wait(self, fmt):
        import time

        with nonblocking():
            A = make_matrix(fmt)
            stage_updates(A)
            snap = deep_state(A)
            with governor.ExecutionContext(deadline=0.0):
                time.sleep(0.005)
                from repro.graphblas import DeadlineExceeded

                with pytest.raises(DeadlineExceeded):
                    A.wait()
            assert_same_state(A, snap)
            A.wait()
            assert not A.has_pending


class TestVectorWait:
    def test_fault_then_cancel_then_commit(self):
        with nonblocking():
            v = Vector.from_coo([1, 5, 9], [1.0, 2.0, 3.0], size=12,
                                dtype="FP64")
            v.set_element(0, 4.5)
            v.remove_element(5)
            snap = deep_state(v)
            with faults.inject("assemble", OutOfMemory):
                with pytest.raises(OutOfMemory):
                    v.wait()
            assert_same_state(v, snap)
            ctx = governor.ExecutionContext()
            with ctx:
                ctx.cancel()
                with pytest.raises(Cancelled):
                    v.wait()
            assert_same_state(v, snap)
            assert validate.check(v) == Info.SUCCESS
            v.wait()
            assert v.extract_element(0) == 4.5
            idx, _ = v.extract_tuples()
            assert 5 not in idx
            assert validate.check(v) == Info.SUCCESS
