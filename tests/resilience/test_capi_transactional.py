"""Transactional guarantees of the C-API boundary itself.

Covers GrB_error (thread-local, cleared on success), uniform MemoryError
-> GrB_OUT_OF_MEMORY conversion across hand-written and decorated
wrappers, and atomicity of deferred-update assembly through the facade.
"""

import threading

import numpy as np
import pytest

from repro.graphblas import (
    Info,
    Matrix,
    OutOfMemory,
    Scalar,
    Vector,
    faults,
    validate,
)
from repro.graphblas import capi
from tests.helpers import random_matrix_np, random_vector_np
from tests.resilience._state import assert_same_state, deep_state


class TestGrBError:
    def test_initially_empty_and_cleared_on_success(self):
        info, A = capi.GrB_Matrix_new("FP64", 3, 3)
        assert info == Info.SUCCESS
        assert capi.GrB_error() == ""

    def test_set_on_failure(self):
        info, A = capi.GrB_Matrix_new("FP64", -1, 3)
        assert info == Info.INVALID_VALUE and A is None
        assert "positive" in capi.GrB_error()

    def test_cleared_by_next_success(self):
        capi.GrB_Matrix_new("FP64", -1, 3)
        assert capi.GrB_error() != ""
        capi.GrB_Matrix_new("FP64", 3, 3)
        assert capi.GrB_error() == ""

    def test_injected_fault_message_surfaces(self):
        with faults.inject("alloc", message="simulated allocator exhaustion"):
            info, A = capi.GrB_Matrix_new("FP64", 4, 4)
        assert info == Info.OUT_OF_MEMORY and A is None
        assert capi.GrB_error() == "simulated allocator exhaustion"

    def test_thread_local(self):
        capi.GrB_Matrix_new("FP64", -1, 3)  # error on the main thread
        main_err = capi.GrB_error()
        assert main_err != ""
        seen = {}

        def worker():
            seen["before"] = capi.GrB_error()
            capi.GrB_Vector_new("FP64", -5)
            seen["after"] = capi.GrB_error()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["before"] == ""  # other thread's error not visible
        assert "positive" in seen["after"]
        assert capi.GrB_error() == main_err  # worker didn't clobber ours


class TestUniformMemoryError:
    """MemoryError maps to GrB_OUT_OF_MEMORY from *every* wrapper shape."""

    def test_constructor_wrappers(self):
        with faults.inject("alloc", MemoryError):
            info, A = capi.GrB_Matrix_new("FP64", 3, 3)
        assert (info, A) == (Info.OUT_OF_MEMORY, None)
        with faults.inject("alloc", MemoryError):
            info, v = capi.GrB_Vector_new("FP64", 3)
        assert (info, v) == (Info.OUT_OF_MEMORY, None)

    def test_value_returning_wrappers(self):
        A, _, _ = random_matrix_np(np.random.default_rng(0), 8, 8, 0.3)
        with faults.inject("alloc", MemoryError):
            info, B = capi.GrB_Matrix_dup(A)
        assert (info, B) == (Info.OUT_OF_MEMORY, None)
        A.set_element(0, 0, 1.0)  # pending, so nvals must assemble
        with faults.inject("assemble", MemoryError):
            info, n = capi.GrB_Matrix_nvals(A)
        assert (info, n) == (Info.OUT_OF_MEMORY, None)
        assert A.has_pending  # rolled back, update still logged
        info, n = capi.GrB_Matrix_nvals(A)  # retry assembles
        assert info == Info.SUCCESS and not A.has_pending

    def test_tuple_returning_wrappers(self):
        v, _, _ = random_vector_np(np.random.default_rng(1), 8, 0.4)
        v.set_element(2, 7.0)
        with faults.inject("assemble", MemoryError):
            out = capi.GrB_Vector_extractTuples(v)
        assert out == (Info.OUT_OF_MEMORY, None, None)
        info, idx, vals = capi.GrB_Vector_extractTuples(v)
        assert info == Info.SUCCESS and 2 in idx

    def test_operation_wrappers(self):
        A, _, _ = random_matrix_np(np.random.default_rng(2), 8, 8, 0.3)
        C = Matrix("FP64", 8, 8)
        with faults.inject("spgemm.flop", MemoryError):
            assert capi.GrB_mxm(C, None, None, "PLUS_TIMES", A, A) == Info.OUT_OF_MEMORY
        with faults.inject("reduce", MemoryError):
            s = Scalar("FP64")
            assert capi.GrB_reduce(s, None, "PLUS", A) == Info.OUT_OF_MEMORY
            assert s.is_empty  # rolled back

    def test_build_wrapper(self):
        C = Matrix("FP64", 4, 4)
        with faults.inject("build", MemoryError):
            info = capi.GrB_Matrix_build(C, [0, 1], [1, 2], [1.0, 2.0])
        assert info == Info.OUT_OF_MEMORY
        assert C.nvals == 0
        assert capi.GrB_Matrix_build(C, [0, 1], [1, 2], [1.0, 2.0]) == Info.SUCCESS
        assert C.nvals == 2


class TestWaitAtomicity:
    def test_matrix_wait_rolls_back(self):
        A, _, _ = random_matrix_np(np.random.default_rng(3), 10, 10, 0.3)
        A.set_element(0, 0, 42.0)
        A.remove_element(0, 1)
        snap = deep_state(A)
        with faults.inject("assemble"):
            assert capi.GrB_Matrix_wait(A) == Info.OUT_OF_MEMORY
        assert_same_state(A, snap)
        assert validate.check(A) == Info.SUCCESS
        assert capi.GrB_Matrix_wait(A) == Info.SUCCESS
        assert A.extract_element(0, 0) == 42.0
        assert A.get(0, 1) is None

    def test_vector_wait_rolls_back(self):
        v, _, _ = random_vector_np(np.random.default_rng(4), 10, 0.4)
        v.set_element(3, 9.0)
        snap = deep_state(v)
        with faults.inject("assemble"):
            assert capi.GrB_Vector_wait(v) == Info.OUT_OF_MEMORY
        assert_same_state(v, snap)
        assert capi.GrB_Vector_wait(v) == Info.SUCCESS
        assert v[3] == 9.0

    def test_failed_op_preserves_output_pending_log(self):
        """A faulted operation must roll back the output's pending log too."""
        w = Vector("FP64", 6)
        w.set_element(0, 1.0)  # pending on the *output*
        A, _, _ = random_matrix_np(np.random.default_rng(5), 6, 6, 0.4)
        u, _, _ = random_vector_np(np.random.default_rng(6), 6, 0.5)
        snap = deep_state(w)
        with faults.inject("mxv.push", max_fires=None) as p1, faults.inject(
            "mxv.pull", max_fires=None
        ) as p2:
            info = capi.GrB_mxv(w, None, None, "PLUS_TIMES", A, u)
        assert p1.fires + p2.fires >= 1
        assert info == Info.OUT_OF_MEMORY
        assert_same_state(w, snap)


class TestNoValueUnaffected:
    def test_extract_element_no_value_not_an_error(self):
        A = Matrix("FP64", 3, 3)
        info, val = capi.GrB_Matrix_extractElement(A, 0, 0)
        assert info == Info.NO_VALUE and val is None
        # NO_VALUE is informational: it must not set GrB_error
        capi.GrB_Matrix_new("FP64", 2, 2)  # clear
        capi.GrB_Matrix_extractElement(A, 1, 1)
        assert capi.GrB_error() == ""
