"""Resilience-suite plumbing: every test here carries the `resilience` mark."""

import os

import pytest

import repro.graphblas.faults as faults

_HERE = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    for item in items:
        if str(item.fspath).startswith(_HERE):
            item.add_marker(pytest.mark.resilience)


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Fault injection must be fully disarmed before and after every test."""
    assert not faults.ENABLED and not faults.active_plans()
    faults.reset_stats()
    yield
    assert not faults.ENABLED and not faults.active_plans()
