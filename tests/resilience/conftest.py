"""Resilience-suite plumbing: every test here carries the `resilience` mark."""

import os

import pytest

import repro.graphblas.faults as faults
import repro.graphblas.governor as governor

_HERE = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    for item in items:
        if str(item.fspath).startswith(_HERE):
            item.add_marker(pytest.mark.resilience)


def pytest_report_header(config):
    # The run seed reproduces every probabilistic fault plan armed without
    # an explicit seed (re-run with GRAPHBLAS_FAULT_SEED=<seed>).
    return f"fault-injection run seed: GRAPHBLAS_FAULT_SEED={faults.run_seed()}"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append((
            "fault-injection seed",
            f"replay probabilistic fault plans with "
            f"GRAPHBLAS_FAULT_SEED={faults.run_seed()}",
        ))


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Fault injection must be fully disarmed before and after every test."""
    assert not faults.ENABLED and not faults.active_plans()
    faults.reset_stats()
    yield
    assert not faults.ENABLED and not faults.active_plans()


@pytest.fixture(autouse=True)
def _governed():
    """Run each test under a governor context when the CI leg asks for one.

    GRAPHBLAS_GOVERNOR_BUDGET / GRAPHBLAS_GOVERNOR_DEADLINE turn the whole
    resilience suite into a stress test of the admission path: every
    operation planned by every test is then estimated and admitted.
    """
    budget, deadline = governor.env_limits()
    if budget is None and deadline is None:
        yield
        return
    with governor.ExecutionContext(memory_budget=budget, deadline=deadline):
        yield
