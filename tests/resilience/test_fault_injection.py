"""Fault injection into every Table-I operation through the C-API boundary.

For each (operation, injection point, exception) triple:

1. arm the fault and issue the call through :mod:`repro.graphblas.capi`;
2. if the point lay on the executed path (``plan.fires > 0``), the call
   must return ``GrB_OUT_OF_MEMORY`` and every operand — output, inputs,
   mask, scalar — must be *bit-identical* to its pre-call state and still
   pass deep validation;
3. the retried call (fault disarmed) must succeed and match the dense
   spec-literal reference oracle.

If the point was never reached the call must simply have succeeded and
the oracle must still hold (this keeps the op x point cross-product
honest without hand-maintaining a reachability table).
"""

import numpy as np
import pytest

from repro.graphblas import (
    Info,
    Matrix,
    OutOfMemory,
    Scalar,
    Vector,
    faults,
    validate,
)
from repro.graphblas import capi
from repro.graphblas import reference as ref
from repro.io import mmread, mmwrite
from tests.helpers import random_matrix_np, random_vector_np
from tests.resilience._state import assert_same_state, deep_state

N = 24


class Env:
    """Fresh operands per test (faults must never leak between cases)."""

    def __init__(self, seed=7):
        rng = np.random.default_rng(seed)
        self.A, _, _ = random_matrix_np(rng, N, N, 0.2)
        self.B, _, _ = random_matrix_np(rng, N, N, 0.2)
        self.M, _, _ = random_matrix_np(rng, N, N, 0.35)
        self.u, _, _ = random_vector_np(rng, N, 0.3)
        self.m, _, _ = random_vector_np(rng, N, 0.45)
        self.C = Matrix("FP64", N, N)
        self.w = Vector("FP64", N)
        self.s = Scalar("FP64")
        self.I = np.arange(0, N, 2)
        self.sub, _, _ = random_matrix_np(rng, self.I.size, self.I.size, 0.3)


def _r(x):
    return ref.RefMatrix.from_matrix(x)


def _rv(x):
    return ref.RefVector.from_vector(x)


# Each case: name -> (points to inject, build(env) -> (call, operands, verify))
# `verify()` is run after a successful call and checks the dense oracle.
def _case_mxm(e):
    expected = ref.ref_mxm(_r(e.C), _r(e.A), _r(e.B), "PLUS_TIMES", mask=_r(e.M))
    call = lambda: capi.GrB_mxm(e.C, e.M, None, "PLUS_TIMES", e.A, e.B)
    return call, [e.C, e.M, e.A, e.B], lambda: expected.matches(e.C)


def _case_mxv(e):
    expected = ref.ref_mxv(_rv(e.w), _r(e.A), _rv(e.u), "PLUS_TIMES")
    call = lambda: capi.GrB_mxv(e.w, None, None, "PLUS_TIMES", e.A, e.u)
    return call, [e.w, e.A, e.u], lambda: expected.matches(e.w)


def _case_vxm(e):
    expected = ref.ref_vxm(_rv(e.w), _rv(e.u), _r(e.A), "PLUS_TIMES")
    call = lambda: capi.GrB_vxm(e.w, None, None, "PLUS_TIMES", e.u, e.A)
    return call, [e.w, e.u, e.A], lambda: expected.matches(e.w)


def _case_mxv_push(e):
    # a frontier far below the direction-switch threshold forces push
    n = 40 * N
    rng = np.random.default_rng(9)
    A, _, _ = random_matrix_np(rng, n, n, 0.004)
    u = Vector.from_coo([0, 3], [1.0, 2.0], size=n)
    w = Vector("FP64", n)
    expected = ref.ref_mxv(_rv(w), _r(A), _rv(u), "PLUS_TIMES")
    call = lambda: capi.GrB_mxv(w, None, None, "PLUS_TIMES", A, u)
    return call, [w, A, u], lambda: expected.matches(w)


def _case_ewise_add(e):
    expected = ref.ref_ewise_add(_r(e.C), _r(e.A), _r(e.B), "PLUS")
    call = lambda: capi.GrB_eWiseAdd(e.C, None, None, "PLUS", e.A, e.B)
    return call, [e.C, e.A, e.B], lambda: expected.matches(e.C)


def _case_ewise_mult(e):
    expected = ref.ref_ewise_mult(_r(e.C), _r(e.A), _r(e.B), "TIMES")
    call = lambda: capi.GrB_eWiseMult(e.C, None, None, "TIMES", e.A, e.B)
    return call, [e.C, e.A, e.B], lambda: expected.matches(e.C)


def _case_apply(e):
    expected = ref.ref_apply(_r(e.C), _r(e.A), "AINV")
    call = lambda: capi.GrB_apply(e.C, None, None, "AINV", e.A)
    return call, [e.C, e.A], lambda: expected.matches(e.C)


def _case_select(e):
    expected = ref.ref_select(_r(e.C), _r(e.A), "TRIL")
    call = lambda: capi.GrB_select(e.C, None, None, "TRIL", e.A)
    return call, [e.C, e.A], lambda: expected.matches(e.C)


def _case_reduce_rowwise(e):
    expected = ref.ref_reduce_rowwise(_rv(e.w), _r(e.A), "PLUS")
    call = lambda: capi.GrB_reduce(e.w, None, None, "PLUS", e.A)
    return call, [e.w, e.A], lambda: expected.matches(e.w)


def _case_reduce_scalar(e):
    expected = ref.ref_reduce_scalar(_r(e.A), "PLUS")
    call = lambda: capi.GrB_reduce(e.s, None, "PLUS", e.A)
    return call, [e.s, e.A], lambda: np.isclose(e.s.value, expected)


def _case_transpose(e):
    expected = ref.ref_transpose(_r(e.C), _r(e.A))
    call = lambda: capi.GrB_transpose(e.C, None, None, e.A)
    return call, [e.C, e.A], lambda: expected.matches(e.C)


def _case_extract(e):
    out = Matrix("FP64", e.I.size, e.I.size)
    expected = ref.ref_extract(_r(out), _r(e.A), e.I, e.I)
    call = lambda: capi.GrB_extract(out, None, None, e.A, e.I, e.I)
    return call, [out, e.A], lambda: expected.matches(out)


def _case_assign(e):
    expected = ref.ref_assign(_r(e.M), _r(e.sub), e.I, e.I)
    call = lambda: capi.GrB_assign(e.M, None, None, e.sub, e.I, e.I)
    return call, [e.M, e.sub], lambda: expected.matches(e.M)


def _case_subassign(e):
    expected = ref.ref_subassign(_r(e.M), _r(e.sub), e.I, e.I)
    call = lambda: capi.GxB_subassign(e.M, None, None, e.sub, e.I, e.I)
    return call, [e.M, e.sub], lambda: expected.matches(e.M)


def _case_kronecker(e):
    small, _, _ = random_matrix_np(np.random.default_rng(3), 5, 5, 0.3)
    out = Matrix("FP64", 5 * N, 5 * N)
    expected = ref.ref_kronecker(_r(out), _r(small), _r(e.A), "TIMES")
    call = lambda: capi.GrB_kronecker(out, None, None, "TIMES", small, e.A)
    return call, [out, small, e.A], lambda: expected.matches(out)


def _case_build(e):
    rng = np.random.default_rng(5)
    i = rng.integers(0, N, 40)
    j = rng.integers(0, N, 40)
    x = rng.uniform(1, 9, 40)
    dense = np.zeros((N, N))
    np.add.at(dense, (i, j), x)  # dup="PLUS"
    call = lambda: capi.GrB_Matrix_build(e.C, i, j, x)
    verify = lambda: np.allclose(e.C.to_dense(), dense)
    return call, [e.C], verify


CASES = {
    "mxm": (["spgemm.flop", "alloc", "assemble"], _case_mxm),
    "mxv": (["mxv.push", "mxv.pull", "alloc"], _case_mxv),
    "vxm": (["mxv.push", "mxv.pull", "alloc"], _case_vxm),
    "mxv_push": (["mxv.push"], _case_mxv_push),
    "eWiseAdd": (["ewise", "alloc"], _case_ewise_add),
    "eWiseMult": (["ewise", "alloc"], _case_ewise_mult),
    "apply": (["apply", "alloc"], _case_apply),
    "select": (["select", "alloc"], _case_select),
    "reduce_rowwise": (["reduce", "alloc"], _case_reduce_rowwise),
    "reduce_scalar": (["reduce"], _case_reduce_scalar),
    "transpose": (["transpose", "alloc"], _case_transpose),
    "extract": (["extract", "alloc"], _case_extract),
    "assign": (["assign", "alloc"], _case_assign),
    "subassign": (["assign", "alloc"], _case_subassign),
    "kronecker": (["kronecker", "alloc"], _case_kronecker),
    "build": (["build"], _case_build),
}

PARAMS = [
    pytest.param(op, point, id=f"{op}-{point}")
    for op, (points, _) in CASES.items()
    for point in points
]


class TestTable1FaultInjection:
    @pytest.mark.parametrize("exc", [OutOfMemory, MemoryError], ids=["GrB", "MemoryError"])
    @pytest.mark.parametrize("op,point", PARAMS)
    def test_operation_survives_injected_fault(self, op, point, exc):
        _, build = CASES[op]
        e = Env()
        call, operands, verify = build(e)
        snaps = [(o, deep_state(o)) for o in operands]

        with faults.inject(point, exc) as plan:
            info = call()

        if plan.fires == 0:
            # point not on this op's execution path: the call must have
            # succeeded normally and the oracle must hold
            assert info == Info.SUCCESS
            assert verify()
            return

        # (a) the right error code surfaced, with a readable message
        assert info == Info.OUT_OF_MEMORY
        assert "injected fault" in capi.GrB_error() or exc is MemoryError

        # (b) every operand bit-identical and structurally valid
        for obj, snap in snaps:
            assert_same_state(obj, snap)
            assert validate.check(obj) == Info.SUCCESS

        # (c) the retried call completes and matches the dense oracle
        assert call() == Info.SUCCESS
        assert capi.GrB_error() == ""
        assert verify()
        for obj in operands[1:]:  # inputs still valid after success too
            assert validate.check(obj) == Info.SUCCESS

    def test_every_point_reachable_somewhere(self):
        """Each kernel/lifecycle point must actually fire for >=1 case."""
        hit = set()
        for op, (points, build) in CASES.items():
            for point in points:
                e = Env()
                call, _, _ = build(e)
                with faults.inject(point) as plan:
                    call()
                if plan.fires:
                    hit.add(point)
        assert {
            "spgemm.flop",
            "mxv.push",
            "mxv.pull",
            "ewise",
            "apply",
            "select",
            "reduce",
            "transpose",
            "extract",
            "assign",
            "kronecker",
            "alloc",
            "build",
        } <= hit


class TestIOFaults:
    def test_mmio_read_fault(self, tmp_path):
        A, _, _ = random_matrix_np(np.random.default_rng(1), 10, 10, 0.3)
        path = tmp_path / "a.mtx"
        mmwrite(str(path), A)
        with faults.inject("io.read") as plan:
            with pytest.raises(OutOfMemory):
                mmread(str(path))
        assert plan.fires == 1
        B = mmread(str(path))  # retry succeeds
        assert A.isequal(B)

    def test_mmio_write_fault(self, tmp_path):
        A, _, _ = random_matrix_np(np.random.default_rng(2), 10, 10, 0.3)
        path = tmp_path / "a.mtx"
        snap = deep_state(A)
        with faults.inject("io.write", MemoryError):
            with pytest.raises(MemoryError):
                mmwrite(str(path), A)
        assert_same_state(A, snap)
        mmwrite(str(path), A)
        assert mmread(str(path)).isequal(A)

    def test_npz_roundtrip_faults(self, tmp_path):
        from repro.io import load_matrix_npz, save_matrix_npz

        A, _, _ = random_matrix_np(np.random.default_rng(3), 12, 8, 0.3)
        path = tmp_path / "a.npz"
        with faults.inject("io.write"):
            with pytest.raises(OutOfMemory):
                save_matrix_npz(str(path), A)
        save_matrix_npz(str(path), A)
        with faults.inject("io.read"):
            with pytest.raises(OutOfMemory):
                load_matrix_npz(str(path))
        assert load_matrix_npz(str(path)).isequal(A)
