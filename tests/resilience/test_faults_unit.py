"""Unit behavior of the fault-injection harness itself."""

import pytest

from repro.graphblas import InsufficientSpace, Matrix, OutOfMemory, faults


class TestTriggers:
    def test_nth_deterministic(self):
        with faults.inject("alloc", nth=3) as plan:
            Matrix("FP64", 2, 2)
            Matrix("FP64", 2, 2)
            with pytest.raises(OutOfMemory):
                Matrix("FP64", 2, 2)
            Matrix("FP64", 2, 2)  # max_fires=1: later calls succeed
        assert (plan.calls, plan.fires) == (4, 1)

    def test_probability_zero_never_fires(self):
        with faults.inject("alloc", probability=0.0, seed=1) as plan:
            for _ in range(20):
                Matrix("FP64", 2, 2)
        assert plan.fires == 0 and plan.calls == 20

    def test_probability_one_fires_immediately(self):
        with faults.inject("alloc", probability=1.0, seed=1) as plan:
            with pytest.raises(OutOfMemory):
                Matrix("FP64", 2, 2)
        assert plan.fires == 1

    def test_probabilistic_reproducible_under_seed(self):
        def fire_pattern():
            pattern = []
            with faults.inject(
                "alloc", probability=0.3, seed=42, max_fires=None
            ) as plan:
                for _ in range(30):
                    try:
                        Matrix("FP64", 2, 2)
                        pattern.append(False)
                    except OutOfMemory:
                        pattern.append(True)
            return pattern

        first, second = fire_pattern(), fire_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_max_fires_bounds_raises(self):
        fired = 0
        with faults.inject("alloc", probability=1.0, seed=0, max_fires=2):
            for _ in range(5):
                try:
                    Matrix("FP64", 2, 2)
                except OutOfMemory:
                    fired += 1
        assert fired == 2

    def test_custom_exception_class(self):
        with faults.inject("alloc", InsufficientSpace):
            with pytest.raises(InsufficientSpace):
                Matrix("FP64", 2, 2)

    def test_memoryerror_injectable(self):
        with faults.inject("alloc", MemoryError):
            with pytest.raises(MemoryError):
                Matrix("FP64", 2, 2)


class TestHarnessPlumbing:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            faults.FaultPlan("not.a.point")

    def test_non_exception_rejected(self):
        with pytest.raises(TypeError):
            faults.FaultPlan("alloc", exc=42)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultPlan("alloc", probability=1.5)

    def test_register_point_extends(self):
        name = faults.register_point("test.custom")
        try:
            with faults.inject(name, nth=1):
                with pytest.raises(OutOfMemory):
                    faults.trip(name)
        finally:
            faults.POINTS.discard("test.custom")

    def test_disabled_trip_is_noop(self):
        assert not faults.ENABLED
        faults.trip("alloc")  # must not raise or count
        assert faults.call_count("alloc") == 0

    def test_untargeted_point_is_not_counted_while_armed(self):
        # arming one point must not tax (or count) every other site:
        # trip() on a point with no armed plan is a dict probe, nothing
        # else — the chaos benchmark runs thousands of kernel ops per
        # injected serve-level fault
        faults.reset_stats()
        with faults.inject("alloc", nth=10**9):
            faults.trip("ewise")  # no armed plan targets this point
            faults.trip("alloc")
            assert faults.call_count("ewise") == 0
            assert faults.call_count("alloc") == 1

    def test_enabled_flag_tracks_plans(self):
        assert not faults.ENABLED
        with faults.inject("alloc"):
            assert faults.ENABLED
            with faults.inject("ewise"):
                assert faults.ENABLED
                assert len(faults.active_plans()) == 2
            assert faults.ENABLED  # outer plan still armed
        assert not faults.ENABLED

    def test_stats(self):
        faults.reset_stats()
        with faults.inject("alloc", nth=2):
            Matrix("FP64", 2, 2)
            with pytest.raises(OutOfMemory):
                Matrix("FP64", 2, 2)
        assert faults.call_count("alloc") == 2
        assert faults.fired() == [("alloc", 2)]
        faults.reset_stats()
        assert faults.call_count("alloc") == 0 and faults.fired() == []
