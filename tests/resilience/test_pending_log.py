"""Blocking vs non-blocking failure semantics of the deferred-update log.

A failed setElement/removeElement must never leave a half-applied update:
in non-blocking mode the action is logged and assembly is deferred (a
later failed wait leaves the log intact); in blocking mode assembly runs
immediately and a failure un-logs the action entirely, so the object is
bit-identical to before the call.
"""

import numpy as np
import pytest

from repro.graphblas import (
    Info,
    Matrix,
    OutOfMemory,
    Vector,
    blocking,
    faults,
    nonblocking,
    validate,
)
from tests.helpers import random_matrix_np, random_vector_np
from tests.resilience._state import assert_same_state, deep_state


@pytest.fixture
def A():
    return random_matrix_np(np.random.default_rng(1), 10, 10, 0.3)[0]


@pytest.fixture
def v():
    return random_vector_np(np.random.default_rng(2), 12, 0.4)[0]


class TestNonBlocking:
    def test_set_element_defers_then_failed_wait_keeps_log(self, A):
        with nonblocking():
            A.set_element(0, 0, 5.0)
            assert A.has_pending
            snap = deep_state(A)
            with faults.inject("assemble"):
                with pytest.raises(OutOfMemory):
                    A.wait()
            assert_same_state(A, snap)  # log intact, store untouched
            assert validate.check(A) == Info.SUCCESS
            A.wait()  # retry assembles the same log
            assert A.extract_element(0, 0) == 5.0

    def test_remove_element_defers(self, v):
        with nonblocking():
            i = int(v.indices[0])
            v.remove_element(i)
            assert v.has_pending
            with faults.inject("assemble"):
                with pytest.raises(OutOfMemory):
                    v.wait()
            assert v.has_pending  # zombie still logged
            v.wait()
            assert v.get(i) is None


class TestBlocking:
    def test_failed_set_element_fully_unlogged(self, A):
        snap = deep_state(A)
        with blocking():
            with faults.inject("assemble"):
                with pytest.raises(OutOfMemory):
                    A.set_element(3, 3, 9.0)
        assert not A.has_pending  # the action was un-appended
        assert_same_state(A, snap)
        assert validate.check(A) == Info.SUCCESS
        with blocking():
            A.set_element(3, 3, 9.0)  # retry applies cleanly
        assert A.extract_element(3, 3) == 9.0

    def test_failed_remove_element_fully_unlogged(self, A):
        r, c, _ = A.extract_tuples()
        i, j = int(r[0]), int(c[0])
        snap = deep_state(A)
        with blocking():
            with faults.inject("assemble"):
                with pytest.raises(OutOfMemory):
                    A.remove_element(i, j)
        assert_same_state(A, snap)
        assert A.get(i, j) is not None  # entry survived the failed delete
        with blocking():
            A.remove_element(i, j)
        assert A.get(i, j) is None

    def test_vector_set_element_unlogged(self, v):
        snap = deep_state(v)
        with blocking():
            with faults.inject("assemble"):
                with pytest.raises(OutOfMemory):
                    v.set_element(5, 1.5)
        assert_same_state(v, snap)
        with blocking():
            v.set_element(5, 1.5)
        assert v[5] == 1.5

    def test_earlier_updates_survive_later_failure(self, A):
        """nth=2: first blocking update commits, second fails and unlogs."""
        with blocking():
            with faults.inject("assemble", nth=2):
                A.set_element(0, 0, 1.0)  # assemble #1 succeeds
                with pytest.raises(OutOfMemory):
                    A.set_element(1, 1, 2.0)  # assemble #2 faults
            assert A.extract_element(0, 0) == 1.0  # first commit intact
            assert not A.has_pending
            assert A.get(1, 1) is None
            A.set_element(1, 1, 2.0)
            assert A.extract_element(1, 1) == 2.0

    def test_set_element_fault_at_point_itself(self, A):
        """A fault at the setElement point (pre-log) changes nothing."""
        snap = deep_state(A)
        with blocking():
            with faults.inject("setElement"):
                with pytest.raises(OutOfMemory):
                    A.set_element(2, 2, 7.0)
        assert_same_state(A, snap)

    def test_alt_cache_restored_on_failure(self, A):
        """The dual-orientation cache must be restored, not just dropped."""
        A.keep_both_orientations(True)
        A.by_col()
        A.by_row()
        assert A._alt is not None
        snap = deep_state(A)
        with blocking():
            with faults.inject("assemble"):
                with pytest.raises(OutOfMemory):
                    A.set_element(4, 4, 3.0)
        assert_same_state(A, snap)  # includes the _alt twin
        assert validate.check(A) == Info.SUCCESS
