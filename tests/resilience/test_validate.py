"""Deep object validation (GxB_check spirit) detects every corruption class."""

import numpy as np
import pytest

from repro.graphblas import (
    Info,
    InvalidObject,
    Matrix,
    Scalar,
    Vector,
    export_matrix,
    validate,
)
from repro.graphblas import capi
from tests.helpers import random_matrix_np, random_vector_np


@pytest.fixture
def A():
    return random_matrix_np(np.random.default_rng(1), 12, 9, 0.3)[0]


@pytest.fixture
def v():
    return random_vector_np(np.random.default_rng(2), 15, 0.4)[0]


class TestValidObjects:
    def test_fresh_matrix_valid(self, A):
        assert validate.check(A) == Info.SUCCESS
        assert validate.matrix_problems(A) == []
        validate.expect_valid(A)

    def test_empty_matrix_valid(self):
        assert validate.check(Matrix("FP64", 3, 4)) == Info.SUCCESS

    def test_hypersparse_matrix_valid(self):
        H = Matrix.from_coo([0, 90_000], [1, 2], [1.0, 2.0], nrows=100_000, ncols=10)
        assert validate.check(H) == Info.SUCCESS

    def test_matrix_with_pending_valid(self, A):
        A.set_element(0, 0, 5.0)
        A.remove_element(1, 1)
        assert validate.check(A) == Info.SUCCESS

    def test_dual_orientation_valid(self, A):
        A.keep_both_orientations(True)
        A.by_col()
        A.by_row()
        assert A._alt is not None
        assert validate.check(A) == Info.SUCCESS

    def test_vector_valid(self, v):
        assert validate.check(v) == Info.SUCCESS
        assert validate.vector_problems(v) == []

    def test_scalar_valid(self):
        s = Scalar("FP64")
        assert validate.check(s) == Info.SUCCESS
        s.set(3.0)
        assert validate.check(s) == Info.SUCCESS


class TestMatrixCorruption:
    def test_unsorted_minor_detected(self, A):
        s = A._store
        assert s.minor.size >= 2
        # find a major vector with >= 2 entries and swap its first two
        lens = np.diff(s.indptr)
        (rows,) = np.nonzero(lens >= 2)
        start = int(s.indptr[rows[0]])
        s.minor[[start, start + 1]] = s.minor[[start + 1, start]]
        probs = validate.matrix_problems(A)
        assert any("unsorted" in p for p in probs)
        assert validate.check(A) == Info.INVALID_OBJECT

    def test_out_of_range_minor_detected(self, A):
        A._store.minor[0] = A._store.n_minor + 3
        assert any("out of range" in p for p in validate.matrix_problems(A))

    def test_negative_minor_detected(self, A):
        A._store.minor[0] = -1
        assert validate.check(A) == Info.INVALID_OBJECT

    def test_broken_indptr_detected(self, A):
        A._store.indptr[-1] += 2
        probs = validate.matrix_problems(A)
        assert any("indptr" in p for p in probs)

    def test_nonmonotone_indptr_detected(self, A):
        s = A._store
        if s.indptr.size > 2:
            s.indptr[1] = s.indptr[-1] + 1  # also breaks the endpoint
        probs = validate.matrix_problems(A)
        assert probs

    def test_value_length_mismatch_detected(self, A):
        A._store.values = A._store.values[:-1]
        assert any("disagree" in p for p in validate.matrix_problems(A))

    def test_wrong_value_dtype_detected(self, A):
        A._store.values = A._store.values.astype(np.float32)
        assert any("dtype" in p for p in validate.matrix_problems(A))

    def test_pending_log_mismatch_detected(self, A):
        A._pend_i.append(0)  # no matching j / value / flag
        assert any("pending" in p for p in validate.matrix_problems(A))
        assert validate.check(A) == Info.INVALID_OBJECT

    def test_pending_out_of_range_detected(self, A):
        A._pend_i.append(A.nrows + 5)
        A._pend_j.append(0)
        A._pend_v.append(1.0)
        A._pend_del.append(False)
        assert any("pending" in p for p in validate.matrix_problems(A))

    def test_twin_disagreement_detected(self, A):
        A.keep_both_orientations(True)
        A.by_col()
        A.by_row()
        assert A._alt is not None and A._alt.values.size
        A._alt.values[0] += 1.0
        assert any("disagree" in p for p in validate.matrix_problems(A))

    def test_twin_same_orientation_detected(self, A):
        A._alt = A._store
        assert any("orientation" in p for p in validate.matrix_problems(A))

    def test_expect_valid_raises_with_report(self, A):
        A._store.minor[0] = -1
        with pytest.raises(InvalidObject, match="out of range"):
            validate.expect_valid(A)

    def test_moved_out_is_uninitialized(self, A):
        export_matrix(A)  # O(1) move: A is now invalid
        assert validate.check(A) == Info.UNINITIALIZED_OBJECT


class TestVectorCorruption:
    def test_unsorted_indices_detected(self, v):
        assert v.indices.size >= 2
        v.indices[[0, 1]] = v.indices[[1, 0]]
        assert any("unsorted" in p for p in validate.vector_problems(v))

    def test_out_of_range_detected(self, v):
        v.indices[-1] = v.size
        assert validate.check(v) == Info.INVALID_OBJECT

    def test_length_mismatch_detected(self, v):
        v.values = v.values[:-1]
        assert any("disagree" in p for p in validate.vector_problems(v))

    def test_pending_log_detected(self, v):
        v._pend_i.append(-3)
        v._pend_v.append(0.0)
        v._pend_del.append(False)
        assert any("pending" in p for p in validate.vector_problems(v))


class TestCapiCheck:
    def test_matrix_check_success(self, A):
        info, report = capi.GrB_Matrix_check(A)
        assert info == Info.SUCCESS and report == ""

    def test_matrix_check_invalid(self, A):
        A._store.minor[0] = -1
        info, report = capi.GrB_Matrix_check(A)
        assert info == Info.INVALID_OBJECT
        assert "out of range" in report

    def test_vector_check(self, v):
        assert capi.GrB_Vector_check(v) == (Info.SUCCESS, "")
        v.indices[0] = -2
        info, report = capi.GrB_Vector_check(v)
        assert info == Info.INVALID_OBJECT and report

    def test_freed_object_uninitialized(self, A):
        capi.GrB_free(A)
        info, report = capi.GrB_Matrix_check(A)
        assert info == Info.UNINITIALIZED_OBJECT
        assert "moved out" in report
