"""Checkpoint/resume: atomic snapshots and bit-identical restarts.

The acceptance property: kill pagerank mid-run with an injected fault,
resume from the last on-disk snapshot, and obtain the exact bytes an
uninterrupted run produces.
"""

import os

import numpy as np
import pytest

from repro.graphblas import (
    InvalidValue,
    Matrix,
    OutOfMemory,
    Vector,
    faults,
    governor,
)
from repro.io import load_state, save_state
from repro.lagraph import Graph
from repro.lagraph.bfs import bfs
from repro.lagraph.centrality import betweenness_centrality, pagerank
from repro.lagraph.components import connected_components
from repro.lagraph.dnn import dnn_inference
from repro.lagraph.sssp import bellman_ford_sssp


@pytest.fixture
def graph():
    rng = np.random.default_rng(17)
    n = 60
    r = rng.integers(0, n, 300)
    c = rng.integers(0, n, 300)
    keep = r != c
    w = rng.random(keep.sum()) + 0.1
    A = Matrix.from_coo(r[keep], c[keep], w, nrows=n, ncols=n,
                        dtype="FP64", dup="FIRST")
    return Graph(A)


# --------------------------------------------------------------------------
# the io layer
# --------------------------------------------------------------------------

class TestSaveLoadState:
    def test_round_trip_bit_identical(self, tmp_path):
        rng = np.random.default_rng(1)
        M = Matrix.from_coo([0, 3, 7], [2, 1, 7], [1.5, -2.0, 0.25],
                            nrows=9, ncols=8, dtype="FP64")
        idx = np.array([1, 4, 6])
        v = Vector.from_coo(idx, rng.random(3), size=10, dtype="FP64")
        path = str(tmp_path / "state.npz")
        save_state(path, {"M": M, "v": v, "it": 7, "tol": 1e-8,
                          "name": "pr", "flag": True})
        st = load_state(path)
        assert st["it"] == 7 and st["tol"] == 1e-8
        assert st["name"] == "pr" and st["flag"] is True
        ri, rj, rv = st["M"].extract_tuples()
        mi, mj, mv = M.extract_tuples()
        assert np.array_equal(ri, mi) and np.array_equal(rj, mj)
        assert np.array_equal(rv, mv)
        vi, vv = st["v"].extract_tuples()
        oi, ov = v.extract_tuples()
        assert np.array_equal(vi, oi) and np.array_equal(vv, ov)

    def test_reserved_key_separator_rejected(self, tmp_path):
        with pytest.raises(InvalidValue):
            save_state(str(tmp_path / "x.npz"), {"a::b": 1})

    def test_unserializable_value_rejected(self, tmp_path):
        with pytest.raises(InvalidValue):
            save_state(str(tmp_path / "x.npz"), {"obj": object()})

    def test_atomic_write_keeps_previous_snapshot(self, tmp_path):
        path = str(tmp_path / "cp.npz")
        save_state(path, {"gen": 1})
        with faults.inject("io.write", OutOfMemory):
            with pytest.raises(OutOfMemory):
                save_state(path, {"gen": 2})
        assert load_state(path)["gen"] == 1  # old snapshot intact
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert not leftovers  # no temp debris

    def test_load_missing_manifest_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.npz")
        np.savez(path, junk=np.arange(3))
        with pytest.raises(InvalidValue):
            load_state(path)


class TestCheckpointObject:
    def test_every_k_limits_save_frequency(self, tmp_path):
        cp = governor.Checkpoint(str(tmp_path / "cp.npz"), every=3)
        for it in range(1, 10):
            governor.save_hook(cp, "alg", it, {"x": it})
        assert cp.saves == 3  # iterations 3, 6, 9

    def test_algorithm_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "cp.npz")
        cp = governor.Checkpoint(path)
        cp.save("pagerank", 4, {"x": 1})
        with pytest.raises(InvalidValue, match="pagerank"):
            governor.load_checkpoint(path, algorithm="bfs")

    def test_as_checkpoint_normalization(self, tmp_path):
        assert governor.as_checkpoint(None) is None
        cp = governor.Checkpoint(str(tmp_path / "a.npz"))
        assert governor.as_checkpoint(cp) is cp
        fn = lambda a, i, s: None
        assert governor.as_checkpoint(fn) is fn
        made = governor.as_checkpoint(str(tmp_path / "b.npz"))
        assert isinstance(made, governor.Checkpoint)

    def test_invalid_every_rejected(self, tmp_path):
        with pytest.raises(InvalidValue):
            governor.Checkpoint(str(tmp_path / "c.npz"), every=0)


# --------------------------------------------------------------------------
# kill-and-resume (the acceptance test)
# --------------------------------------------------------------------------

class TestKillAndResume:
    def test_pagerank_killed_mid_run_resumes_bit_identical(self, graph, tmp_path):
        r_full, it_full = pagerank(graph)
        assert it_full > 4  # the kill below must land mid-run

        path = str(tmp_path / "pr.npz")
        # kill the run partway: each iteration pulls through mxv once,
        # so failing the 4th pull aborts during iteration 4
        with faults.inject("mxv.pull", OutOfMemory, nth=4):
            with pytest.raises(OutOfMemory):
                pagerank(graph, checkpoint=path)
        st = governor.load_checkpoint(path, algorithm="pagerank")
        assert int(st["__iteration__"]) < it_full

        r_res, it_res = pagerank(graph, resume=path)
        assert it_res == it_full
        assert np.array_equal(r_full.to_dense(), r_res.to_dense())

    def test_bfs_resume_matches(self, graph, tmp_path):
        lv_full, _ = bfs(0, graph)
        path = str(tmp_path / "bfs.npz")
        bfs(0, graph, checkpoint=path)  # last snapshot = final state
        # also resume from an early snapshot
        early = str(tmp_path / "bfs_early.npz")
        taken = []

        def first_only(alg, it, state):
            if not taken:
                governor.Checkpoint(early).save(alg, it, state)
                taken.append(it)

        bfs(0, graph, checkpoint=first_only)
        lv_res, _ = bfs(0, graph, resume=early)
        assert lv_full.isequal(lv_res)

    def test_bfs_resume_output_shape_mismatch(self, graph, tmp_path):
        path = str(tmp_path / "bfs.npz")
        bfs(0, graph, checkpoint=path)  # level only
        with pytest.raises(InvalidValue):
            bfs(0, graph, parent=True, level=False, resume=path)

    def test_sssp_resume_matches(self, graph, tmp_path):
        d_full = bellman_ford_sssp(0, graph)
        early = str(tmp_path / "sssp.npz")
        taken = []

        def first_only(alg, it, state):
            if not taken:
                governor.Checkpoint(early).save(alg, it, state)
                taken.append(it)

        bellman_ford_sssp(0, graph, checkpoint=first_only)
        d_res = bellman_ford_sssp(0, graph, resume=early)
        assert np.array_equal(d_full.to_dense(), d_res.to_dense())

    def test_components_resume_matches(self, graph, tmp_path):
        f_full = connected_components(graph)
        early = str(tmp_path / "cc.npz")
        taken = []

        def first_only(alg, it, state):
            if not taken:
                governor.Checkpoint(early).save(alg, it, state)
                taken.append(it)

        connected_components(graph, checkpoint=first_only)
        f_res = connected_components(graph, resume=early)
        assert np.array_equal(f_full.to_dense(), f_res.to_dense())

    def test_betweenness_resume_both_phases(self, graph, tmp_path):
        sources = np.arange(12)
        bc_full = betweenness_centrality(graph, sources)
        snaps = []

        def record(alg, it, state):
            path = str(tmp_path / f"bc_{len(snaps)}.npz")
            governor.Checkpoint(path).save(alg, it, state)
            snaps.append((state["phase"], path))

        betweenness_centrality(graph, sources, checkpoint=record)
        fwd = [p for ph, p in snaps if ph == "forward"]
        bwd = [p for ph, p in snaps if ph == "backward"]
        assert fwd and bwd
        bc_f = betweenness_centrality(graph, sources, resume=fwd[0])
        assert np.array_equal(bc_full.to_dense(), bc_f.to_dense())
        bc_b = betweenness_centrality(graph, sources, resume=bwd[0])
        assert np.array_equal(bc_full.to_dense(), bc_b.to_dense())

    def test_betweenness_resume_source_count_mismatch(self, graph, tmp_path):
        path = str(tmp_path / "bc.npz")
        betweenness_centrality(graph, np.arange(5), checkpoint=path)
        with pytest.raises(InvalidValue):
            betweenness_centrality(graph, np.arange(6), resume=path)

    def test_dnn_resume_skips_completed_layers(self, tmp_path):
        rng = np.random.default_rng(23)
        Y0 = Matrix.from_coo(rng.integers(0, 6, 25), rng.integers(0, 12, 25),
                             rng.random(25), nrows=6, ncols=12,
                             dtype="FP64", dup="PLUS")
        Ws = [
            Matrix.from_coo(rng.integers(0, 12, 30), rng.integers(0, 12, 30),
                            rng.random(30) - 0.3, nrows=12, ncols=12,
                            dtype="FP64", dup="PLUS")
            for _ in range(4)
        ]
        bs = [0.05, 0.0, -0.1, 0.02]
        Y_full = dnn_inference(Y0, Ws, bs)
        early = str(tmp_path / "dnn.npz")
        taken = []

        def first_only(alg, it, state):
            if not taken:
                governor.Checkpoint(early).save(alg, it, state)
                taken.append(it)

        dnn_inference(Y0, Ws, bs, checkpoint=first_only)
        assert taken == [1]
        Y_res = dnn_inference(Y0, Ws, bs, resume=early)
        assert np.array_equal(Y_full.to_dense(), Y_res.to_dense())

    def test_pagerank_resume_size_mismatch(self, graph, tmp_path):
        path = str(tmp_path / "pr.npz")
        pagerank(graph, checkpoint=path)
        rng = np.random.default_rng(2)
        smaller = Graph(Matrix.from_coo([0, 1], [1, 2], [1.0, 1.0],
                                        nrows=3, ncols=3, dtype="FP64"))
        with pytest.raises(InvalidValue):
            pagerank(smaller, resume=path)
