"""The PyGB DSL (Figure 2b) — BFS verbatim, contexts, operator sugar."""

import numpy as np
import pytest

from repro import pygb as gb
from repro.graphblas.errors import InvalidValue


def bfs_fig2b(graph, frontier, levels):
    """Figure 2(b), verbatim modulo the import line."""
    depth = 0
    while frontier.nvals > 0:
        depth += 1
        levels[frontier][:] = depth
        with gb.LogicalSemiring, gb.Replace:
            frontier[~levels] = graph.T @ frontier


@pytest.fixture
def diamond():
    # 0 -> {1, 2} -> 3
    return gb.Matrix.from_coo(
        [0, 0, 1, 2], [1, 2, 3, 3], [True] * 4, nrows=4, ncols=4, dtype=bool
    )


class TestFigure2b:
    def test_bfs_levels(self, diamond):
        frontier = gb.Vector.from_coo([0], [True], size=4, dtype=bool)
        levels = gb.Vector.new("INT64", 4)
        bfs_fig2b(diamond, frontier, levels)
        assert levels.to_dense(fill=-1).tolist() == [1, 2, 2, 3]

    def test_bfs_unreachable_stays_absent(self):
        graph = gb.Matrix.from_coo([0], [1], [True], nrows=3, ncols=3, dtype=bool)
        frontier = gb.Vector.from_coo([0], [True], size=3, dtype=bool)
        levels = gb.Vector.new("INT64", 3)
        bfs_fig2b(graph, frontier, levels)
        assert levels.nvals == 2

    def test_matches_lagraph_bfs(self):
        from repro.generators import rmat_graph
        from repro.lagraph import bfs_level

        g = rmat_graph(7, 8, seed=3)
        levels_core = bfs_level(0, g)
        graph = gb.Matrix(g.A)
        frontier = gb.Vector.from_coo([0], [True], size=g.n, dtype=bool)
        levels = gb.Vector.new("INT64", g.n)
        bfs_fig2b(graph, frontier, levels)
        # Figure 2 counts the source as depth 1; LAGraph as 0
        got = {
            i: v - 1
            for i, v in zip(*(a.tolist() for a in levels._obj.extract_tuples()))
        }
        exp = dict(zip(*(a.tolist() for a in levels_core.extract_tuples())))
        assert got == exp


class TestContexts:
    def test_ambient_default(self):
        assert gb.ambient_semiring().name == "PLUS_TIMES"

    def test_context_sets_and_restores(self):
        with gb.MinPlusSemiring:
            assert gb.ambient_semiring().name == "MIN_PLUS"
        assert gb.ambient_semiring().name == "PLUS_TIMES"

    def test_contexts_nest(self):
        with gb.MinPlusSemiring:
            with gb.LogicalSemiring:
                assert gb.ambient_semiring().name == "LOR_LAND"
            assert gb.ambient_semiring().name == "MIN_PLUS"

    def test_named_context_factory(self):
        with gb.semiring_context("MAX_PLUS"):
            assert gb.ambient_semiring().name == "MAX_PLUS"


class TestOperatorSugar:
    def test_matvec(self):
        A = gb.Matrix.from_coo([0, 1], [1, 0], [2.0, 3.0], nrows=2, ncols=2)
        u = gb.Vector.from_coo([0], [5.0], size=2)
        w = (A @ u).new()
        assert w.to_dense().tolist() == [0.0, 15.0]

    def test_transposed_matvec(self):
        A = gb.Matrix.from_coo([0], [1], [2.0], nrows=2, ncols=2)
        u = gb.Vector.from_coo([0], [3.0], size=2)
        w = (A.T @ u).new()
        assert w.to_dense().tolist() == [0.0, 6.0]

    def test_matmat(self):
        A = gb.Matrix.from_coo([0, 1], [1, 0], [2.0, 3.0], nrows=2, ncols=2)
        C = (A @ A).new()
        assert C.to_dense().tolist() == [[6.0, 0.0], [0.0, 6.0]]

    def test_matmat_with_transpose(self):
        A = gb.Matrix.from_coo([0], [1], [2.0], nrows=2, ncols=2)
        C = (A @ A.T).new()
        assert C.to_dense()[0][0] == 4.0

    def test_semiring_context_changes_product(self):
        A = gb.Matrix.from_coo([0, 0], [0, 1], [2.0, 3.0], nrows=2, ncols=2)
        B = gb.Matrix.from_coo([0, 1], [0, 0], [4.0, 5.0], nrows=2, ncols=2)
        plus_times = (A @ B).new().to_dense()[0][0]
        with gb.MinPlusSemiring:
            min_plus = (A @ B).new().to_dense()[0][0]
        assert plus_times == 2 * 4 + 3 * 5
        assert min_plus == min(2 + 4, 3 + 5)

    def test_ewise_add_and_mult(self):
        a = gb.Vector.from_coo([0, 1], [1.0, 2.0], size=3)
        b = gb.Vector.from_coo([1, 2], [10.0, 20.0], size=3)
        assert (a + b).to_dense().tolist() == [1.0, 12.0, 20.0]
        assert (a * b).to_dense().tolist() == [0.0, 20.0, 0.0]

    def test_reduce_and_apply(self):
        v = gb.Vector.from_coo([0, 1], [3.0, 4.0], size=2)
        assert v.reduce("PLUS") == 7.0
        assert v.apply("AINV").to_dense().tolist() == [-3.0, -4.0]

    def test_matrix_reduce(self):
        A = gb.Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], nrows=2, ncols=2)
        assert A.reduce("PLUS") == 3.0

    def test_element_access(self):
        A = gb.Matrix.new("FP64", 2, 2)
        A[0, 1] = 5.0
        assert A[0, 1] == 5.0
        v = gb.Vector.new("FP64", 2)
        v[1] = 3.0
        assert v[1] == 3.0


class TestMaskedAssignment:
    def test_masked_constant_assign(self):
        v = gb.Vector.from_coo([0, 1, 2], [1.0, 2.0, 3.0], size=3)
        m = gb.Vector.from_coo([0, 2], [True, True], size=3, dtype=bool)
        v[m][:] = 9.0
        assert v.to_dense().tolist() == [9.0, 2.0, 9.0]

    def test_complemented_mask_assign(self):
        v = gb.Vector.from_coo([0, 1, 2], [1.0, 2.0, 3.0], size=3)
        m = gb.Vector.from_coo([1], [True], size=3, dtype=bool)
        v[~m][:] = 0.0
        assert v.to_dense().tolist() == [0.0, 2.0, 0.0]

    def test_masked_expression_assign_with_replace(self):
        A = gb.Matrix.from_coo([0, 1], [1, 0], [True, True], nrows=2, ncols=2, dtype=bool)
        u = gb.Vector.from_coo([0], [True], size=2, dtype=bool)
        m = gb.Vector.from_coo([0], [1], size=2)
        with gb.LogicalSemiring, gb.Replace:
            u[~m] = A.T @ u
        assert u.to_dense().tolist() == [False, True]

    def test_bad_masked_constant_key(self):
        v = gb.Vector.new("FP64", 3)
        m = gb.Vector.from_coo([0], [True], size=3, dtype=bool)
        with pytest.raises(InvalidValue):
            v[m][0] = 1.0

    def test_full_assign(self):
        v = gb.Vector.new("FP64", 3)
        v[:] = 4.0
        assert v.to_dense().tolist() == [4.0, 4.0, 4.0]

    def test_vector_to_vector_masked_copy(self):
        v = gb.Vector.from_coo([0, 1], [1.0, 2.0], size=3)
        src = gb.Vector.from_coo([0, 2], [8.0, 9.0], size=3)
        m = gb.Vector.from_coo([0], [True], size=3, dtype=bool)
        v[m] = src
        assert v.to_dense().tolist() == [8.0, 2.0, 0.0]

    def test_dup_and_clear(self):
        v = gb.Vector.from_coo([0], [1.0], size=2)
        w = v.dup()
        w.clear()
        assert v.nvals == 1 and w.nvals == 0


class TestMatrixMaskedExpressions:
    def test_masked_matmul_assign(self):
        A = gb.Matrix.from_coo([0, 1], [1, 0], [2.0, 3.0], nrows=2, ncols=2)
        mask = gb.Matrix.from_coo([0], [0], [True], nrows=2, ncols=2)
        C = gb.Matrix.new("FP64", 2, 2)
        with gb.Replace:
            C[mask] = A @ A
        assert C.to_dense().tolist() == [[6.0, 0.0], [0.0, 0.0]]

    def test_complemented_matrix_mask(self):
        A = gb.Matrix.from_coo([0, 1], [1, 0], [2.0, 3.0], nrows=2, ncols=2)
        mask = gb.Matrix.from_coo([0], [0], [True], nrows=2, ncols=2)
        C = gb.Matrix.new("FP64", 2, 2)
        with gb.Replace:
            C[~mask] = A @ A
        assert C.to_dense().tolist() == [[0.0, 0.0], [0.0, 6.0]]

    def test_structural_context(self):
        v = gb.Vector.from_coo([0, 1], [1.0, 2.0], size=3)
        # mask with a false value: structural context admits it anyway
        m = gb.Vector.from_coo([1], [False], size=3, dtype=bool)
        with gb.Structural:
            v[m][:] = 9.0
        assert v.to_dense().tolist() == [1.0, 9.0, 0.0]

    def test_matrix_masked_copy(self):
        A = gb.Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], nrows=2, ncols=2)
        src = gb.Matrix.from_coo([0, 1], [1, 0], [8.0, 9.0], nrows=2, ncols=2)
        m = gb.Matrix.from_coo([0], [1], [True], nrows=2, ncols=2)
        A[m] = src
        assert A.to_dense().tolist() == [[1.0, 8.0], [0.0, 2.0]]

    def test_transposed_matmat_chain(self):
        A = gb.Matrix.from_coo([0], [1], [3.0], nrows=2, ncols=2)
        C = (A.T @ A).new()
        assert C.to_dense().tolist() == [[0.0, 0.0], [0.0, 9.0]]
