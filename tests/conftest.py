"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=[0, 1, 2])
def seeded_rng(request):
    return np.random.default_rng(1000 + request.param)
