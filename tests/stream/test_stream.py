"""GraphStream windowing, governor-chunked assembly, and stream metrics."""

import numpy as np
import pytest

from repro import obs
from repro.graphblas import Matrix, governor
from repro.graphblas.errors import InvalidValue
from repro.lagraph import Graph, GraphKind
from repro.stream import GraphStream


def _edges(n, m, seed=0, t_hi=10.0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    ts = np.sort(rng.uniform(0, t_hi, m))
    return src, dst, ts


class TestWindowing:
    def test_tumbling_boundaries(self):
        st = GraphStream(10, kind=GraphKind.DIRECTED, window="tumbling", width=1.0)
        # 0.5 stays open; 1.5 closes window [0,1); 1.7 stays open
        wins = st.ingest([1, 2, 3], [4, 5, 6], [0.5, 1.5, 1.7])
        assert len(wins) == 1
        assert (wins[0].t_start, wins[0].t_end) == (0.0, 1.0)
        assert wins[0].n_events == 1
        last = st.flush()
        assert last.n_events == 2
        assert st.graph.A.nvals == 3

    def test_one_batch_can_close_several_windows(self):
        st = GraphStream(10, window="tumbling", width=1.0,
                         kind=GraphKind.DIRECTED)
        wins = st.ingest([0, 1, 2], [1, 2, 3], [0.2, 1.2, 2.2])
        assert [w.index for w in wins] == [0, 1]
        assert [w.n_events for w in wins] == [1, 1]

    def test_empty_spans_fast_forward_without_empty_windows(self):
        st = GraphStream(10, window="tumbling", width=1.0,
                         kind=GraphKind.DIRECTED)
        wins = st.ingest([0, 1], [1, 2], [0.5, 7.5])
        assert len(wins) == 1  # windows 1..6 never materialize
        assert wins[0].n_events == 1
        last = st.flush()
        assert (last.t_start, last.t_end) == (7.0, 8.0)

    def test_out_of_order_timestamps_rejected(self):
        st = GraphStream(10, kind=GraphKind.DIRECTED)
        st.ingest([0], [1], [5.0])
        with pytest.raises(InvalidValue):
            st.ingest([1], [2], [4.0])
        with pytest.raises(InvalidValue):
            st.ingest([1, 2], [2, 3], [6.0, 5.5])

    def test_bad_constructor_args(self):
        with pytest.raises(InvalidValue):
            GraphStream(10, window="hopping")
        with pytest.raises(InvalidValue):
            GraphStream(10, width=0.0)

    def test_undirected_mirrors_edges(self):
        st = GraphStream(10, kind=GraphKind.UNDIRECTED, window="tumbling")
        st.ingest([0, 3], [1, 3], [0.1, 0.2])  # one edge + one self-loop
        st.flush()
        rows, cols, _ = st.graph.A.extract_tuples()
        got = set(zip(rows.tolist(), cols.tolist()))
        assert got == {(0, 1), (1, 0), (3, 3)}

    def test_weights_and_last_wins(self):
        st = GraphStream(10, kind=GraphKind.DIRECTED, window="tumbling")
        st.ingest([0, 0], [1, 1], [0.1, 0.2], weights=[2.0, 5.0])
        st.flush()
        assert st.graph.A.extract_element(0, 1) == 5.0

    def test_sliding_expires_old_edges(self):
        st = GraphStream(10, kind=GraphKind.DIRECTED, window="sliding",
                         width=1.0)
        st.ingest([0], [1], [0.5])
        st.ingest([2], [3], [1.5])   # closes [0,1): inserts (0,1)
        st.ingest([4], [5], [2.5])   # closes [1,2): inserts (2,3), expires (0,1)
        rows, cols, _ = st.graph.A.extract_tuples()
        assert set(zip(rows.tolist(), cols.tolist())) == {(2, 3)}

    def test_sliding_matches_batch_rebuild(self):
        """After every window, the sliding graph equals a from-scratch
        build of exactly the in-horizon edges."""
        n, m = 30, 400
        src, dst, ts = _edges(n, m, seed=3, t_hi=8.0)
        st = GraphStream(n, kind=GraphKind.UNDIRECTED, window="sliding",
                         width=2.0)
        done = []
        for lo in range(0, m, 97):
            done.extend(st.ingest(src[lo:lo + 97], dst[lo:lo + 97],
                                  ts[lo:lo + 97]))
        for win in done:
            pass  # windows already assembled; verify only the final state
        last = st.flush()
        horizon = last.t_end - st.width
        live = ts >= horizon
        expect = Graph.from_edges(
            src[live], dst[live], np.ones(int(live.sum())), n=n,
            kind=GraphKind.UNDIRECTED,
        )
        # weights collide last-wins vs from_edges dup rules; compare structure
        er, ec, _ = expect.A.extract_tuples()
        gr, gc, _ = st.graph.A.extract_tuples()
        assert set(zip(gr.tolist(), gc.tolist())) == set(
            zip(er.tolist(), ec.tolist())
        )

    def test_windows_emit_delta_chains(self):
        n, m = 20, 200
        src, dst, ts = _edges(n, m, seed=1, t_hi=5.0)
        st = GraphStream(n, kind=GraphKind.UNDIRECTED, window="tumbling")
        wins = list(st.ingest(src, dst, ts))
        w = st.flush()
        if w is not None:
            wins.append(w)
        for win in wins:
            assert win.deltas is not None
            assert win.epoch_to > win.epoch_from
            total_ins = sum(d.ins_rows.size for d in win.deltas)
            assert total_ins > 0


class TestGovernorChunking:
    def test_over_budget_window_is_chunked_not_rejected(self):
        n, m = 50, 5000
        src, dst, ts = _edges(n, m, seed=2, t_hi=1.0)  # all one window
        st = GraphStream(n, kind=GraphKind.DIRECTED, window="tumbling")
        with governor.ExecutionContext(memory_budget=1 << 20):
            st.ingest(src, dst, ts)
            win = st.flush()
        assert win.chunks > 1
        assert win.n_events == m
        # chunking must not change the result
        oracle = Matrix("FP64", n, n)
        oracle.update_batch(src, dst, np.ones(m))
        oracle.wait()
        assert st.graph.A.isequal(oracle)

    def test_unbudgeted_window_is_one_chunk(self):
        n, m = 50, 5000
        src, dst, ts = _edges(n, m, seed=2, t_hi=1.0)
        st = GraphStream(n, kind=GraphKind.DIRECTED, window="tumbling")
        st.ingest(src, dst, ts)
        win = st.flush()
        assert win.chunks == 1


def _series_total(snap: dict, kind: str, name: str) -> float:
    return sum(s["value"] for s in snap[kind].get(name, []))


class TestStreamMetrics:
    def test_obs_counters_and_gauges(self):
        obs.enable()
        try:
            before = _series_total(obs.snapshot(), "counters",
                                   "stream_edges_total")
            st = GraphStream(10, kind=GraphKind.DIRECTED, window="tumbling")
            st.ingest([0, 1, 2], [1, 2, 3], [0.1, 0.2, 0.3])
            st.flush()
            snap = obs.snapshot()
            total = _series_total(snap, "counters", "stream_edges_total")
            assert total - before == 3
            assert "stream_window_assembly_seconds" in snap["histograms"]
            assert "stream_edges_per_second" in snap["gauges"]
        finally:
            obs.disable()

    def test_pending_zombie_gauges_track_log_depth(self):
        obs.enable()
        try:
            A = Matrix("FP64", 10, 10)
            A.set_element(0, 1, 1.0)
            A.set_element(1, 2, 2.0)
            A.remove_element(3, 3)
            snap = obs.snapshot()
            assert _series_total(snap, "gauges", "graphblas_pending_tuples") == 2
            assert _series_total(snap, "gauges", "graphblas_zombies") == 1
            A.wait()
            snap = obs.snapshot()
            assert _series_total(snap, "gauges", "graphblas_pending_tuples") == 0
            assert _series_total(snap, "gauges", "graphblas_zombies") == 0
        finally:
            obs.disable()

    def test_explain_correlates_plans_with_windows(self):
        from repro.graphblas import operations as ops
        from repro.graphblas import telemetry

        def run():
            A = Matrix("FP64", 10, 10)
            A.set_element(0, 1, 1.0)
            A.wait()
            C = Matrix("FP64", 10, 10)
            with telemetry.span("stream.window", index=4, t_end=1.0):
                ops.mxm(C, A, A, "PLUS_TIMES")
            ops.mxm(C, A, A, "PLUS_TIMES")

        report = obs.explain(run)
        windows = [r.get("window") for r in report.records if r.get("op") == "mxm"]
        assert windows == [4, None]
        assert "win" in report.text()
