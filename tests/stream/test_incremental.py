"""Parity of the incremental maintainers against their from-scratch
counterparts on every window of a stream (tumbling = insert-only,
sliding = insertions + deletions)."""

import numpy as np
import pytest

from repro.lagraph import (
    Graph,
    GraphKind,
    connected_components,
    pagerank,
    triangle_count,
)
from repro.stream import (
    DynamicPageRank,
    GraphStream,
    IncrementalComponents,
    IncrementalTriangles,
)

PR_TOL = 1e-10
PR_GAP = 1e-6  # >> 2 * tol / (1 - damping)


def _stream(window, seed=7, n=120, m=1500, t_hi=8.0, width=1.0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    ts = np.sort(rng.uniform(0, t_hi, m))
    st = GraphStream(n, kind=GraphKind.UNDIRECTED, window=window, width=width)
    return st, src, dst, ts, m


def _drive(st, src, dst, ts, m, on_window, batch=250):
    for lo in range(0, m, batch):
        for win in st.ingest(src[lo:lo + batch], dst[lo:lo + batch],
                             ts[lo:lo + batch]):
            on_window(win)
    win = st.flush()
    if win is not None:
        on_window(win)


def _oracle(graph):
    return Graph(graph.A.dup(), graph.kind)


@pytest.mark.parametrize("window", ["tumbling", "sliding"])
def test_all_maintainers_parity_every_window(window):
    st, src, dst, ts, m = _stream(window)
    pr = DynamicPageRank(st.graph, tol=PR_TOL)
    cc = IncrementalComponents(st.graph)
    tri = IncrementalTriangles(st.graph)
    checked = []

    def on_window(win):
        ranks, _ = pr.update()
        labels = cc.update()
        count = tri.update()
        g = _oracle(st.graph)
        full, _ = pagerank(g, tol=PR_TOL)
        gap = float(np.abs(full.to_dense(0.0) - ranks).sum())
        assert gap < PR_GAP, (win.index, gap)
        assert np.array_equal(labels, connected_components(g).to_dense())
        assert count == triangle_count(g)
        checked.append(win.index)

    _drive(st, src, dst, ts, m, on_window)
    assert len(checked) >= 5


def test_tumbling_stream_never_recomputes():
    st, src, dst, ts, m = _stream("tumbling")
    pr = DynamicPageRank(st.graph, tol=PR_TOL)
    cc = IncrementalComponents(st.graph)
    tri = IncrementalTriangles(st.graph)
    _drive(st, src, dst, ts, m,
           lambda w: (pr.update(), cc.update(), tri.update()))
    assert pr.recomputes == 0
    assert cc.recomputes == 0
    assert tri.recomputes == 0
    assert pr.windows == cc.windows == tri.windows > 0


def test_sliding_deletions_force_component_recompute():
    st, src, dst, ts, m = _stream("sliding", width=2.0)
    cc = IncrementalComponents(st.graph)
    _drive(st, src, dst, ts, m, lambda w: cc.update())
    assert cc.recomputes > 0  # expiry windows carry physical deletions
    assert np.array_equal(
        cc.labels, connected_components(_oracle(st.graph)).to_dense()
    )


def test_bulk_mutation_breaks_chain_and_recomputes():
    st, src, dst, ts, m = _stream("tumbling", m=400, t_hi=2.0)
    cc = IncrementalComponents(st.graph)
    tri = IncrementalTriangles(st.graph)
    pr = DynamicPageRank(st.graph, tol=PR_TOL)
    _drive(st, src, dst, ts, m,
           lambda w: (pr.update(), cc.update(), tri.update()))
    # out-of-band bulk edit: clear+rebuild breaks the chain; keep the
    # adjacency symmetric (UNDIRECTED contract) by dropping whole
    # canonical pairs rather than individual directed entries
    A = st.graph.A
    rows, cols, vals = A.extract_tuples()
    keep = (np.minimum(rows, cols) + np.maximum(rows, cols)) % 3 != 0
    A.clear()
    A.build(rows[keep], cols[keep], vals[keep], dup="SECOND")
    A.wait()
    before = (pr.recomputes, cc.recomputes, tri.recomputes)
    ranks, _ = pr.update()
    labels = cc.update()
    count = tri.update()
    assert (pr.recomputes, cc.recomputes, tri.recomputes) == tuple(
        b + 1 for b in before
    )
    g = _oracle(st.graph)
    full, _ = pagerank(g, tol=PR_TOL)
    assert float(np.abs(full.to_dense(0.0) - ranks).sum()) < PR_GAP
    assert np.array_equal(labels, connected_components(g).to_dense())
    assert count == triangle_count(g)


def test_pagerank_parity_gap_helper():
    st, src, dst, ts, m = _stream("tumbling", m=300, t_hi=2.0)
    pr = DynamicPageRank(st.graph, tol=PR_TOL)
    _drive(st, src, dst, ts, m, lambda w: pr.update())
    assert pr.parity_gap() < PR_GAP


def test_pagerank_handles_danglings_and_isolates():
    # a tiny directed-style corner exercised through UNDIRECTED mirroring:
    # isolated vertices stay at teleport mass, parity holds
    st = GraphStream(6, kind=GraphKind.UNDIRECTED, window="tumbling",
                     width=1.0)
    pr = DynamicPageRank(st.graph, tol=PR_TOL)
    st.ingest([0, 1], [1, 2], [0.1, 0.2])
    win = st.flush()
    assert win is not None
    ranks, _ = pr.update()
    full, _ = pagerank(_oracle(st.graph), tol=PR_TOL)
    assert float(np.abs(full.to_dense(0.0) - ranks).sum()) < PR_GAP


def test_maintainers_survive_multi_window_chains():
    """Updating only every third window consumes multi-window chains."""
    st, src, dst, ts, m = _stream("sliding", width=1.5)
    pr = DynamicPageRank(st.graph, tol=PR_TOL)
    tri = IncrementalTriangles(st.graph)
    seen = []

    def on_window(win):
        seen.append(win)
        if len(seen) % 3 == 0:
            ranks, _ = pr.update()
            count = tri.update()
            g = _oracle(st.graph)
            full, _ = pagerank(g, tol=PR_TOL)
            assert float(np.abs(full.to_dense(0.0) - ranks).sum()) < PR_GAP
            assert count == triangle_count(g)

    _drive(st, src, dst, ts, m, on_window)
    assert pr.windows >= 2
