"""Triangles, k-truss, connected components, subgraph census vs oracles."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.graphblas.errors import InvalidValue
from repro.generators import complete_graph, cycle_graph, path_graph
from repro.lagraph import (
    Graph,
    all_ktruss,
    cc_label_propagation,
    check_component_labels,
    component_sizes,
    connected_components,
    ktruss,
    subgraph_census,
    triangle_count,
    triangle_counts_per_vertex,
    trussness,
)


def und_pair(n=40, p=0.12, seed=1):
    G_nx = nx.gnp_random_graph(n, p, seed=seed)
    e = list(G_nx.edges)
    g = Graph.from_edges(
        [u for u, v in e], [v for u, v in e], n=n, kind="undirected"
    )
    return G_nx, g


class TestTriangles:
    @pytest.mark.parametrize("method", ["burkhardt", "cohen", "sandia_ll"])
    @pytest.mark.parametrize("seed", [1, 2, 9])
    def test_counts_match_networkx(self, method, seed):
        G_nx, g = und_pair(seed=seed)
        exp = sum(nx.triangles(G_nx).values()) // 3
        assert triangle_count(g, method) == exp

    def test_unknown_method(self):
        _, g = und_pair()
        with pytest.raises(InvalidValue):
            triangle_count(g, "quantum")

    def test_per_vertex(self):
        G_nx, g = und_pair(seed=4)
        exp = nx.triangles(G_nx)
        got = triangle_counts_per_vertex(g)
        assert all(got[i] == exp[i] for i in range(40))

    def test_complete_graph_formula(self):
        g = complete_graph(7)
        assert triangle_count(g) == 7 * 6 * 5 // 6

    def test_triangle_free(self):
        g = cycle_graph(8)
        assert triangle_count(g) == 0

    def test_self_loops_ignored(self):
        g = Graph.from_edges([0, 1, 2, 0], [1, 2, 0, 0], n=3, kind="undirected")
        assert triangle_count(g) == 1


class TestKTruss:
    @pytest.mark.parametrize("seed", [1, 4])
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_edge_counts_match_networkx(self, seed, k):
        G_nx = nx.gnp_random_graph(30, 0.25, seed=seed)
        e = list(G_nx.edges)
        g = Graph.from_edges([u for u, v in e], [v for u, v in e], n=30, kind="undirected")
        C = ktruss(g, k)
        assert C.nvals // 2 == nx.k_truss(G_nx, k).number_of_edges()

    def test_k_below_three_rejected(self):
        _, g = und_pair()
        with pytest.raises(InvalidValue):
            ktruss(g, 2)

    def test_clique_survives_its_truss(self):
        g = complete_graph(6)  # K6 is a 6-truss
        assert ktruss(g, 6).nvals // 2 == 15
        assert ktruss(g, 7).nvals == 0

    def test_support_values_are_correct(self):
        g = complete_graph(5)
        C = ktruss(g, 3)
        _, _, vals = C.extract_tuples()
        assert set(vals.tolist()) == {3}  # every K5 edge is in 3 triangles

    def test_all_ktruss_monotone(self):
        _, g = und_pair(p=0.3, seed=5)
        rows = all_ktruss(g)
        edges = [r[1] for r in rows]
        assert edges == sorted(edges, reverse=True)
        assert rows[0][0] == 3

    def test_trussness_consistent_with_ktruss(self):
        _, g = und_pair(p=0.3, seed=5)
        t = trussness(g)
        for k in (3, 4):
            from_t = {e for e, kk in t.items() if kk >= k}
            C = ktruss(g, k)
            r, c, _ = C.extract_tuples()
            direct = {(int(i), int(j)) for i, j in zip(r, c) if i < j}
            assert from_t == direct


class TestComponents:
    @pytest.mark.parametrize("seed,p", [(8, 0.03), (2, 0.08), (5, 0.01)])
    def test_fastsv_matches_networkx(self, seed, p):
        G_nx, g = und_pair(n=60, p=p, seed=seed)
        cc = connected_components(g)
        check_component_labels(g, cc)
        comps = list(nx.connected_components(G_nx))
        labels = cc.to_dense()
        assert len(set(labels.tolist())) == len(comps)
        for comp in comps:
            assert len({labels[v] for v in comp}) == 1

    def test_label_propagation_agrees_with_fastsv(self):
        _, g = und_pair(n=50, p=0.04, seed=7)
        assert connected_components(g).isequal(cc_label_propagation(g))

    def test_directed_graph_weak_components(self):
        g = Graph.from_edges([0, 2], [1, 3], n=5)  # directed edges
        labels = connected_components(g).to_dense()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2] != labels[4]

    def test_component_sizes(self):
        g = Graph.from_edges([0, 2], [1, 3], n=5, kind="undirected")
        sizes = component_sizes(connected_components(g))
        assert sorted(sizes.values()) == [1, 2, 2]

    def test_singleton_graph(self):
        g = Graph.from_edges([], [], n=4, kind="undirected")
        labels = connected_components(g).to_dense()
        assert labels.tolist() == [0, 1, 2, 3]

    def test_path_is_one_component(self):
        g = path_graph(30)
        assert component_sizes(connected_components(g)) == {0: 30}


def brute_noninduced(G_nx):
    n = G_nx.number_of_nodes()
    A = nx.to_numpy_array(G_nx) > 0
    tri = wedge = p4 = c4 = tailed = claw = 0
    for a, b, c in itertools.permutations(range(n), 3):
        if A[a, b] and A[b, c]:
            wedge += 1
        if A[a, b] and A[b, c] and A[a, c]:
            tri += 1
    wedge //= 2
    tri //= 6
    for a, b, c, d in itertools.permutations(range(n), 4):
        if A[a, b] and A[b, c] and A[c, d]:
            p4 += 1
        if A[a, b] and A[b, c] and A[c, d] and A[d, a]:
            c4 += 1
        if A[a, b] and A[b, c] and A[a, c] and A[c, d]:
            tailed += 1
        if A[a, b] and A[a, c] and A[a, d]:
            claw += 1
    return {
        "triangles": tri,
        "wedges": wedge,
        "three_paths": p4 // 2,
        "four_cycles": c4 // 8,
        "tailed_triangles": tailed // 2,
        "claws": claw // 6,
    }


class TestSubgraphCensus:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_matches_brute_force(self, seed):
        G_nx = nx.gnp_random_graph(10, 0.35, seed=seed)
        e = list(G_nx.edges)
        g = Graph.from_edges([u for u, v in e], [v for u, v in e], n=10, kind="undirected")
        got = subgraph_census(g)
        for k, v in brute_noninduced(G_nx).items():
            assert got[k] == v, k

    def test_known_closed_forms(self):
        # C6: 6 edges, 6 wedges, no triangles, one 6-cycle but no 4-cycle
        g = cycle_graph(6)
        c = subgraph_census(g)
        assert c["edges"] == 6 and c["wedges"] == 6
        assert c["triangles"] == 0 and c["four_cycles"] == 0
        assert c["three_paths"] == 6

    def test_k4(self):
        c = subgraph_census(complete_graph(4))
        assert c["triangles"] == 4
        assert c["four_cycles"] == 3
        assert c["three_paths"] == 12
        assert c["claws"] == 4


class TestKTrussIncremental:
    """The Low et al. edge-centric variant must match the Davis formulation."""

    @pytest.mark.parametrize("seed", [1, 4, 9])
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_recompute_variant(self, seed, k):
        from repro.lagraph.ktruss import ktruss_incremental

        G_nx = nx.gnp_random_graph(35, 0.2, seed=seed)
        e = list(G_nx.edges)
        g = Graph.from_edges(
            [u for u, v in e], [v for u, v in e], n=35, kind="undirected"
        )
        a = ktruss(g, k)
        b = ktruss_incremental(g, k)
        ra, ca, _ = a.extract_tuples()
        rb, cb, _ = b.extract_tuples()
        assert np.array_equal(ra, rb) and np.array_equal(ca, cb)

    def test_zero_support_edges_deleted(self):
        from repro.lagraph.ktruss import ktruss_incremental

        # a triangle plus a dangling path: the path edges have support 0
        g = Graph.from_edges(
            [0, 1, 2, 2, 3], [1, 2, 0, 3, 4], n=5, kind="undirected"
        )
        C = ktruss_incremental(g, 3)
        assert C.nvals == 6  # only the triangle survives

    def test_k_below_three_rejected(self):
        from repro.lagraph.ktruss import ktruss_incremental

        with pytest.raises(InvalidValue):
            ktruss_incremental(complete_graph(4), 2)


class TestTriangleEnumeration:
    """The paper asks for counting AND enumeration [34][35]."""

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_matches_brute_force(self, seed):
        from repro.lagraph.triangles import triangle_enumerate

        G_nx = nx.gnp_random_graph(22, 0.2, seed=seed)
        e = list(G_nx.edges)
        g = Graph.from_edges(
            [u for u, v in e], [v for u, v in e], n=22, kind="undirected"
        )
        A = nx.to_numpy_array(G_nx) > 0
        exp = {
            (a, b, c)
            for a, b, c in itertools.combinations(range(22), 3)
            if A[a, b] and A[b, c] and A[a, c]
        }
        got = set(map(tuple, triangle_enumerate(g).tolist()))
        assert got == exp
        assert len(got) == triangle_count(g)

    def test_rows_are_sorted_triples(self):
        from repro.lagraph.triangles import triangle_enumerate

        tris = triangle_enumerate(complete_graph(5))
        assert tris.shape == (10, 3)
        assert all(a < b < c for a, b, c in tris.tolist())

    def test_triangle_free_graph(self):
        from repro.lagraph.triangles import triangle_enumerate

        assert triangle_enumerate(cycle_graph(8)).shape == (0, 3)
