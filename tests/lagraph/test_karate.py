"""End-to-end sanity on a real classic graph: Zachary's karate club.

The bundled ``data/karate.mtx`` exercises the Matrix Market symmetric
reader and pins well-known ground-truth values for the whole algorithm
stack — the repository's "known answers on real data" regression net.
"""

import os

import networkx as nx
import numpy as np
import pytest

from repro import lagraph as lg
from repro.io import mmread

DATA = os.path.join(os.path.dirname(__file__), "..", "..", "data", "karate.mtx")


@pytest.fixture(scope="module")
def karate():
    A = mmread(DATA)
    return lg.Graph(A, "undirected")


@pytest.fixture(scope="module")
def karate_nx():
    return nx.karate_club_graph()


class TestKarateClub:
    def test_shape(self, karate):
        assert karate.n == 34
        assert karate.nedges == 78

    def test_known_triangle_count(self, karate):
        assert lg.triangle_count(karate) == 45  # classic known value

    def test_degrees_match(self, karate, karate_nx):
        deg = karate.out_degree.to_dense()
        assert deg[0] == 16 and deg[33] == 17  # instructor & president
        for v in range(34):
            assert deg[v] == karate_nx.degree[v]

    def test_connected_single_component(self, karate):
        sizes = lg.component_sizes(lg.connected_components(karate))
        assert sizes == {0: 34}

    def test_pagerank_leaders(self, karate, karate_nx):
        rank, _ = lg.pagerank(karate, tol=1e-12)
        exp = nx.pagerank(karate_nx, tol=1e-12, weight=None)
        got = rank.to_dense()
        assert all(abs(got[v] - exp[v]) < 1e-8 for v in range(34))
        # vertices 33 and 0 (president, instructor) rank 1-2
        assert set(np.argsort(-got)[:2]) == {0, 33}

    def test_betweenness_exact(self, karate, karate_nx):
        bc = lg.betweenness_centrality(karate).to_dense()
        exp = nx.betweenness_centrality(karate_nx, normalized=False)
        assert all(abs(bc[v] - exp[v]) < 1e-8 for v in range(34))

    def test_bfs_eccentricity_from_instructor(self, karate):
        lv = lg.bfs_level(0, karate)
        _, vals = lv.extract_tuples()
        assert vals.max() == 3  # known eccentricity of vertex 0

    def test_diameter(self, karate):
        assert lg.estimate_diameter(karate, samples=34) == 5

    def test_core_numbers(self, karate, karate_nx):
        got = lg.kcore_decomposition(karate).to_dense()
        exp = nx.core_number(karate_nx)
        assert all(got[v] == exp[v] for v in range(34))

    def test_local_clustering_finds_faction(self, karate):
        # seeding at the president finds a low-conductance community
        members, cond = lg.local_clustering(33, karate)
        assert 33 in members and cond < 0.5

    def test_coloring_and_mis(self, karate):
        colors = lg.greedy_color(karate, seed=0)
        assert lg.is_valid_coloring(karate, colors)
        iset = lg.maximal_independent_set(karate, seed=0)
        assert lg.is_maximal_independent_set(karate, iset)

    def test_maximum_independent_set(self, karate, karate_nx):
        # alpha(karate) = 20 (known)
        assert lg.max_independent_set_size(karate) == 20

    def test_assortativity(self, karate, karate_nx):
        assert np.isclose(
            lg.degree_assortativity(karate),
            nx.degree_assortativity_coefficient(karate_nx),
            atol=1e-9,
        )

    def test_transitivity(self, karate, karate_nx):
        assert np.isclose(lg.global_clustering(karate), nx.transitivity(karate_nx))

    def test_mcl_separates_factions_roughly(self, karate, karate_nx):
        labels = lg.markov_clustering(karate, inflation=1.8).to_dense()
        clubs = np.array(
            [0 if karate_nx.nodes[v]["club"] == "Mr. Hi" else 1 for v in range(34)]
        )
        # most pairs in the same club should share a cluster label
        same_club = clubs[:, None] == clubs[None, :]
        same_lab = labels[:, None] == labels[None, :]
        agreement = (same_club == same_lab).mean()
        assert agreement > 0.6
