"""Shortest paths: Bellman-Ford, delta-stepping, APSP, A* vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graphblas.errors import InvalidValue
from repro.generators import grid_graph, path_graph
from repro.lagraph import (
    Graph,
    apsp,
    apsp_distances_dense,
    astar_distance,
    astar_path,
    bellman_ford_sssp,
    check_sssp_distances,
    delta_stepping_sssp,
    sssp,
)


def weighted_pair(n=40, p=0.1, seed=3, directed=True):
    rng = np.random.default_rng(seed)
    G_nx = nx.gnp_random_graph(n, p, seed=seed, directed=directed)
    for u, v in G_nx.edges:
        G_nx[u][v]["weight"] = float(rng.integers(1, 10))
    e = list(G_nx.edges)
    g = Graph.from_edges(
        [u for u, v in e],
        [v for u, v in e],
        [G_nx[u][v]["weight"] for u, v in e],
        n=n,
        kind="directed" if directed else "undirected",
        dtype=np.float64,
    )
    return G_nx, g


def dist_dict(v):
    i, x = v.extract_tuples()
    return {int(a): float(b) for a, b in zip(i, x)}


class TestBellmanFord:
    @pytest.mark.parametrize("seed", [3, 5, 8])
    def test_matches_dijkstra(self, seed):
        G_nx, g = weighted_pair(seed=seed)
        d = bellman_ford_sssp(0, g)
        assert dist_dict(d) == dict(
            nx.single_source_dijkstra_path_length(G_nx, 0, weight="weight")
        )

    def test_handles_negative_edges(self):
        g = Graph.from_edges([0, 0, 1], [1, 2, 2], [5.0, 10.0, -3.0], n=3)
        d = bellman_ford_sssp(0, g)
        assert dist_dict(d) == {0: 0.0, 1: 5.0, 2: 2.0}

    def test_negative_cycle_detected(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 0], [1.0, -5.0, 1.0], n=3)
        with pytest.raises(InvalidValue):
            bellman_ford_sssp(0, g)

    def test_unreachable_absent(self):
        g = Graph.from_edges([0], [1], [1.0], n=4)
        d = bellman_ford_sssp(0, g)
        assert d.get(3) is None and d.nvals == 2

    def test_validator(self):
        G_nx, g = weighted_pair(seed=11)
        check_sssp_distances(g, 0, bellman_ford_sssp(0, g))


class TestDeltaStepping:
    @pytest.mark.parametrize("seed", [3, 5])
    @pytest.mark.parametrize("delta", [None, 1.0, 3.0, 100.0])
    def test_matches_bellman_ford(self, seed, delta):
        G_nx, g = weighted_pair(seed=seed)
        bf = bellman_ford_sssp(0, g)
        ds = delta_stepping_sssp(0, g, delta)
        assert dist_dict(ds) == dist_dict(bf)

    def test_negative_weight_rejected(self):
        g = Graph.from_edges([0], [1], [-1.0], n=2)
        with pytest.raises(InvalidValue):
            delta_stepping_sssp(0, g)

    def test_bad_delta(self):
        g = path_graph(3)
        with pytest.raises(InvalidValue):
            delta_stepping_sssp(0, g, delta=-2.0)

    def test_unweighted_grid(self):
        g = grid_graph(5, 5)
        d = delta_stepping_sssp(0, g)
        for r in range(5):
            for c in range(5):
                assert d[r * 5 + c] == r + c

    def test_dispatcher(self):
        G_nx, g = weighted_pair(seed=7)
        assert dist_dict(sssp(0, g, method="delta")) == dist_dict(
            sssp(0, g, method="bellman-ford")
        )
        with pytest.raises(InvalidValue):
            sssp(0, g, method="teleport")


class TestAPSP:
    def test_matches_all_dijkstra(self):
        G_nx, g = weighted_pair(n=25, seed=4)
        D = apsp_distances_dense(g)
        for s in range(25):
            exp = nx.single_source_dijkstra_path_length(G_nx, s, weight="weight")
            for t in range(25):
                assert D[s, t] == exp.get(t, np.inf), (s, t)

    def test_diagonal_is_zero(self):
        G_nx, g = weighted_pair(n=15, seed=6)
        D = apsp(g)
        for i in range(15):
            assert D[i, i] == 0.0

    def test_negative_weight_rejected(self):
        g = Graph.from_edges([0], [1], [-1.0], n=2)
        with pytest.raises(InvalidValue):
            apsp(g)

    def test_apsp_first_row_matches_sssp(self):
        G_nx, g = weighted_pair(n=30, seed=9)
        D = apsp_distances_dense(g)
        d = dist_dict(bellman_ford_sssp(0, g))
        for t in range(30):
            assert D[0, t] == d.get(t, np.inf)


class TestAStar:
    def test_dijkstra_equivalence_without_heuristic(self):
        G_nx, g = weighted_pair(seed=3)
        for t in (5, 11, 23):
            try:
                exp = nx.dijkstra_path_length(G_nx, 0, t, weight="weight")
            except nx.NetworkXNoPath:
                with pytest.raises(InvalidValue):
                    astar_path(0, t, g)
                continue
            path, dist = astar_path(0, t, g)
            assert dist == exp
            assert path[0] == 0 and path[-1] == t
            # the returned path's edges must exist and sum to the distance
            total = sum(g.A[u, v] for u, v in zip(path, path[1:]))
            assert np.isclose(total, dist)

    def test_admissible_heuristic_preserves_optimality(self):
        g = grid_graph(6, 6)
        target = 35

        def manhattan(v):
            r, c = divmod(v, 6)
            return abs(r - 5) + abs(c - 5)

        path, dist = astar_path(0, target, g, heuristic=manhattan)
        assert dist == 10
        assert astar_distance(0, target, g, manhattan) == 10

    def test_heuristic_prunes_expansions(self):
        """A good heuristic avoids exploring a long decoy branch that
        Dijkstra (h = 0) must exhaust."""
        import repro.lagraph.astar as astar_mod

        # line 0-1-...-10 (target 10) plus a 20-vertex decoy branch off 0
        chain = [(i, i + 1) for i in range(10)]
        branch = [(0, 11)] + [(10 + k, 11 + k) for k in range(1, 20)]
        edges = chain + branch
        src = [u for u, v in edges] + [v for u, v in edges]
        dst = [v for u, v in edges] + [u for u, v in edges]
        g = Graph.from_edges(src, dst, np.ones(len(src)), n=31, dtype=np.float64)

        def h(v):  # embed on a line: chain at x=v, branch at x=-(v-10)
            x = v if v <= 10 else -(v - 10)
            return abs(10 - x)

        calls = {"n": 0}
        orig = astar_mod._expand

        def counting(graph, u):
            calls["n"] += 1
            return orig(graph, u)

        astar_mod._expand = counting
        try:
            path, dist = astar_mod.astar_path(0, 10, g)
            dijkstra_count = calls["n"]
            calls["n"] = 0
            path2, dist2 = astar_mod.astar_path(0, 10, g, heuristic=h)
            astar_count = calls["n"]
        finally:
            astar_mod._expand = orig
        assert dist == dist2 == 10
        assert astar_count < dijkstra_count

    def test_bad_vertices(self):
        g = path_graph(3)
        with pytest.raises(InvalidValue):
            astar_path(0, 99, g)

    def test_negative_weight_rejected(self):
        g = Graph.from_edges([0], [1], [-1.0], n=2)
        with pytest.raises(InvalidValue):
            astar_path(0, 1, g)
