"""BFS: level, parent, batch, and direction variants vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graphblas import DirectionOptimizer
from repro.graphblas.errors import InvalidValue
from repro.generators import grid_graph, path_graph, star_graph
from repro.lagraph import (
    Graph,
    bfs,
    bfs_level,
    bfs_levels_batch,
    bfs_parent,
    check_bfs_levels,
    check_bfs_parents,
)


def nx_to_graph(G_nx, n, kind="directed"):
    e = list(G_nx.edges)
    return Graph.from_edges(
        [u for u, v in e], [v for u, v in e], np.ones(len(e)), n=n, kind=kind
    )


@pytest.fixture(params=[(25, 0.1, 3), (40, 0.07, 4), (60, 0.05, 5)])
def random_pair(request):
    n, p, seed = request.param
    G_nx = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    return G_nx, nx_to_graph(G_nx, n), n


class TestLevelBFS:
    @pytest.mark.parametrize("method", ["auto", "push", "pull"])
    def test_matches_networkx(self, random_pair, method):
        G_nx, g, n = random_pair
        lv = bfs_level(0, g, method=method)
        got = dict(zip(*(a.tolist() for a in lv.extract_tuples())))
        assert got == dict(nx.single_source_shortest_path_length(G_nx, 0))

    def test_source_level_zero_and_unreached_absent(self):
        g = Graph.from_edges([0], [1], n=4)
        lv = bfs_level(0, g)
        assert lv[0] == 0 and lv[1] == 1
        assert lv.get(2) is None and lv.get(3) is None

    def test_path_graph_levels(self):
        g = path_graph(6)
        lv = bfs_level(0, g)
        assert lv.to_dense().tolist() == [0, 1, 2, 3, 4, 5]

    def test_star_graph(self):
        g = star_graph(10)
        lv = bfs_level(0, g)
        assert lv.to_dense(fill=-1).tolist() == [0] + [1] * 9

    def test_grid_graph_levels_are_manhattan(self):
        g = grid_graph(4, 5)
        lv = bfs_level(0, g).to_dense()
        for r in range(4):
            for c in range(5):
                assert lv[r * 5 + c] == r + c

    def test_bad_source(self):
        g = path_graph(3)
        with pytest.raises(InvalidValue):
            bfs_level(99, g)

    def test_validator_accepts(self, random_pair):
        G_nx, g, n = random_pair
        check_bfs_levels(g, 0, bfs_level(0, g))

    def test_different_source(self, random_pair):
        G_nx, g, n = random_pair
        lv = bfs_level(7, g)
        got = dict(zip(*(a.tolist() for a in lv.extract_tuples())))
        assert got == dict(nx.single_source_shortest_path_length(G_nx, 7))


class TestParentBFS:
    def test_parents_validate(self, random_pair):
        _, g, n = random_pair
        levels, parents = bfs(0, g, level=True, parent=True)
        check_bfs_parents(g, 0, parents, levels)

    def test_source_is_own_parent(self):
        g = path_graph(4)
        p = bfs_parent(0, g)
        assert p[0] == 0 and p[1] == 0 and p[2] == 1

    def test_parent_pattern_matches_level_pattern(self, random_pair):
        _, g, n = random_pair
        levels, parents = bfs(0, g, level=True, parent=True)
        assert levels.pattern().tolist() == parents.pattern().tolist()

    def test_request_nothing_raises(self):
        g = path_graph(3)
        with pytest.raises(InvalidValue):
            bfs(0, g, level=False, parent=False)


class TestBatchBFS:
    def test_matches_single_source(self, random_pair):
        G_nx, g, n = random_pair
        sources = [0, 3, 9]
        B = bfs_levels_batch(sources, g)
        for s_i, s in enumerate(sources):
            single = bfs_level(s, g)
            r, c, v = B.extract_tuples()
            got = {int(c[k]): int(v[k]) for k in range(r.size) if r[k] == s_i}
            exp = dict(zip(*(a.tolist() for a in single.extract_tuples())))
            assert got == exp

    def test_single_row(self):
        g = path_graph(5)
        B = bfs_levels_batch([2], g)
        r, c, v = B.extract_tuples()
        assert dict(zip(c.tolist(), v.tolist())) == {2: 0, 1: 1, 3: 1, 0: 2, 4: 2}


class TestDirectionOptimized:
    def test_optimizer_history_populates(self):
        g = grid_graph(8, 8)
        opt = DirectionOptimizer(threshold=0.05)
        lv = bfs_level(0, g, optimizer=opt)
        assert len(opt.history) > 0
        assert lv[63] == 14

    @pytest.mark.parametrize("threshold", [0.01, 0.1, 0.5])
    def test_all_thresholds_give_same_levels(self, threshold):
        G_nx = nx.gnp_random_graph(50, 0.08, seed=9, directed=True)
        g = nx_to_graph(G_nx, 50)
        base = bfs_level(0, g, method="push")
        opt = DirectionOptimizer(threshold=threshold)
        lv = bfs_level(0, g, optimizer=opt)
        assert lv.isequal(base)

    def test_undirected_bfs(self):
        G_nx = nx.gnp_random_graph(40, 0.08, seed=2)
        e = list(G_nx.edges)
        g = Graph.from_edges(
            [u for u, v in e], [v for u, v in e], n=40, kind="undirected"
        )
        lv = bfs_level(0, g)
        got = dict(zip(*(a.tolist() for a in lv.extract_tuples())))
        assert got == dict(nx.single_source_shortest_path_length(G_nx, 0))
