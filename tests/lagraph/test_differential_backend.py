"""End-to-end algorithms under the differential cross-checking backend.

The runtime form of the paper's dual-implementation testing: BFS, SSSP,
and triangle counting execute with every affordable Table-I op verified
against the dense spec-literal reference.  Any divergence raises; the
assertions additionally require that *something* was actually verified
(the budget must not silently skip the whole workload at these sizes).
"""

import numpy as np
import pytest

from repro.generators import rmat_graph
from repro.graphblas.backends import backend
from repro.graphblas.backends.differential import DifferentialBackend
from repro.lagraph import Graph, bfs_level, sssp, triangle_count


@pytest.fixture
def rmat():
    # scale 7 => 128 vertices: big enough to exercise real frontiers,
    # small enough that every op fits the default verification budget
    return rmat_graph(7, 8, seed=42)


def _run(fn):
    be = DifferentialBackend()
    with backend(be):
        result = fn()
    assert be.stats["divergences"] == 0
    assert be.stats["verified"] > 0, "budget skipped the entire workload"
    return result, be.stats


class TestDifferentialAlgorithms:
    def test_bfs_level(self, rmat):
        lv, stats = _run(lambda: bfs_level(0, rmat))
        plain = bfs_level(0, rmat)
        assert lv.isequal(plain)

    def test_sssp(self, rmat):
        W = rmat_graph(6, 8, weighted=True, seed=7)
        dist, stats = _run(lambda: sssp(0, W, method="bellman-ford"))
        plain = sssp(0, W, method="bellman-ford")
        assert dist.isequal(plain)

    def test_triangle_count(self):
        und = rmat_graph(6, 6, kind="undirected", seed=3)
        tris, stats = _run(lambda: triangle_count(und))
        assert tris == triangle_count(und)

    def test_oversized_ops_are_skipped_not_verified(self, rmat):
        be = DifferentialBackend(budget=64)  # below even a 128-vector replay
        with backend(be):
            bfs_level(0, rmat)
        assert be.stats["verified"] == 0
        assert be.stats["skipped"] > 0
        assert be.stats["divergences"] == 0
