"""MIS, coloring, and bipartite matching."""

import networkx as nx
import numpy as np
import pytest

from repro.generators import complete_graph, cycle_graph, random_bipartite, star_graph
from repro.graphblas import Matrix, Vector
from repro.lagraph import (
    Graph,
    color_count,
    greedy_color,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_valid_coloring,
    maximal_independent_set,
    maximal_matching,
    maximum_matching,
)
from repro.lagraph.matching import maximum_matching as _mm


def und_pair(n=50, p=0.1, seed=2):
    G_nx = nx.gnp_random_graph(n, p, seed=seed)
    e = list(G_nx.edges)
    g = Graph.from_edges([u for u, v in e], [v for u, v in e], n=n, kind="undirected")
    return G_nx, g


class TestMIS:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_luby_produces_maximal_independent_set(self, seed):
        _, g = und_pair(seed=seed)
        iset = maximal_independent_set(g, seed=seed)
        assert is_maximal_independent_set(g, iset)

    def test_empty_graph_mis_is_everything(self):
        g = Graph.from_edges([], [], n=5, kind="undirected")
        iset = maximal_independent_set(g, seed=0)
        assert iset.nvals == 5

    def test_complete_graph_mis_is_one_vertex(self):
        g = complete_graph(6)
        iset = maximal_independent_set(g, seed=0)
        assert iset.nvals == 1

    def test_star_graph_spokes_or_hub(self):
        g = star_graph(10)
        iset = maximal_independent_set(g, seed=3)
        assert iset.nvals in (1, 9)
        assert is_maximal_independent_set(g, iset)

    def test_validators_reject_bad_sets(self):
        g = cycle_graph(4)
        adjacent = Vector.from_coo([0, 1], [True, True], size=4)
        assert not is_independent_set(g, adjacent)
        not_maximal = Vector.from_coo([0], [True], size=4)
        assert is_independent_set(g, not_maximal)
        assert not is_maximal_independent_set(g, not_maximal)

    def test_self_loops_ignored(self):
        g = Graph.from_edges([0, 0], [0, 1], n=2, kind="undirected")
        iset = maximal_independent_set(g, seed=0)
        assert iset.nvals == 1


class TestColoring:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_valid_coloring(self, seed):
        _, g = und_pair(seed=seed)
        colors = greedy_color(g, seed=seed)
        assert is_valid_coloring(g, colors)

    def test_bipartite_uses_two_colors(self):
        g = cycle_graph(8)  # even cycle: chromatic number 2
        colors = greedy_color(g, seed=0)
        assert is_valid_coloring(g, colors)
        assert color_count(colors) <= 3  # Luby greedy may use one extra

    def test_complete_graph_needs_n_colors(self):
        g = complete_graph(5)
        colors = greedy_color(g, seed=0)
        assert is_valid_coloring(g, colors)
        assert color_count(colors) == 5

    def test_at_most_max_degree_plus_one(self):
        G_nx, g = und_pair(seed=7, p=0.15)
        colors = greedy_color(g, seed=7)
        assert is_valid_coloring(g, colors)
        dmax = max(d for _, d in G_nx.degree)
        assert color_count(colors) <= dmax + 1

    def test_validator_rejects_monochromatic_edge(self):
        g = cycle_graph(4)
        bad = Vector.from_dense(np.array([1, 1, 2, 2], dtype=np.int64))
        assert not is_valid_coloring(g, bad)

    def test_validator_requires_total_coloring(self):
        g = cycle_graph(4)
        partial = Vector.from_coo([0, 1], [1, 2], size=4)
        assert not is_valid_coloring(g, partial)

    def test_empty_color_count(self):
        assert color_count(Vector("INT64", 3)) == 0


class TestMatching:
    @pytest.mark.parametrize("seed", [0, 1, 2, 4])
    def test_maximal_matching_valid_and_maximal(self, seed):
        B = random_bipartite(20, 25, 0.15, seed=seed)
        m = maximal_matching(B, seed=seed)
        assert is_maximal_matching(B, m)

    @pytest.mark.parametrize("seed", [0, 1, 2, 4])
    def test_maximum_matching_size_matches_networkx(self, seed):
        B = random_bipartite(18, 22, 0.15, seed=seed)
        r, c, _ = B.extract_tuples()
        G_nx = nx.Graph((int(i), int(j) + 18) for i, j in zip(r, c))
        G_nx.add_nodes_from(range(18 + 22))
        exp = len(nx.bipartite.maximum_matching(G_nx, top_nodes=set(range(18)))) // 2
        mm = maximum_matching(B)
        assert is_matching(B, mm)
        assert mm.nvals == exp

    def test_maximum_at_least_maximal(self):
        B = random_bipartite(15, 15, 0.2, seed=9)
        ml = maximal_matching(B, seed=9)
        mm = maximum_matching(B, init=ml)
        assert mm.nvals >= ml.nvals

    def test_perfect_matching_on_identity(self):
        B = Matrix.sparse_identity(6, dtype=bool)
        mm = maximum_matching(B)
        assert mm.nvals == 6
        li, lv = mm.extract_tuples()
        assert np.array_equal(li, lv)

    def test_augmenting_path_found(self):
        # maximal greedy can pick (0,0); maximum must augment to size 2:
        # edges: 0-0, 0-1, 1-0
        B = Matrix.from_coo([0, 0, 1], [0, 1, 0], [True] * 3, nrows=2, ncols=2)
        start = Vector("INT64", 2)
        start.set_element(0, 0)  # deliberately bad: left 0 -> right 0
        mm = maximum_matching(B, init=start)
        assert mm.nvals == 2

    def test_empty_biadjacency(self):
        B = Matrix("BOOL", 4, 4)
        assert maximal_matching(B).nvals == 0
        assert maximum_matching(B).nvals == 0

    def test_validators_reject_bad_matchings(self):
        B = Matrix.from_coo([0, 1], [0, 0], [True, True], nrows=2, ncols=2)
        conflict = Vector.from_coo([0, 1], [0, 0], size=2)  # both take right 0
        assert not is_matching(B, conflict)
        phantom = Vector.from_coo([0], [1], size=2)  # edge (0,1) absent
        assert not is_matching(B, phantom)
        empty = Vector("INT64", 2)
        assert is_matching(B, empty) and not is_maximal_matching(B, empty)
