"""Epoch-checked Graph property caches: staleness regression + delta patching.

The original cache keyed only on presence: a mutation of ``A`` after a
property access silently served stale degrees/transpose unless the caller
remembered ``delete_cached()``.  Reads are now epoch-checked, and the
patchable properties (degrees, transpose, self-loop count) are maintained
incrementally from the matrix's delta-window chain rather than recomputed.
"""

import numpy as np
import pytest

import repro.lagraph.graph as graph_mod
from repro.graphblas import Matrix
from repro.lagraph import Graph, GraphKind


def _fresh_graph_like(g: Graph) -> Graph:
    """An identical graph with cold caches (the recompute oracle)."""
    return Graph(g.A.dup(), g.kind)


def test_stale_degree_regression():
    # the exact staleness bug: access, mutate, access again w/o delete_cached
    g = Graph.from_edges([0, 1], [1, 2], n=4, kind=GraphKind.DIRECTED)
    assert g.out_degree.to_dense(0).tolist() == [1, 1, 0, 0]
    g.A.set_element(0, 2, True)
    g.A.set_element(0, 3, True)
    assert g.out_degree.to_dense(0).tolist() == [3, 1, 0, 0]
    assert g.in_degree.to_dense(0).tolist() == [0, 1, 2, 1]


def test_stale_transpose_and_nself_regression():
    g = Graph.from_edges([0, 1], [1, 2], n=3, kind=GraphKind.DIRECTED)
    assert g.AT.get(1, 0) is not None
    assert g.nself_edges == 0
    g.A.set_element(2, 2, True)
    g.A.set_element(2, 0, True)
    assert g.nself_edges == 1
    assert g.AT.get(0, 2) is not None
    g.A.remove_element(2, 2)
    assert g.nself_edges == 0


def test_symmetry_cache_recomputed_when_stale():
    g = Graph.from_edges([0, 1], [1, 0], n=2, kind=GraphKind.DIRECTED)
    assert g.is_symmetric_structure is True
    g.A.set_element(0, 0, True)  # diagonal: still symmetric
    assert g.is_symmetric_structure is True
    g2 = Graph.from_edges([0, 1], [1, 0], n=3, kind=GraphKind.DIRECTED)
    assert g2.is_symmetric_structure is True
    g2.A.set_element(0, 2, True)
    assert g2.is_symmetric_structure is False


def test_degree_patch_is_incremental(monkeypatch):
    """After the first compute, window-sized mutations must not trigger a
    from-scratch degree reduction."""
    rng = np.random.default_rng(7)
    src, dst = rng.integers(0, 50, size=(2, 200))
    g = Graph.from_edges(src, dst, n=50, kind=GraphKind.DIRECTED)
    g.out_degree  # warm the cache

    calls = []
    real = graph_mod.ops.reduce_rowwise
    monkeypatch.setattr(
        graph_mod.ops, "reduce_rowwise",
        lambda *a, **k: calls.append(1) or real(*a, **k),
    )
    for k in range(10):
        g.A.set_element(int(rng.integers(50)), int(rng.integers(50)), True)
        got = g.out_degree.to_dense(0)
        assert calls == [], "degree cache was recomputed instead of patched"
        want = _fresh_graph_like(g).out_degree.to_dense(0)
        calls.clear()  # the from-scratch oracle legitimately recomputes
        assert np.array_equal(got, want)


@pytest.mark.parametrize("kind", [GraphKind.DIRECTED, GraphKind.UNDIRECTED])
def test_patched_properties_match_recompute(kind):
    rng = np.random.default_rng(3)
    src, dst = rng.integers(0, 30, size=(2, 120))
    g = Graph.from_edges(src, dst, n=30, kind=kind)
    # warm every patchable cache
    g.out_degree, g.in_degree, g.nself_edges
    if kind is GraphKind.DIRECTED:
        g.AT

    for step in range(15):
        i, j = int(rng.integers(30)), int(rng.integers(30))
        if step % 3 == 2:
            g.A.remove_element(i, j)
            if kind is GraphKind.UNDIRECTED:
                g.A.remove_element(j, i)
        else:
            g.A.set_element(i, j, True)
            if kind is GraphKind.UNDIRECTED:
                g.A.set_element(j, i, True)
        oracle = _fresh_graph_like(g)
        assert np.array_equal(
            g.out_degree.to_dense(0), oracle.out_degree.to_dense(0)
        )
        assert np.array_equal(
            g.in_degree.to_dense(0), oracle.in_degree.to_dense(0)
        )
        assert g.nself_edges == oracle.nself_edges
        assert g.AT.isequal(oracle.AT)


def test_bulk_mutation_breaks_chain_and_recomputes():
    g = Graph.from_edges([0, 1], [1, 2], n=4, kind=GraphKind.DIRECTED)
    g.out_degree
    g.A.clear()
    assert g.out_degree.to_dense(0).tolist() == [0, 0, 0, 0]
    g.A.set_element(3, 0, True)
    assert g.out_degree.to_dense(0).tolist() == [0, 0, 0, 1]


def test_delete_cached_still_works():
    g = Graph.from_edges([0], [1], n=2, kind=GraphKind.DIRECTED)
    g.out_degree
    g.delete_cached()
    assert g._cache == {} and g._cache_epoch == {}
    assert g.out_degree.to_dense(0).tolist() == [1, 0]
