"""The paper's "future work" extensions: GNN, branch & bound, graph kernels."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_gnp,
    path_graph,
    star_graph,
)
from repro.graphblas import Matrix
from repro.graphblas.errors import InvalidValue
from repro.lagraph import (
    GCN,
    Graph,
    max_independent_set_size,
    maximum_independent_set,
    is_independent_set,
    normalized_propagation,
    shortest_path_kernel,
    sp_kernel_matrix,
    wl_kernel_matrix,
    wl_subtree_kernel,
)


def two_blobs(k=10, p_in=0.8, p_out=0.05, seed=0):
    """Two dense communities, sparse cross edges, labels 0/1."""
    rng = np.random.default_rng(seed)
    edges = []
    for i in range(2 * k):
        for j in range(i + 1, 2 * k):
            same = (i < k) == (j < k)
            if rng.random() < (p_in if same else p_out):
                edges.append((i, j))
    g = Graph.from_edges(
        [u for u, v in edges], [v for u, v in edges], n=2 * k, kind="undirected"
    )
    labels = np.array([0] * k + [1] * k)
    return g, labels


class TestGCN:
    def test_propagation_operator_rows_behave(self):
        g = cycle_graph(6)
        S = normalized_propagation(g)
        # S is symmetric with positive entries; row sums <= sqrt bound
        assert np.allclose(S.to_dense(), S.to_dense().T)
        assert (S.to_dense() >= 0).all()
        # degree-regular graph: S row sums are exactly 1
        assert np.allclose(S.to_dense().sum(axis=1), 1.0)

    def test_learns_two_communities(self):
        g, labels = two_blobs(seed=1)
        n = g.n
        X = Matrix.sparse_identity(n, dtype="FP64", value=1.0)  # one-hot feats
        rng = np.random.default_rng(0)
        train = rng.random(n) < 0.5
        model = GCN(g, n_features=n, n_hidden=8, n_classes=2, seed=0)
        history = model.fit(X, labels, train, epochs=80, lr=0.8)
        assert history[-1] < history[0] / 3  # loss drops
        acc = model.accuracy(X, labels, ~train)  # held-out vertices
        assert acc >= 0.9, acc

    def test_predict_shape(self):
        g, labels = two_blobs(k=5)
        X = Matrix.sparse_identity(g.n, dtype="FP64", value=1.0)
        model = GCN(g, g.n, 4, 2, seed=1)
        pred = model.predict(X)
        assert pred.shape == (g.n,)
        assert set(np.unique(pred)) <= {0, 1}

    def test_bad_sizes(self):
        g, _ = two_blobs(k=3)
        with pytest.raises(InvalidValue):
            GCN(g, 0, 4, 2)

    def test_empty_train_mask(self):
        g, labels = two_blobs(k=3)
        X = Matrix.sparse_identity(g.n, dtype="FP64", value=1.0)
        model = GCN(g, g.n, 4, 2)
        with pytest.raises(InvalidValue):
            model.fit(X, labels, np.zeros(g.n, dtype=bool))


def brute_force_alpha(G_nx) -> int:
    n = G_nx.number_of_nodes()
    best = 0
    nodes = list(G_nx.nodes)
    for r in range(n, 0, -1):
        if r <= best:
            break
        for comb in itertools.combinations(nodes, r):
            if not any(G_nx.has_edge(u, v) for u, v in itertools.combinations(comb, 2)):
                best = max(best, r)
                break
    return best


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_matches_brute_force(self, seed):
        G_nx = nx.gnp_random_graph(14, 0.3, seed=seed)
        e = list(G_nx.edges)
        g = Graph.from_edges(
            [u for u, v in e], [v for u, v in e], n=14, kind="undirected"
        )
        iset = maximum_independent_set(g)
        assert is_independent_set(g, iset)
        assert iset.nvals == brute_force_alpha(G_nx)

    def test_known_closed_forms(self):
        assert max_independent_set_size(complete_graph(6)) == 1
        assert max_independent_set_size(star_graph(8)) == 7
        assert max_independent_set_size(cycle_graph(7)) == 3  # floor(7/2)
        assert max_independent_set_size(path_graph(7)) == 4  # ceil(7/2)

    def test_empty_graph(self):
        g = Graph.from_edges([], [], n=5, kind="undirected")
        assert max_independent_set_size(g) == 5

    def test_at_least_luby(self):
        g = erdos_renyi_gnp(18, 0.25, kind="undirected", seed=3)
        from repro.lagraph import maximal_independent_set

        greedy = maximal_independent_set(g, seed=0).nvals
        assert maximum_independent_set(g).nvals >= greedy


class TestGraphKernels:
    def g(self, edges, n):
        return Graph.from_edges(
            [u for u, v in edges], [v for u, v in edges], n=n, kind="undirected"
        )

    def test_isomorphic_graphs_equal_kernel(self):
        g1 = self.g([(0, 1), (1, 2), (2, 3)], 4)  # path relabeled
        g2 = self.g([(3, 2), (2, 0), (0, 1)], 4)
        k11 = wl_subtree_kernel(g1, g1)
        k12 = wl_subtree_kernel(g1, g2)
        assert k11 == k12

    def test_wl_distinguishes_path_from_star(self):
        p = path_graph(5)
        s = star_graph(5)
        K = wl_kernel_matrix([p, s, p])
        assert np.isclose(K[0, 2], 1.0)  # identical graphs: similarity 1
        assert K[0, 1] < 0.95  # path vs star are distinguished

    def test_kernel_matrix_is_psd(self):
        graphs = [path_graph(6), cycle_graph(6), star_graph(6), complete_graph(5)]
        for K in (wl_kernel_matrix(graphs), sp_kernel_matrix(graphs)):
            assert np.allclose(K, K.T)
            eig = np.linalg.eigvalsh(K)
            assert eig.min() > -1e-9  # PSD

    def test_sp_kernel_isomorphic(self):
        g1 = self.g([(0, 1), (1, 2)], 3)
        g2 = self.g([(2, 1), (1, 0)], 3)
        assert shortest_path_kernel(g1, g1) == shortest_path_kernel(g1, g2)

    def test_sp_kernel_cycle_vs_path(self):
        K = sp_kernel_matrix([cycle_graph(8), path_graph(8)])
        assert K[0, 1] < 1.0

    def test_custom_labels_change_wl(self):
        g = path_graph(4)
        same = wl_subtree_kernel(
            g, g, labels1=np.zeros(4, int), labels2=np.zeros(4, int)
        )
        diff = wl_subtree_kernel(
            g, g, labels1=np.zeros(4, int), labels2=np.arange(4)
        )
        assert diff < same

    def test_wl_self_similarity_normalized(self):
        graphs = [path_graph(5), cycle_graph(5)]
        K = wl_kernel_matrix(graphs)
        assert np.allclose(np.diag(K), 1.0)
