"""PageRank and betweenness centrality vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.generators import path_graph, star_graph
from repro.lagraph import (
    Graph,
    betweenness_centrality,
    check_pagerank,
    pagerank,
)


def nx_pair(n=40, p=0.08, seed=3, directed=True):
    G_nx = nx.gnp_random_graph(n, p, seed=seed, directed=directed)
    e = list(G_nx.edges)
    g = Graph.from_edges(
        [u for u, v in e],
        [v for u, v in e],
        np.ones(len(e)),
        n=n,
        kind="directed" if directed else "undirected",
    )
    return G_nx, g


class TestPageRank:
    @pytest.mark.parametrize("seed,directed", [(3, True), (5, False), (7, True)])
    def test_matches_networkx(self, seed, directed):
        G_nx, g = nx_pair(seed=seed, directed=directed)
        r, iters = pagerank(g, tol=1e-10)
        exp = nx.pagerank(G_nx, alpha=0.85, tol=1e-12, weight=None)
        got = r.to_dense()
        assert max(abs(got[i] - exp[i]) for i in range(40)) < 1e-7
        assert 0 < iters <= 100

    def test_invariants(self):
        _, g = nx_pair(seed=9)
        r, _ = pagerank(g)
        check_pagerank(r)

    def test_dangling_vertices_handled(self):
        # vertex 2 has no out-edges: its rank must be redistributed
        g = Graph.from_edges([0, 1], [2, 2], n=3)
        r, _ = pagerank(g, tol=1e-12)
        G_nx = nx.DiGraph([(0, 2), (1, 2)])
        G_nx.add_nodes_from(range(3))
        exp = nx.pagerank(G_nx, alpha=0.85, tol=1e-13, weight=None)
        got = r.to_dense()
        assert max(abs(got[i] - exp[i]) for i in range(3)) < 1e-8

    def test_star_hub_dominates(self):
        # spokes point at the hub
        g = Graph.from_edges(list(range(1, 10)), [0] * 9, n=10)
        r, _ = pagerank(g)
        vals = r.to_dense()
        assert vals[0] > vals[1] * 3

    def test_damping_extremes(self):
        _, g = nx_pair(seed=4)
        r_low, _ = pagerank(g, damping=0.05, tol=1e-12)
        # with damping -> 0 ranks approach uniform
        assert np.allclose(r_low.to_dense(), 1 / 40, atol=0.01)

    def test_iteration_cap_respected(self):
        _, g = nx_pair(seed=4)
        _, iters = pagerank(g, tol=0.0, max_iters=7)
        assert iters == 7


class TestBetweenness:
    @pytest.mark.parametrize("seed,directed", [(3, True), (5, False), (11, True), (13, False)])
    def test_matches_networkx_exact(self, seed, directed):
        G_nx, g = nx_pair(n=35, p=0.1, seed=seed, directed=directed)
        bc = betweenness_centrality(g).to_dense()
        exp = nx.betweenness_centrality(G_nx, normalized=False)
        assert max(abs(bc[i] - exp[i]) for i in range(35)) < 1e-8

    def test_path_graph_middle_is_max(self):
        g = path_graph(7)
        bc = betweenness_centrality(g).to_dense()
        assert np.argmax(bc) == 3
        # endpoints lie on no shortest path interior
        assert bc[0] == 0 and bc[6] == 0

    def test_star_center(self):
        g = star_graph(8)
        bc = betweenness_centrality(g).to_dense()
        # center lies between all C(7,2) spoke pairs
        assert bc[0] == 7 * 6 / 2
        assert np.allclose(bc[1:], 0)

    def test_batch_sources_subset(self):
        """Per-source batching sums to the exact result."""
        G_nx, g = nx_pair(n=20, p=0.15, seed=6)
        full = betweenness_centrality(g).to_dense()
        part1 = betweenness_centrality(g, sources=range(10)).to_dense()
        part2 = betweenness_centrality(g, sources=range(10, 20)).to_dense()
        assert np.allclose(part1 + part2, full)

    def test_disconnected_graph(self):
        g = Graph.from_edges([0, 1, 3, 4], [1, 2, 4, 5], n=6)
        bc = betweenness_centrality(g).to_dense()
        assert bc[1] == 1 and bc[4] == 1


class TestCloseness:
    @pytest.mark.parametrize("seed,directed", [(4, False), (6, True), (9, False)])
    def test_matches_networkx(self, seed, directed):
        G_nx, g = nx_pair(n=35, p=0.08, seed=seed, directed=directed)
        from repro.lagraph import closeness_centrality

        got = closeness_centrality(g).to_dense()
        exp = nx.closeness_centrality(G_nx)
        assert max(abs(got[v] - exp[v]) for v in range(35)) < 1e-10

    def test_path_graph_endpoints_minimal(self):
        from repro.lagraph import closeness_centrality

        got = closeness_centrality(path_graph(7)).to_dense()
        assert np.argmax(got) == 3
        assert got[0] == got[6] and got[0] < got[3]

    def test_star_center_maximal(self):
        from repro.lagraph import closeness_centrality

        got = closeness_centrality(star_graph(9)).to_dense()
        assert got[0] == 1.0  # center is at distance 1 from everyone


class TestHITS:
    @pytest.mark.parametrize("seed", [6, 11])
    def test_matches_networkx(self, seed):
        G_nx, g = nx_pair(n=30, p=0.1, seed=seed, directed=True)
        from repro.lagraph import hits

        h, a = hits(g, tol=1e-12)
        nh, na = nx.hits(G_nx, max_iter=1000, tol=1e-12)
        assert max(abs(h.to_dense()[v] - nh[v]) for v in range(30)) < 1e-6
        assert max(abs(a.to_dense()[v] - na[v]) for v in range(30)) < 1e-6

    def test_hub_and_authority_split(self):
        from repro.lagraph import hits

        # vertices 0,1 point at 2,3: pure hubs and pure authorities
        g = Graph.from_edges([0, 0, 1, 1], [2, 3, 2, 3], n=4)
        h, a = hits(g)
        hd, ad = h.to_dense(), a.to_dense()
        assert hd[0] > 0.4 and hd[2] < 1e-9
        assert ad[2] > 0.4 and ad[0] < 1e-9

    def test_normalization(self):
        from repro.lagraph import hits

        _, g = nx_pair(n=20, p=0.15, seed=3)
        h, a = hits(g)
        assert abs(sum(h.to_dense()) - 1) < 1e-9
        assert abs(sum(a.to_dense()) - 1) < 1e-9
