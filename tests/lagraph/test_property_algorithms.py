"""Property-based algorithm tests: invariants over hypothesis-random graphs."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lagraph import (
    Graph,
    bellman_ford_sssp,
    bfs,
    bfs_level,
    check_bfs_levels,
    check_bfs_parents,
    check_component_labels,
    connected_components,
    cc_label_propagation,
    delta_stepping_sssp,
    greedy_color,
    is_maximal_independent_set,
    is_valid_coloring,
    kcore_decomposition,
    maximal_independent_set,
    triangle_count,
)

N = 12


@st.composite
def undirected_graph(draw):
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).map(
                lambda t: (min(t), max(t))
            ),
            max_size=40,
        )
    )
    edges = [(u, v) for u, v in pairs if u != v]
    src = [u for u, v in edges]
    dst = [v for u, v in edges]
    return Graph.from_edges(src, dst, n=N, kind="undirected")


@st.composite
def weighted_digraph(draw):
    entries = draw(
        st.dictionaries(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
            st.integers(1, 9),
            max_size=40,
        )
    )
    edges = {(u, v): w for (u, v), w in entries.items() if u != v}
    if not edges:
        return Graph.from_edges([], [], n=N, dtype=np.float64)
    src, dst = zip(*edges)
    return Graph.from_edges(
        src, dst, [float(edges[k]) for k in edges], n=N, dtype=np.float64
    )


@settings(max_examples=40, deadline=None)
@given(weighted_digraph())
def test_bfs_levels_and_parents_invariants(g):
    levels, parents = bfs(0, g, level=True, parent=True)
    check_bfs_levels(g, 0, levels)
    check_bfs_parents(g, 0, parents, levels)


@settings(max_examples=30, deadline=None)
@given(weighted_digraph())
def test_sssp_methods_agree(g):
    bf = bellman_ford_sssp(0, g)
    ds = delta_stepping_sssp(0, g, delta=3.0)
    i1, v1 = bf.extract_tuples()
    i2, v2 = ds.extract_tuples()
    assert i1.tolist() == i2.tolist()
    assert np.allclose(v1, v2)


@settings(max_examples=30, deadline=None)
@given(weighted_digraph())
def test_sssp_lower_bounded_by_hops(g):
    """Weighted distance >= (unweighted hops) * (minimum edge weight >= 1)."""
    d = bellman_ford_sssp(0, g)
    lv = bfs_level(0, g)
    di, dv = d.extract_tuples()
    li, lvv = lv.extract_tuples()
    assert di.tolist() == li.tolist()  # same reachable set
    hops = dict(zip(li.tolist(), lvv.tolist()))
    for i, dist in zip(di.tolist(), dv.tolist()):
        assert dist >= hops[i] - 1e-9


@settings(max_examples=40, deadline=None)
@given(undirected_graph())
def test_components_invariants_and_methods_agree(g):
    cc = connected_components(g)
    check_component_labels(g, cc)
    assert cc.isequal(cc_label_propagation(g))


@settings(max_examples=40, deadline=None)
@given(undirected_graph())
def test_triangle_methods_agree(g):
    counts = {m: triangle_count(g, m) for m in ("burkhardt", "cohen", "sandia_ll")}
    assert len(set(counts.values())) == 1


@settings(max_examples=30, deadline=None)
@given(undirected_graph(), st.integers(0, 2**31 - 1))
def test_mis_always_maximal(g, seed):
    iset = maximal_independent_set(g, seed=seed)
    assert is_maximal_independent_set(g, iset)


@settings(max_examples=30, deadline=None)
@given(undirected_graph(), st.integers(0, 2**31 - 1))
def test_coloring_always_valid(g, seed):
    colors = greedy_color(g, seed=seed)
    assert is_valid_coloring(g, colors)


@settings(max_examples=25, deadline=None)
@given(undirected_graph())
def test_kcore_matches_networkx(g):
    r, c, _ = g.A.extract_tuples()
    G_nx = nx.Graph()
    G_nx.add_nodes_from(range(N))
    G_nx.add_edges_from((int(u), int(v)) for u, v in zip(r, c) if u < c.max() + 1)
    G_nx.add_edges_from((int(u), int(v)) for u, v in zip(r, c))
    got = kcore_decomposition(g).to_dense()
    exp = nx.core_number(G_nx)
    assert all(got[v] == exp[v] for v in range(N))


@settings(max_examples=25, deadline=None)
@given(undirected_graph())
def test_bfs_levels_match_networkx(g):
    r, c, _ = g.A.extract_tuples()
    G_nx = nx.Graph()
    G_nx.add_nodes_from(range(N))
    G_nx.add_edges_from((int(u), int(v)) for u, v in zip(r, c))
    lv = bfs_level(0, g)
    got = dict(zip(*(a.tolist() for a in lv.extract_tuples())))
    assert got == dict(nx.single_source_shortest_path_length(G_nx, 0))
