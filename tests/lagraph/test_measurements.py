"""Graph measurements (paper section VI's support-library list) vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.generators import complete_graph, cycle_graph, grid_graph, path_graph, star_graph
from repro.lagraph import (
    Graph,
    average_clustering,
    degree_assortativity,
    degree_statistics,
    density,
    estimate_diameter,
    global_clustering,
    graph_summary,
    kcore_decomposition,
    reciprocity,
)


def und_pair(n=40, p=0.12, seed=1):
    G_nx = nx.gnp_random_graph(n, p, seed=seed)
    e = list(G_nx.edges)
    g = Graph.from_edges([u for u, v in e], [v for u, v in e], n=n, kind="undirected")
    return G_nx, g


class TestBasicStats:
    def test_degree_statistics(self):
        g = star_graph(9)
        s = degree_statistics(g)
        assert s["max"] == 8 and s["min"] == 1
        assert np.isclose(s["mean"], (8 + 8) / 9)

    def test_density_undirected(self):
        assert density(complete_graph(6)) == 1.0
        assert np.isclose(density(cycle_graph(10)), 10 / 45)

    def test_density_directed(self):
        g = Graph.from_edges([0, 1], [1, 2], n=3)
        assert np.isclose(density(g), 2 / 6)

    def test_reciprocity(self):
        g = Graph.from_edges([0, 1, 1], [1, 0, 2], n=3)
        G_nx = nx.DiGraph([(0, 1), (1, 0), (1, 2)])
        assert np.isclose(reciprocity(g), nx.reciprocity(G_nx))

    def test_reciprocity_undirected_is_one(self):
        assert reciprocity(cycle_graph(5)) == 1.0

    @pytest.mark.parametrize("seed", [1, 4])
    def test_assortativity_matches_networkx(self, seed):
        G_nx, g = und_pair(seed=seed)
        exp = nx.degree_assortativity_coefficient(G_nx)
        assert np.isclose(degree_assortativity(g), exp, atol=1e-9)

    def test_star_is_disassortative(self):
        assert degree_assortativity(star_graph(10)) < -0.99

    def test_summary_keys(self):
        _, g = und_pair()
        s = graph_summary(g)
        assert set(s) >= {"vertices", "edges", "density", "max_degree"}


class TestClustering:
    @pytest.mark.parametrize("seed", [1, 3, 7])
    def test_average_clustering_matches_networkx(self, seed):
        G_nx, g = und_pair(seed=seed)
        assert np.isclose(average_clustering(g), nx.average_clustering(G_nx))

    @pytest.mark.parametrize("seed", [1, 3])
    def test_transitivity_matches_networkx(self, seed):
        G_nx, g = und_pair(p=0.2, seed=seed)
        assert np.isclose(global_clustering(g), nx.transitivity(G_nx))

    def test_complete_graph_fully_clustered(self):
        g = complete_graph(6)
        assert average_clustering(g) == 1.0
        assert global_clustering(g) == 1.0

    def test_triangle_free(self):
        assert global_clustering(cycle_graph(8)) == 0.0


class TestDiameter:
    def test_exact_small_graphs(self):
        assert estimate_diameter(path_graph(9), samples=9) == 8
        assert estimate_diameter(cycle_graph(10), samples=10) == 5
        assert estimate_diameter(grid_graph(4, 6), samples=24) == 3 + 5

    def test_sampled_is_lower_bound(self):
        G_nx, g = und_pair(n=50, p=0.08, seed=2)
        comp = max(nx.connected_components(G_nx), key=len)
        exact = nx.diameter(G_nx.subgraph(comp))
        est = estimate_diameter(g, samples=12, seed=0)
        assert est <= exact + 0  # never overestimates
        assert est >= exact // 2  # the double sweep gets at least half

    def test_star(self):
        assert estimate_diameter(star_graph(12), samples=2, seed=1) == 2


class TestKCore:
    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_matches_networkx_core_numbers(self, seed):
        G_nx, g = und_pair(p=0.15, seed=seed)
        exp = nx.core_number(G_nx)
        got = kcore_decomposition(g).to_dense()
        assert all(got[v] == exp[v] for v in range(g.n))

    def test_complete_graph_core(self):
        got = kcore_decomposition(complete_graph(6)).to_dense()
        assert got.tolist() == [5] * 6

    def test_path_core_is_one(self):
        got = kcore_decomposition(path_graph(8)).to_dense()
        assert got.tolist() == [1] * 8

    def test_isolated_vertices_core_zero(self):
        g = Graph.from_edges([0], [1], n=4, kind="undirected")
        got = kcore_decomposition(g).to_dense()
        assert got.tolist() == [1, 1, 0, 0]

    def test_directed_uses_symmetrized_structure(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 0], n=3)  # directed triangle
        got = kcore_decomposition(g).to_dense()
        assert got.tolist() == [2, 2, 2]


class TestDegreeDirection:
    """degree_statistics(direction=) on directed graphs (satellite fix)."""

    def _chain(self):
        # 0->1, 2->1, 3->1: vertex 1 has in-degree 3, out-degree 0
        return Graph.from_edges([0, 2, 3], [1, 1, 1], n=4)

    def test_out_is_default(self):
        g = self._chain()
        assert degree_statistics(g) == degree_statistics(g, direction="out")

    def test_out_degree_stats(self):
        s = degree_statistics(self._chain(), direction="out")
        assert s["max"] == 1 and s["min"] == 0
        assert np.isclose(s["mean"], 3 / 4)

    def test_in_degree_stats(self):
        s = degree_statistics(self._chain(), direction="in")
        assert s["max"] == 3 and s["min"] == 0
        assert np.isclose(s["mean"], 3 / 4)
        assert np.isclose(s["skew"], 3 / (3 / 4))

    def test_undirected_directions_coincide(self):
        g = cycle_graph(7)
        assert degree_statistics(g, direction="in") == degree_statistics(
            g, direction="out"
        )

    def test_invalid_direction_raises(self):
        from repro.graphblas.errors import InvalidValue

        with pytest.raises(InvalidValue):
            degree_statistics(self._chain(), direction="sideways")


class TestDisconnected:
    """graph_summary / estimate_diameter on disconnected graphs (satellite)."""

    def _two_paths(self):
        # components {0,1,2,3} (path, diameter 3) and {4,5} (edge, diameter 1)
        return Graph.from_edges(
            [0, 1, 2, 4], [1, 2, 3, 5], n=6, kind="undirected"
        )

    def _with_isolates(self):
        # a triangle plus three isolated vertices
        return Graph.from_edges(
            [0, 1, 2], [1, 2, 0], n=6, kind="undirected"
        )

    def test_diameter_ignores_unreachable_pairs(self):
        # per-component eccentricity: the answer is the largest component's
        # diameter, not infinity
        assert estimate_diameter(self._two_paths(), samples=6) == 3

    def test_diameter_exact_on_each_component(self):
        g = Graph.from_edges([0, 4], [1, 5], n=6, kind="undirected")
        assert estimate_diameter(g, samples=6) == 1

    def test_diameter_with_isolated_vertices(self):
        assert estimate_diameter(self._with_isolates(), samples=6) == 1

    def test_diameter_no_edges_is_zero(self):
        g = Graph.from_edges([], [], n=5, kind="undirected")
        assert estimate_diameter(g, samples=5) == 0

    def test_diameter_sampled_disconnected(self):
        # sampling fewer sources than n must still return a finite bound
        got = estimate_diameter(self._two_paths(), samples=2, seed=7)
        assert 0 <= got <= 3

    def test_summary_disconnected(self):
        s = graph_summary(self._two_paths())
        assert s["vertices"] == 6
        assert s["edges"] == 4
        assert s["max_degree"] == 2
        assert np.isclose(s["mean_degree"], 2 * 4 / 6)
        assert 0 < s["density"] < 1

    def test_summary_with_isolates_matches_networkx(self):
        g = self._with_isolates()
        G_nx = nx.Graph([(0, 1), (1, 2), (2, 0)])
        G_nx.add_nodes_from(range(3, 6))
        s = graph_summary(g)
        assert s["density"] == pytest.approx(nx.density(G_nx))
        assert s["mean_degree"] == pytest.approx(
            sum(d for _, d in G_nx.degree) / 6
        )
