"""The Graph object and its cached properties."""

import numpy as np
import pytest

from repro.graphblas.errors import InvalidValue
from repro.lagraph import Graph, GraphKind


class TestConstruction:
    def test_from_edges_directed(self):
        g = Graph.from_edges([0, 1], [1, 2], [5.0, 6.0], n=3)
        assert g.kind is GraphKind.DIRECTED
        assert g.n == 3 and g.nvals == 2 and g.nedges == 2
        assert g.A[0, 1] == 5.0

    def test_from_edges_undirected_mirrors(self):
        g = Graph.from_edges([0], [1], [3.0], n=2, kind="undirected")
        assert g.nvals == 2 and g.nedges == 1
        assert g.A[0, 1] == 3.0 and g.A[1, 0] == 3.0

    def test_undirected_self_loop_not_doubled(self):
        g = Graph.from_edges([0, 1], [0, 0], n=2, kind="undirected")
        assert g.A.nvals == 3  # (0,0), (1,0), (0,1)
        assert g.nself_edges == 1
        assert g.nedges == 2

    def test_default_weights_are_bool_ones(self):
        g = Graph.from_edges([0], [1], n=2)
        assert g.A[0, 1] == True  # noqa: E712

    def test_nonsquare_rejected(self):
        from repro.graphblas import Matrix

        with pytest.raises(InvalidValue):
            Graph(Matrix("FP64", 2, 3))

    def test_from_dense(self):
        g = Graph.from_dense(np.array([[0, 1], [1, 0]]))
        assert g.nvals == 2


class TestCachedProperties:
    def g(self):
        return Graph.from_edges([0, 0, 1, 3], [1, 2, 2, 3], n=4)

    def test_at_is_transpose_and_cached(self):
        g = self.g()
        AT = g.AT
        assert AT.get(1, 0) is not None and AT.get(0, 1) is None
        assert g.AT is AT  # cached object identity

    def test_at_of_undirected_is_a(self):
        g = Graph.from_edges([0], [1], n=2, kind="undirected")
        assert g.AT is g.A

    def test_degrees(self):
        g = self.g()
        assert g.out_degree.to_dense().tolist() == [2, 1, 0, 1]
        assert g.in_degree.to_dense(fill=0).tolist() == [0, 1, 2, 1]

    def test_undirected_in_degree_is_out_degree(self):
        g = Graph.from_edges([0], [1], n=3, kind="undirected")
        assert g.in_degree is g.out_degree

    def test_symmetry_detection(self):
        asym = self.g()
        assert not asym.is_symmetric_structure
        sym = Graph.from_edges([0, 1], [1, 0], n=2)
        assert sym.is_symmetric_structure

    def test_nself_edges_and_removal(self):
        g = Graph.from_edges([0, 1, 1], [0, 1, 0], n=2)
        assert g.nself_edges == 2
        clean = g.without_self_edges()
        assert clean.nself_edges == 0 and clean.nvals == 1

    def test_delete_cached(self):
        g = self.g()
        _ = g.AT
        g.delete_cached()
        assert "AT" not in g._cache

    def test_structure_is_boolean_ones(self):
        g = Graph.from_edges([0], [1], [123.0], n=2)
        S = g.structure()
        assert S[0, 1] == True  # noqa: E712
