"""The Table-II "application-style" variants must match the library ones."""

import networkx as nx
import numpy as np
import pytest

from repro.lagraph import Graph, bellman_ford_sssp, bfs_level, local_clustering
from repro.lagraph.compact import (
    bfs_levels_compact,
    local_clustering_compact,
    sssp_compact,
)


@pytest.fixture(params=[3, 5, 9])
def weighted(request):
    seed = request.param
    rng = np.random.default_rng(seed)
    G_nx = nx.gnp_random_graph(40, 0.1, seed=seed, directed=True)
    e = list(G_nx.edges)
    w = rng.integers(1, 8, len(e)).astype(float)
    return Graph.from_edges(
        [u for u, v in e], [v for u, v in e], w, n=40, dtype=np.float64
    )


def test_bfs_compact_matches_library(weighted):
    full = bfs_level(0, weighted)
    compact = bfs_levels_compact(0, weighted)
    assert compact.isequal(full)


def test_sssp_compact_matches_library(weighted):
    full = bellman_ford_sssp(0, weighted)
    compact = sssp_compact(0, weighted, delta=3.0)
    i1, v1 = full.extract_tuples()
    i2, v2 = compact.extract_tuples()
    assert i1.tolist() == i2.tolist()
    assert np.allclose(v1, v2)


def test_local_clustering_compact_matches_library():
    edges = []
    for base in (0, 5):
        for i in range(base, base + 5):
            for j in range(i + 1, base + 5):
                edges.append((i, j))
    edges.append((0, 5))
    g = Graph.from_edges(
        [u for u, v in edges], [v for u, v in edges], n=10, kind="undirected"
    )
    full, _ = local_clustering(1, g)
    compact = local_clustering_compact(1, g)
    assert compact.tolist() == full.tolist()
