"""Clustering (MCL, peer pressure, local), sparse DNN, and CF by SGD."""

import networkx as nx
import numpy as np
import pytest

from repro.generators import complete_graph, random_bipartite, synthetic_dnn
from repro.graphblas import Matrix, Vector
from repro.graphblas.errors import InvalidValue
from repro.lagraph import (
    CFModel,
    Graph,
    cf_rmse,
    conductance,
    dnn_categories,
    dnn_inference,
    local_clustering,
    markov_clustering,
    peer_pressure_clustering,
    train_cf,
)


def two_cliques(k=5, bridges=1):
    """Two k-cliques joined by `bridges` edges — the canonical clustering case."""
    edges = []
    for base in (0, k):
        for i in range(base, base + k):
            for j in range(i + 1, base + k):
                edges.append((i, j))
    for b in range(bridges):
        edges.append((b, k + b))
    return Graph.from_edges(
        [u for u, v in edges], [v for u, v in edges], n=2 * k, kind="undirected"
    )


class TestMCL:
    def test_separates_two_cliques(self):
        g = two_cliques()
        labels = markov_clustering(g).to_dense()
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_every_vertex_labelled(self):
        g = two_cliques(4)
        labels = markov_clustering(g).to_dense()
        assert (labels >= 0).all()

    def test_single_clique_single_cluster(self):
        g = complete_graph(6)
        labels = markov_clustering(g).to_dense()
        assert len(set(labels.tolist())) == 1

    def test_inflation_must_exceed_one_cluster_count(self):
        g = two_cliques()
        few = markov_clustering(g, inflation=1.5).to_dense()
        many = markov_clustering(g, inflation=4.0).to_dense()
        assert len(set(many.tolist())) >= len(set(few.tolist()))

    def test_bad_expansion(self):
        with pytest.raises(InvalidValue):
            markov_clustering(two_cliques(), expansion=1)


class TestPeerPressure:
    def test_separates_two_cliques(self):
        g = two_cliques()
        labels = peer_pressure_clustering(g).to_dense()
        assert len(set(labels[:5])) == 1 and len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_labels_are_representative_members(self):
        g = two_cliques(4)
        labels = peer_pressure_clustering(g).to_dense()
        for v, c in enumerate(labels):
            assert 0 <= c < g.n


class TestLocalClustering:
    def test_finds_seed_community(self):
        g = two_cliques()
        members, cond = local_clustering(1, g)
        assert set(members) == set(range(5))
        assert cond < 0.3

    def test_other_side(self):
        g = two_cliques()
        members, _ = local_clustering(7, g)
        assert set(members) == set(range(5, 10))

    def test_conductance_definition(self):
        g = two_cliques(5, bridges=1)
        # S = one clique: cut=1, vol(S)=2*10+1... degrees: 4 each +1 bridge
        cond = conductance(g, range(5))
        cut, vol = 1, 4 * 5 + 1
        assert np.isclose(cond, cut / vol)

    def test_whole_graph_conductance_is_one(self):
        g = two_cliques()
        assert conductance(g, range(10)) == 1.0


class TestDNN:
    def test_shapes_and_relu(self):
        Y0, Ws, bs = synthetic_dnn(12, 32, 3, seed=0)
        Y = dnn_inference(Y0, Ws, bs)
        assert Y.shape == (12, 32)
        _, _, vals = Y.extract_tuples()
        assert (vals > 0).all()  # ReLU output strictly positive
        assert (vals <= 32.0).all()  # clip

    def test_matches_dense_oracle(self):
        rng = np.random.default_rng(1)
        Y0, Ws, bs = synthetic_dnn(6, 16, 2, seed=1)
        Yd = Y0.to_dense()
        pattern = Yd != 0
        for W, b in zip(Ws, bs):
            Z = Yd @ W.to_dense()
            # bias applies only to stored entries of the product
            Zp = Z != 0
            Z = np.where(Zp, Z + b, 0.0)
            Z = np.where(Z > 0, np.minimum(Z, 32.0), 0.0)
            Yd = Z
        got = dnn_inference(Y0, Ws, bs).to_dense()
        assert np.allclose(got, Yd)

    def test_vector_bias(self):
        Y0 = Matrix.from_dense(np.array([[1.0, 1.0]]))
        W = Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 1.0]]), missing=0)
        bias = Vector.from_dense(np.array([0.5, -2.0]))
        Y = dnn_inference(Y0, [W], [bias], relu_clip=None)
        assert Y.get(0, 0) == 1.5 and Y.get(0, 1) is None  # 1-2 < 0: ReLU kills

    def test_layer_shape_mismatch(self):
        Y0 = Matrix.from_dense(np.ones((2, 3)))
        W = Matrix.from_dense(np.ones((4, 4)))
        with pytest.raises(InvalidValue):
            dnn_inference(Y0, [W], [0.0])

    def test_bias_count_mismatch(self):
        Y0 = Matrix.from_dense(np.ones((2, 3)))
        with pytest.raises(InvalidValue):
            dnn_inference(Y0, [], [0.0])

    def test_categories(self):
        Y = Matrix.from_coo([0, 2], [1, 3], [1.0, 1.0], nrows=4, ncols=5)
        assert dnn_categories(Y).tolist() == [0, 2]


class TestCF:
    def test_sgd_reduces_rmse_on_low_rank_data(self):
        rng = np.random.default_rng(0)
        U = rng.normal(0, 1, (25, 3))
        V = rng.normal(0, 1, (18, 3))
        dense = U @ V.T
        mask = rng.random((25, 18)) < 0.5
        r, c = np.nonzero(mask)
        R = Matrix.from_coo(r, c, dense[mask], nrows=25, ncols=18)
        model, hist = train_cf(R, rank=3, epochs=80, lr=0.2, reg=0.01, seed=1)
        assert hist[-1] < 0.3 * hist[0]
        assert len(hist) == 81

    def test_rmse_zero_for_exact_model(self):
        U = Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 1.0]]))
        V = Matrix.from_dense(np.array([[2.0, 0.0], [0.0, 3.0]]), missing=None)
        R = Matrix.from_coo([0, 1], [0, 1], [2.0, 3.0], nrows=2, ncols=2)
        assert cf_rmse(R, CFModel(U, V)) < 1e-12

    def test_predictions_masked_to_pattern(self):
        rng = np.random.default_rng(3)
        R = Matrix.from_coo([0, 1], [1, 0], [4.0, 2.0], nrows=2, ncols=2)
        model, _ = train_cf(R, rank=2, epochs=1, seed=0)
        P = model.predict(R)
        assert P.pattern().tolist() == R.pattern().tolist()

    def test_bad_rank(self):
        R = Matrix.from_coo([0], [0], [1.0], nrows=1, ncols=1)
        with pytest.raises(InvalidValue):
            train_cf(R, rank=0)

    def test_predict_one(self):
        U = Matrix.from_dense(np.array([[1.0, 2.0]]))
        V = Matrix.from_dense(np.array([[3.0, 4.0]]))
        assert CFModel(U, V).predict_one(0, 0) == 11.0
