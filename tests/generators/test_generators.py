"""Random and structured graph generators."""

import numpy as np
import pytest

from repro.graphblas.errors import InvalidValue
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    grid_graph,
    kronecker_graph,
    path_graph,
    random_bipartite,
    random_matrix,
    random_vector,
    rmat_graph,
    star_graph,
    synthetic_dnn,
)
from repro.graphblas import Matrix
from repro.lagraph import GraphKind, connected_components


class TestErdosRenyi:
    def test_gnp_edge_count_near_expectation(self):
        g = erdos_renyi_gnp(200, 0.05, seed=0)
        expected = 200 * 199 * 0.05
        assert 0.7 * expected < g.nvals < 1.3 * expected

    def test_gnp_no_self_loops(self):
        g = erdos_renyi_gnp(50, 0.2, seed=1)
        assert g.nself_edges == 0

    def test_gnp_undirected_symmetric(self):
        g = erdos_renyi_gnp(40, 0.1, kind="undirected", seed=2)
        assert g.is_symmetric_structure

    def test_gnp_p_zero_and_one(self):
        assert erdos_renyi_gnp(10, 0.0, seed=0).nvals == 0
        assert erdos_renyi_gnp(10, 1.0, seed=0).nvals == 90

    def test_gnp_bad_p(self):
        with pytest.raises(InvalidValue):
            erdos_renyi_gnp(10, 1.5)

    def test_gnp_deterministic_seed(self):
        a = erdos_renyi_gnp(30, 0.1, seed=7)
        b = erdos_renyi_gnp(30, 0.1, seed=7)
        assert a.A.isequal(b.A)

    def test_gnm_exact_edge_count(self):
        g = erdos_renyi_gnm(50, 100, seed=3)
        assert g.nvals == 100

    def test_gnm_undirected(self):
        g = erdos_renyi_gnm(30, 40, kind="undirected", seed=4)
        assert g.nedges == 40 and g.is_symmetric_structure

    def test_gnm_too_many_edges(self):
        with pytest.raises(InvalidValue):
            erdos_renyi_gnm(5, 100)

    def test_weighted(self):
        g = erdos_renyi_gnp(30, 0.2, weighted=True, seed=5)
        _, _, v = g.A.extract_tuples()
        assert v.min() >= 1 and v.max() <= 10 and np.unique(v).size > 1


class TestRMAT:
    def test_size_and_dims(self):
        g = rmat_graph(8, 8, seed=0)
        assert g.n == 256
        assert 0 < g.nvals <= 8 * 256

    def test_degree_skew(self):
        """Scale-free: max degree far exceeds the mean (vs flat for ER)."""
        g = rmat_graph(10, 16, seed=1)
        deg = g.out_degree.to_dense()
        er = erdos_renyi_gnm(1 << 10, int(g.nvals), seed=1)
        er_deg = er.out_degree.to_dense()
        assert deg.max() > 3 * er_deg.max()

    def test_undirected(self):
        g = rmat_graph(7, 8, kind="undirected", seed=2)
        assert g.is_symmetric_structure

    def test_weighted_sum_mode(self):
        g = rmat_graph(6, 16, seed=3, dedup=False)
        _, _, v = g.A.extract_tuples()
        assert v.max() >= 2  # duplicates summed into multiplicities

    def test_bad_probabilities(self):
        with pytest.raises(InvalidValue):
            rmat_graph(4, 4, a=0.9, b=0.2, c=0.2)

    def test_kronecker_power(self):
        B = Matrix.from_coo([0, 0, 1], [0, 1, 1], [1.0, 1.0, 1.0], nrows=2, ncols=2)
        g = kronecker_graph(B, 3)
        assert g.n == 8
        assert g.nvals == 27  # nnz(B)^3

    def test_kronecker_bad_power(self):
        B = Matrix.sparse_identity(2)
        with pytest.raises(InvalidValue):
            kronecker_graph(B, 0)


class TestStructured:
    def test_path(self):
        g = path_graph(5)
        assert g.nedges == 4 and g.kind is GraphKind.UNDIRECTED

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.nedges == 6
        assert g.out_degree.to_dense().tolist() == [2] * 6

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12 and g.nedges == 3 * 3 + 2 * 4

    def test_star(self):
        g = star_graph(7)
        deg = g.out_degree.to_dense(fill=0)
        assert deg[0] == 6 and deg[1:].tolist() == [1] * 6

    def test_complete(self):
        g = complete_graph(5)
        assert g.nedges == 10

    def test_all_connected(self):
        for g in (path_graph(9), cycle_graph(9), grid_graph(3, 3), star_graph(9), complete_graph(9)):
            labels = connected_components(g)
            assert len(set(labels.to_dense().tolist())) == 1


class TestRandomObjects:
    def test_random_matrix_density(self):
        A = random_matrix(40, 40, 0.1, seed=0)
        assert abs(A.nvals - 160) <= 1

    def test_random_matrix_dtypes(self):
        for dt in (np.bool_, np.int32, np.float64):
            A = random_matrix(10, 10, 0.3, dtype=dt, seed=1)
            assert A.dtype.np_dtype == np.dtype(dt)

    def test_random_vector(self):
        v = random_vector(100, 0.2, seed=2)
        assert abs(v.nvals - 20) <= 1

    def test_random_bipartite(self):
        B = random_bipartite(20, 30, 0.1, seed=3)
        assert B.shape == (20, 30)
        assert 20 < B.nvals < 100


class TestSyntheticDNN:
    def test_shapes(self):
        Y0, Ws, bs = synthetic_dnn(10, 64, 3, seed=0)
        assert Y0.shape == (10, 64)
        assert len(Ws) == len(bs) == 3
        assert all(W.shape == (64, 64) for W in Ws)

    def test_fan_in(self):
        _, Ws, _ = synthetic_dnn(2, 32, 1, fan_in=4, seed=1)
        # each column has at most fan_in entries (duplicates folded)
        from repro.graphblas import Vector
        from repro.graphblas import operations as ops

        ones = Matrix("INT64", 32, 32)
        ops.apply(ones, Ws[0], "one")
        cols = Vector("INT64", 32)
        ops.reduce_rowwise(cols, ones, "PLUS", desc="T0")
        assert cols.to_dense().max() <= 4

    def test_bias_default_negative(self):
        _, _, bs = synthetic_dnn(2, 8, 2, seed=2)
        assert all(b < 0 for b in bs)
