#!/usr/bin/env python3
"""Export process-wide metrics in Prometheus or JSON form.

Runs a workload with observability enabled (:func:`repro.obs.enable`) and
writes the accumulated registry — the same bytes a scrape endpoint would
serve.  Useful as a smoke test for the exposition pipeline and as a CI
gate (``--check`` lints the Prometheus text and cross-validates its
totals against the JSON snapshot).

Modes:

* ``export_metrics.py --demo [--scale N]`` — run BFS + PageRank +
  triangle counting on an RMAT graph with metrics on, then export.
* ``export_metrics.py`` (no demo) — export whatever the registry holds
  after importing the engine (empty unless ``GRAPHBLAS_OBS=on`` and the
  importing process already did work; mainly for pipelines that
  ``exec``-hook this module after their own workload).

Options:

* ``--format prometheus|json|both`` — what to write (default both).
* ``-o PREFIX`` — output path prefix (default ``metrics``; writes
  ``PREFIX.prom`` and/or ``PREFIX.json``); ``-`` prints to stdout.
* ``--check`` — lint the Prometheus exposition format and verify that
  every counter total and histogram count matches between the two
  representations; exit non-zero on any mismatch.
* ``--slow-ms`` — slow-op log threshold for the demo (default 0: log
  every plan, so the slow-op table is never empty in the output).

Run:  python scripts/export_metrics.py --demo --scale 10 --check -o -
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs


def run_demo(scale: int, slow_ms: float) -> None:
    from repro.generators import rmat_graph
    from repro.lagraph import bfs_level, pagerank, triangle_count

    obs.enable(slow_ms=slow_ms)
    print(f"# generating RMAT scale {scale} (n={1 << scale}) ...", file=sys.stderr)
    graph = rmat_graph(scale, 8, seed=42, kind="directed")
    print(f"# n={graph.n} edges={graph.nedges}", file=sys.stderr)
    bfs_level(0, graph)
    pagerank(graph, max_iters=10)
    triangle_count(graph)


def cross_validate(text: str, snap: dict) -> list[str]:
    """Check Prometheus sample values against the JSON snapshot totals."""
    errors = []
    # parse the text format back into {(name, labels-frozenset): value}
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body, value = line.rsplit(" ", 1)
        if "{" in body:
            name, rest = body.split("{", 1)
            labels = frozenset(
                pair.split("=", 1)[0] + "=" + pair.split("=", 1)[1]
                for pair in rest.rstrip("}").split(",") if pair
            )
        else:
            name, labels = body, frozenset()
        samples[(name, labels)] = float(value) if value != "+Inf" else float("inf")

    def fmt_labels(labels: dict) -> frozenset:
        return frozenset(f'{k}="{v}"' for k, v in labels.items())

    for name, series in snap.get("counters", {}).items():
        for s in series:
            key = (name, fmt_labels(s["labels"]))
            got = samples.get(key)
            if got is None:
                errors.append(f"counter {key} missing from prometheus text")
            elif abs(got - s["value"]) > 1e-9 * max(1.0, abs(s["value"])):
                errors.append(f"counter {key}: text={got} snapshot={s['value']}")
    for name, series in snap.get("histograms", {}).items():
        for s in series:
            key = (name + "_count", fmt_labels(s["labels"]))
            got = samples.get(key)
            if got is None:
                errors.append(f"histogram count {key} missing from text")
            elif int(got) != s["count"]:
                errors.append(f"histogram {key}: text={got} snapshot={s['count']}")
    return errors


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("-o", "--out", default="metrics",
                   help="output path prefix, or - for stdout")
    p.add_argument("--format", choices=("prometheus", "json", "both"),
                   default="both")
    p.add_argument("--demo", action="store_true",
                   help="run the BFS/PageRank/triangles demo first")
    p.add_argument("--scale", type=int, default=10, help="demo RMAT scale")
    p.add_argument("--slow-ms", type=float, default=0.0,
                   help="slow-op log threshold for the demo")
    p.add_argument("--check", action="store_true",
                   help="lint the exposition format and cross-validate totals")
    args = p.parse_args(argv)

    if args.demo:
        run_demo(args.scale, args.slow_ms)

    text = obs.prometheus_text()
    snap = obs.snapshot()

    status = 0
    if args.check:
        lint = obs.check_prometheus_text(text)
        for err in lint:
            print(f"lint: {err}", file=sys.stderr)
        mismatches = cross_validate(text, snap)
        for err in mismatches:
            print(f"mismatch: {err}", file=sys.stderr)
        if lint or mismatches:
            status = 1
        else:
            n = sum(1 for l in text.splitlines() if l and not l.startswith("#"))
            print(f"# check ok: {n} samples, totals agree", file=sys.stderr)

    if args.format in ("prometheus", "both"):
        if args.out == "-":
            sys.stdout.write(text)
        else:
            with open(args.out + ".prom", "w", encoding="utf-8") as f:
                f.write(text)
            print(f"wrote {args.out}.prom", file=sys.stderr)
    if args.format in ("json", "both"):
        payload = {"metrics": snap, "slow_ops": obs.slow_ops()}
        if args.out == "-":
            json.dump(payload, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            with open(args.out + ".json", "w", encoding="utf-8") as f:
                json.dump(payload, f, indent=2)
            print(f"wrote {args.out}.json", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
