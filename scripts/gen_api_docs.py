#!/usr/bin/env python3
"""Generate docs/API.md from the public API's docstrings.

The paper promises "documentation [and] a programmer's reference guide"
(section III).  This script walks the exported surface of every package and
renders first-docstring-paragraph reference tables, so the guide can never
drift silently from the code.

Run:  python scripts/gen_api_docs.py
"""

from __future__ import annotations

import inspect
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro
import repro.generators
import repro.graphblas
import repro.graphblas.backends
import repro.graphblas.capi
import repro.graphblas.compiled
import repro.graphblas.faults
import repro.graphblas.telemetry
import repro.graphblas.validate
import repro.harness
import repro.io
import repro.lagraph
import repro.obs
import repro.pygb
import repro.serve
import repro.stream

OUT = os.path.join(os.path.dirname(__file__), "..", "docs", "API.md")


def first_paragraph(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    para = doc.split("\n\n")[0].replace("\n", " ").strip()
    return para or "(undocumented)"


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def describe(module, name):
    obj = getattr(module, name)
    if inspect.isclass(obj):
        kind = "class"
    elif callable(obj):
        kind = "function"
    else:
        kind = "constant"
    return kind, obj


def render_module(f, module, title) -> None:
    f.write(f"\n## `{title}`\n\n")
    mod_doc = first_paragraph(module)
    f.write(f"{mod_doc}\n\n")
    names = list(getattr(module, "__all__", []))
    if not names:
        return
    f.write("| name | kind | summary |\n|---|---|---|\n")
    for name in names:
        try:
            kind, obj = describe(module, name)
        except AttributeError:
            continue
        summary = first_paragraph(obj) if kind != "constant" else "value"
        sig = signature_of(obj) if kind == "function" else ""
        cell = f"`{name}{sig}`" if sig and len(sig) < 60 else f"`{name}`"
        cell = cell.replace("|", "\\|")
        summary = summary.replace("|", "\\|")
        if len(summary) > 160:
            summary = summary[:157] + "..."
        f.write(f"| {cell} | {kind} | {summary} |\n")


RESILIENCE_SECTION = """
## Error model & resilience

The engine follows the GraphBLAS C API's two-tier error model
(`repro.graphblas.errors`): *API errors* (bad dimensions, bad indices,
uninitialized objects) are detected in the front-end, while *execution
errors* (out of memory, corrupt objects) surface from the back-end.
Internally everything is an exception; the `repro.graphblas.capi` facade
converts exceptions to `GrB_Info` codes at the boundary, exactly like the
IBM implementation's try/catch contract (paper section II.B).

The C-API boundary is **transactional**: every `GrB_*` call snapshots its
Matrix/Vector/Scalar arguments before running and rolls all of them back
bit-identically if the back-end raises — including `MemoryError`, which is
uniformly mapped to `GrB_OUT_OF_MEMORY`.  A failed call therefore leaves
no partial update behind (pending logs included), and retrying it after
the failure clears produces exactly the result of an undisturbed call.
The message of the last failed call is available per-thread via
`GrB_error()`.

Two supporting subsystems make this testable:

* `repro.graphblas.faults` — a named-injection-point fault harness.
  `faults.inject("spgemm.flop")` arms a deterministic (nth-call) or
  seeded-probabilistic fault at any of the registered points (`alloc`,
  `build`, `assemble`, `setElement`, `removeElement`, kernel points such
  as `spgemm.flop` / `mxv.push` / `mxv.pull` / `ewise` / `apply` /
  `select` / `reduce` / `transpose` / `extract` / `assign` /
  `kronecker`, `io.read` / `io.write`, and the serving-layer point
  `serve.exec`).  When no fault is armed the hooks cost one
  module-attribute read per operation (`faults.ENABLED` is `False`),
  keeping the disabled overhead below the noise floor.
* `repro.graphblas.validate` — a deep structural checker in the spirit of
  SuiteSparse's `GxB_check` (sorted duplicate-free indices, monotone
  `indptr`, pending-log consistency, dual CSR/CSC agreement), exposed
  through the C API as `GrB_Matrix_check` / `GrB_Vector_check` and used
  by `tests/resilience/` to prove operands survive injected faults
  uncorrupted.

Above the C-API boundary, the serving layer (`repro.serve`) extends the
same taxonomy to multi-tenant operation: admission **shedding** raises
`Overloaded` (a typed rejection with a machine-readable `reason`, never
an unbounded queue), repeated backend failures trip a per-backend
**circuit breaker** that routes queries to the reference/scipy fallback
chain (half-open probes restore the primary), and a query that exhausts
retries and every fallback surfaces as `QueryFailed` with the last
execution error as `__cause__`.  Caller errors (`InvalidValue`,
`DeadlineExceeded`, `Cancelled`) stay terminal and are never retried.
See the "Serving" section below.

Run the fault-injection suite with `scripts/run_resilience.sh`
(equivalently `pytest -m resilience`).
"""


BACKENDS_SECTION = """
## Kernel backends & the op pipeline

Every Table-I operation runs through a two-stage pipeline
(`repro.graphblas.plan` → `repro.graphblas.backends`): the *planner*
resolves string specs to operator objects, applies descriptor flags, and
validates shapes/domains up front, producing a typed `OpPlan`; the
*dispatcher* hands that plan to the selected `KernelBackend`.  All
backends funnel results through the same accum-then-mask write step, so
they are interchangeable per call, per block, or process-wide:

```python
import repro.graphblas as gb

gb.mxm(C, A, B, "PLUS_TIMES", backend="scipy")   # per call
with gb.backend("reference"):                     # per block (thread-local)
    bfs_level(0, graph)
gb.set_default_backend("differential")            # process-wide
# or: GRAPHBLAS_BACKEND=reference pytest tests/graphblas
```

Built-in engines:

* **`optimized`** (default) — the vectorized NumPy engine: SpGEMM method
  selection, push/pull mxv direction switching, masked kernels.
* **`reference`** — the dense spec-literal mimic promoted to a full
  engine; every op is a loop written line-by-line from the spec.  Slow,
  but an oracle: the whole `tests/graphblas` suite passes under it.
* **`scipy`** — bridges mxm/mxv/vxm (PLUS_TIMES) and eWiseAdd/eWiseMult
  (PLUS/TIMES) to `scipy.sparse` CSR kernels, with a dual pattern/value
  computation so cancellation zeros stay structural.  Declines anything
  else and falls back to `optimized`; declines everything when scipy is
  not installed.
* **`compiled`** — the JIT tier: monomorphic scalar kernels generated
  per `(add monoid, multiply op, value type)` and compiled with numba
  (`pip install .[compiled]`) or, failing that, the system C compiler.
  Serves mxm/mxv/vxm over built-in semirings with **true terminal early
  exit** (LOR/LAND/MIN/MAX/TIMES dots stop at the first annihilator,
  per element, not per 64-wide block); declines everything else down to
  `optimized`.  See "Compiled kernels" below.
* **`differential`** — runs a *primary* engine (`optimized` by default;
  `primary="compiled"` or `GRAPHBLAS_DIFF_PRIMARY` puts the JIT tier
  under test), then re-executes every operation whose dense replay fits
  `GRAPHBLAS_DIFF_BUDGET` cells (default `1<<22`) on `reference` and
  compares pattern + values, raising `BackendDivergence` on mismatch;
  over-budget ops are counted as skipped
  (`get_backend("differential").stats`).  CLI:
  `scripts/run_differential_check.py --scale 14`.

The dispatch chain each plan walks (every decline emits a
`backend.fallback` telemetry decision):

| selected backend | serves | declines to |
|---|---|---|
| `optimized` | everything | — (terminal) |
| `reference` | everything | — (terminal) |
| `compiled` | mxm/mxv/vxm, built-in semirings, uniform dtypes | `optimized` |
| `scipy` | mxm/mxv/vxm (PLUS_TIMES), eWiseAdd/Mult (PLUS/TIMES) | `optimized` |
| `differential` | everything (via its primary's chain) | — (terminal) |

Selection is observable (`backend.dispatch` / `backend.fallback`
telemetry decisions), settable at the C-API level
(`capi.GxB_Backend_set/get`), and extensible: `register_backend(name,
factory)` adds an engine; a backend implements only what it supports and
declares a `fallback` for the rest.  `Matrix.to_scipy/from_scipy` and
`Vector.to_scipy/from_scipy` convert at the boundary.
"""


COMPILED_SECTION = """
## Compiled kernels

`repro.graphblas.compiled` is the code-generation analogue of
SuiteSparse's ~960 pre-compiled semiring built-ins.  Where the
performance engine specializes *NumPy closures* (vectorized, but
structurally unable to stop mid-row), this tier renders one monomorphic
scalar kernel set per `(add, mult, type)` from a template library —
Gustavson SpGEMM (two-phase count/fill with a sparse accumulator),
sorted-intersection dot products for fused-mask mxm, and push/pull
mxv/vxm — and compiles it with the first usable toolchain:

1. **numba** — `@njit(nogil=True)` over the generated Python source
   (`pip install .[compiled]`);
2. **cc** — the same kernels as generated C (`-O3 -fwrapv
   -ffp-contract=off`), built with the system compiler, loaded via
   `ctypes` (which releases the GIL for the PR-5 row-parallel pool),
   and content-addressed under `GRAPHBLAS_COMPILED_DIR` so warm
   artifacts survive across processes;
3. **python** — the generated source interpreted as-is: far too slow to
   auto-select, but an oracle for parity-testing the template logic
   (`GRAPHBLAS_COMPILED_TOOLCHAIN=python`).

The headline semantic upgrade is **true terminal early exit**: for
monoids with an annihilator (LOR's `true`, LAND's `false`, MIN/MAX
extrema, TIMES' 0) the dot and pull loops break on the exact term that
reaches it — the vectorized engine can only skip 64-wide blocks.  Exit
behavior is reported per op in `compiled.early_exit` telemetry
(terminated/eligible counts, scanned terms, summed hit depth).

Built kernel sets live in an LRU mirroring `engine.kernel_for`
(`compiled.kernel_for`, `compiled.cache_stats()`); cache traffic shows
up as `compiled.kernel` telemetry (`event="compile"` with wall seconds,
`event="hit"`), the `graphblas_compile_seconds` histogram and
`graphblas_compiled_kernel_cache` gauges in the obs registry, the
`compiled_hits`/`compiled_compiles` fields of `plan.done`, and the
`cmp` column of `obs.explain` reports.

Numeric contract: integer and order-insensitive (MIN/MAX/logical)
results are bit-identical to the optimized engine; float PLUS/TIMES
reductions can differ in the last ulp (numpy's `reduceat` unrolls long
segments 8-wide, the scalar SPA folds strictly left-to-right).  With
the tier disabled every result is byte-for-byte the optimized engine's.

Scope guards: built-in semirings only (no user-defined or positional
ops), all argument dtypes equal to the output dtype, no accumulator on
the compiled path, dimensions under `1<<24`.  Everything else declines
to `optimized`; `GRAPHBLAS_BACKEND=compiled` with no toolchain at all
warns once and falls back — never raises.

Knobs and control surface:

| surface | what |
|---|---|
| `GRAPHBLAS_COMPILED_TOOLCHAIN` | `auto` (default) / `numba` / `cc` / `python` / `off` |
| `GRAPHBLAS_COMPILED_CACHE` | kernel LRU capacity (default 128) |
| `GRAPHBLAS_COMPILED_DIR` | cc artifact directory (default per-user tempdir) |
| `capi.GxB_Compiled_set(toolchain, cache_size=...)` | runtime override of both knobs |
| `capi.GxB_Compiled_get()` | preference, resolved toolchain, cache counters |

`benchmarks/bench_compiled_kernels.py --scale 14 --out BENCH_PR10.json`
reproduces the committed numbers (warm compiled Gustavson >= 1.5x over
optimized, early-exit LOR_LAND pull >= 3x on selective masks, zero
differential divergences).
"""


TELEMETRY_SECTION = """
## Telemetry & diagnostics

`repro.graphblas.telemetry` instruments the whole engine — every Table-I
operation, the kernel decision points, and the LAGraph algorithms — with
a thread-local collector that costs one module-attribute read
(`telemetry.ENABLED`, ~20 ns) when nothing is listening.  Attach a
collector with `telemetry.collect()` (context manager) or
`telemetry.enable()` / `telemetry.disable()`, then read results three
ways:

* **Burble** — a SuiteSparse-`GxB_BURBLE`-style live diagnostic stream.
  `telemetry.collect(burble=True)` (or `capi.GxB_Burble_set(True)`)
  prints one line per operation with wall time and output `nvals`, plus
  kernel decisions as they happen: SpGEMM method selection, push/pull
  direction with the frontier density that drove it, dot-product early
  exits, format switches, and zombie/pending-tuple assembly.
* **Snapshot** — `telemetry.snapshot()` returns a JSON-serializable dict
  of per-op counters (`calls`, `seconds`, `out_nvals`, `flops` for
  mxm/mxv/vxm, `bytes_moved` for import/export and file I/O), decision
  counts, and span timings.  The same dict is available at the C-API
  level as `capi.global_stats()`.
* **Chrome trace** — `Collector.write_chrome_trace(path)` (or
  `scripts/export_trace.py`) emits Chrome `trace_event` JSON: ops and
  algorithm spans as complete events, decisions as instants.  Load the
  file in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).

Algorithm spans cover `bfs`, `sssp.bellman_ford` / `sssp.delta_stepping`,
`triangles`, `components.fastsv`, `pagerank`, and betweenness, each with
per-iteration instant records (frontier sizes, residuals, buckets,
rounds).  The direction-optimization threshold is tunable at runtime via
`repro.graphblas.set_switch_threshold()`.

The benchmark harness grows a `--telemetry` flag that wraps every bench
in a collector and writes `<name>.telemetry.json` next to the results;
`benchmarks/bench_telemetry_overhead.py` pins the disabled-path overhead
(see `benchmarks/results/telemetry_overhead.txt`).  Demo:
`scripts/run_telemetry_demo.sh` runs BFS + PageRank on an RMAT graph
with burble on and exports a trace.
"""

GOVERNOR_SECTION = """
## Resource governance & recovery

`repro.graphblas.governor` puts long-running graph work under an
**execution governor**: a thread-local `ExecutionContext` that enforces a
memory budget and a wall-clock deadline, carries a cooperative
`CancellationToken`, applies a `RetryPolicy` around kernel execution, and
drives checkpoint/resume for the iterative LAGraph algorithms.  Like
faults and telemetry, the disabled path costs one module-attribute read
(`governor.ACTIVE`); with no context entered nothing changes.

```python
from repro.graphblas import governor

ctx = governor.ExecutionContext(
    memory_budget=64 << 20,            # bytes, estimated per operation
    deadline=60.0,                     # seconds from __enter__
    retry=governor.RetryPolicy(attempts=3, seed=7),
)
with ctx:
    pagerank(graph, checkpoint="/tmp/pr.npz")
```

* **Admission control** — every planner submits its `OpPlan` to the
  governing context *before any output is allocated*.  The estimated
  result footprint (an nnz-based bound per op; flops-based for `mxm`)
  is compared against the budget: within budget → admitted; over budget
  → `mxm`/`mxv`/`vxm` are **re-planned as tiled spill execution** (see
  "Bounded-memory execution" below) when spilling is enabled; other
  ops — or a context with spilling off — are **degraded** to the first
  of `degrade_backends` (default `("reference", "scipy")`) that
  supports it, skipping that backend's own fallback chain; no route →
  `BudgetExceeded`, whose message reports the estimated vs available
  bytes and why each recovery route (spill, degrade) was unavailable.
  Because rejection happens at plan time, the inputs are untouched and
  still pass `graphblas.validate`.
* **Deadline & cancellation** — `ctx.cancel()` (any thread) or an
  expired deadline makes the next *poll* raise `Cancelled` /
  `DeadlineExceeded`.  Poll points sit between algorithm iterations, at
  SpGEMM method boundaries, at mxv direction switches, per concat/split
  tile, and at the top of `wait()` — all positions where every object is
  fully consistent, so a cancelled computation leaves valid operands.
* **Retry** — `RetryPolicy(attempts, base_delay, max_delay, jitter,
  seed, transient=...)` re-runs a failed kernel with exponential backoff
  and seeded jitter; only exceptions listed in `transient` (default
  `OutOfMemory`) are retried, and the context's deadline is re-checked
  between attempts.  `governor.with_retry(fn, policy=...)` applies the
  same policy to arbitrary callables.
* **Checkpoint/resume** — `bfs`, `bellman_ford_sssp`, `pagerank`,
  `connected_components`, `betweenness_centrality`, and `dnn_inference`
  accept `checkpoint=` (a path, a `governor.Checkpoint(path, every=k)`,
  or a callable) and `resume=`.  Snapshots serialize the loop-carried
  state through `repro.io.checkpoint.save_state` — a single `.npz`
  written to a temp file and atomically renamed, so a crash mid-save
  preserves the previous snapshot.  Resume restores containers
  bit-identically (`load_checkpoint` rejects a snapshot written by a
  different algorithm), and because each loop body depends only on the
  loop-carried state, a killed-and-resumed run produces exactly the
  bytes of an uninterrupted one.

New `GrB_Info` codes cross the C-API boundary: `GxB_BUDGET_EXCEEDED`,
`GxB_DEADLINE_EXCEEDED`, `GxB_CANCELLED`; `capi.GxB_Context_new()`
constructs a context from C-API code.  Every governor decision —
`governor.admit` / `governor.degrade` / `governor.reject` /
`governor.cancel` / `governor.retry` / `governor.checkpoint` /
`governor.resume` — is a telemetry decision event, aggregated under the
`"governor"` key of `telemetry.snapshot()`.

The environment knobs `GRAPHBLAS_GOVERNOR_BUDGET` (bytes; `k`/`m`/`g`
suffixes) and `GRAPHBLAS_GOVERNOR_DEADLINE` (seconds) wrap each
resilience test in a governed context (`governor.env_limits()`); the CI
governor leg runs the whole suite under `64m` / `60`.  All
governor-related environment parsing is hardened by
`repro.graphblas.envutil`: a malformed value falls back to the default
with a single `RuntimeWarning` instead of crashing at import.
"""


TILED_SECTION = """
## Bounded-memory execution

`repro.graphblas.tiled` turns the governor's "fail or degrade" answer to
an oversized operation into "run anyway, bounded memory".  A
`TiledMatrix` partitions a matrix into a 2D grid of hypersparse blocks;
`mxm_tiled` / `mxv_tiled` schedule work stripe by stripe; and cold tiles
are spilled to disk as atomic `.npz` files and reloaded on demand under
an LRU resident-byte budget (`SpillPool`).  The route is transparent:
when an admitted plan's estimated footprint exceeds the context budget
and spilling is enabled, the dispatcher re-plans `mxm`/`mxv`/`vxm` as
tiled execution instead of degrading or rejecting —

```python
from repro.graphblas import governor

with governor.ExecutionContext(
    memory_budget=64 << 20, spill_budget=64 << 20
) as ctx:
    gb.mxm(C, A, A, "PLUS_TIMES")      # runs tiled, same bytes out
assert ctx.stats["tiled"] == 1
```

* **Bit-identical results** — the tiled path reproduces the in-memory
  Gustavson fold exactly (floats included): partial products stay
  unreduced across inner tiles, are concatenated in ascending `k`-tile
  order, stable-sorted by output coordinate, and reduced once per output
  stripe.  When a stripe's expansion would itself exceed the budget (RMAT
  hub rows), `mxm_tiled(..., chunk_bytes=...)` partitions the stripe's
  *rows* by predicted flops (`TiledMatrix.major_lengths()`) and folds
  each chunk independently — sound because the fold never mixes partials
  from different output rows — spilling transient chunk pieces through
  the pool and assembling them per grid tile.  The hypothesis suite
  proves parity across all four `(by_row/by_col) x (standard/hyper)`
  formats.
* **Fault-hardened spill I/O** — spill writes go through the atomic
  temp-file + rename writer shared with checkpointing, trip the
  `io.write`/`io.read` fault points, and retry transient failures with
  the governing context's seeded `RetryPolicy`.  A crash mid-spill
  leaves only a stale temp file, never a torn tile;
  `rollback_partial_spills` (invoked on pool close and by the
  fault-injection suite) removes every artifact of an aborted
  operation.  `tests/resilience/test_spill_faults.py` proves injected
  faults never corrupt operands or leak spill files.
* **Bounded streaming** — `TiledMatrix.iter_stripes(max_bytes=...)`
  yields sorted coordinate blocks of bounded size (per-tile row slabs
  via `major_slab`), so a result bigger than memory can be consumed
  without ever materializing a full stripe.
  `benchmarks/bench_spill_tiled.py` streams RMAT-16 `A*A` under a
  64 MiB budget this way; the committed `BENCH_PR6.json` records peak
  RSS within `budget * 1.2` against a multi-GiB in-memory expansion.

Configuration: `GRAPHBLAS_SPILL` (on/off), `GRAPHBLAS_SPILL_DIR`, and
`GRAPHBLAS_SPILL_BUDGET` (`k`/`m`/`g` suffixes) parse through
`envutil` with warn-once fallback; per-context `spill=` / `spill_dir=` /
`spill_budget=` kwargs override them, and `governor.set_spill_config`
(C API: `capi.GxB_Spill_set` / `GxB_Spill_get`) installs process-wide
overrides.  `method="tiled"` on the descriptor forces the tiled path for
an in-budget op.  Telemetry records `governor.tile_plan`,
`governor.spill`, and `governor.reload` decisions with byte counts.
"""


ENGINE_SECTION = """
## Performance engine

`repro.graphblas.engine` is the hot-path acceleration layer: three
orthogonal optimizations behind one switch, each bit-for-bit identical
to the generic kernels it replaces (`GRAPHBLAS_ENGINE=off` or
`engine.set_engine(False)` restores the baseline exactly, which is how
the differential and parity suites cross-check it).

```python
from repro.graphblas import engine

engine.set_engine(True, workers=4)      # or GRAPHBLAS_ENGINE_WORKERS=4
engine.kernel_cache_stats()             # hits / misses / evictions
engine.set_engine(False)                # bit-identical baseline
```

* **Specialized semiring kernels** — `engine.kernel_for(semiring,
  out_type, ...)` compiles a `SpecializedKernel` binding the add/mult
  ufuncs, output cast, and terminal condition as closures, keyed on
  `(add, mult, out_type, mask kind, accum, method)` in an LRU cache
  (`GRAPHBLAS_ENGINE_CACHE`, default 64 entries).  The Gustavson
  expansion, the dot-product loop, and push/pull mxv all consult the
  cache; non-builtin or positional operators fall back to the generic
  path (`unspecializable` in the stats).
* **Dual-format storage** — a Matrix lazily caches its opposite
  orientation (CSR↔CSC twin) with mutation-epoch invalidation, so
  pull-phase `mxv`/`vxm` and transposed reads after the first
  conversion are O(1); `transpose` into a fresh matrix becomes a
  pointer swap that also hands the output a warm twin.  Every serve and
  fill is a `engine.twin` / `engine.transpose` telemetry decision.
* **Parallel row-blocked kernels** — big-enough SpGEMM expansions and
  pull mxv segment reductions are split at row boundaries (so
  concatenated block outputs equal the serial result bit for bit) and
  run on a shared thread pool.  The requested worker count
  (`Descriptor(nthreads=...)` / `GxB_NTHREADS`, else
  `GRAPHBLAS_ENGINE_WORKERS`) is submitted to the execution governor,
  which clamps it to what the memory budget funds — degrading to
  serial, never rejecting.  Per-block timings appear as
  `engine.block` telemetry spans.

Supporting fast paths ride the same switch: `wait()` skips the sort
and merge when the pending log is already sorted, unique, and
zombie-free (`fast_path` field on the `assembly` telemetry decision);
`from_coo` detects presorted input and otherwise sorts once on a fused
`major * n_minor + minor` key; and the planner memoizes string →
operator resolution (`plan.resolver_cache_stats()`).

`benchmarks/bench_parallel_engine.py` measures the engine-on vs
engine-off ratio end to end and asserts result parity; the committed
`BENCH_PR5.json` records the RMAT-14 margins.  The C API exposes the
engine as `GxB_Engine_set` / `GxB_Engine_get`.
"""


OBS_SECTION = """
## Observability

`repro.obs` is the production metrics layer on top of the telemetry
stream: where a `Collector` traces *one run on one thread*, the
observability registry aggregates *every thread since process start*
into the cumulative counters and latency percentiles a scraper expects.
`obs.enable()` (or `GRAPHBLAS_OBS=on`, or `capi.GxB_Obs_set(True)`)
installs a `MetricsSink` into the telemetry module; from then on every
instrumented site — Table-I op timers, backend dispatch, governor
verdicts, spill traffic, engine events — feeds a process-wide
`MetricsRegistry` with no collector attached and no call-site changes.

* **Registry** — per-thread shards (plain dicts, no lock on the hot
  path) merged at read time; shards survive thread exit so counters
  never go backwards.  Counters, last-write/callback gauges
  (kernel-cache occupancy, pool workers, resolver cache), and
  log2-bucketed histograms with geometric-interpolation p50/p90/p99.
* **Exposition** — `obs.prometheus_text()` renders Prometheus text
  format 0.0.4 (cumulative `_bucket`/`_sum`/`_count` series,
  HELP/TYPE, escaped labels; `obs.check_prometheus_text` lints it);
  `obs.json_snapshot()` is the same data as JSON;
  `obs.start_emitter(interval_s=30)` (or `GRAPHBLAS_OBS_EMIT_S`)
  appends periodic JSON lines to a stream.  CLI:
  `scripts/export_metrics.py --demo --check` runs a workload, writes
  both formats, and cross-validates their totals.  C API:
  `capi.GxB_Metrics_get(format="snapshot"|"json"|"prometheus")`.
* **EXPLAIN** — `obs.explain(fn, *args)` runs one call under per-plan
  event capture and returns an `ExplainReport`: one row per executed
  `OpPlan` with route (direct/tiled/degraded), backend, SpGEMM
  method / mxv direction, estimated vs actual result bytes,
  kernel-cache delta, tile/spill counts, and wall time — so "why was
  this op slow" is answerable without a trace viewer.  The same
  per-plan records feed the **slow-op log** (`obs.slow_ops()`, a
  bounded min-heap of the worst plans over
  `GRAPHBLAS_OBS_SLOW_MS`, capacity `GRAPHBLAS_OBS_SLOW_N`).

```python
from repro import obs
import repro.lagraph as lg

obs.enable(slow_ms=50)
lg.pagerank(graph)
print(obs.prometheus_text())          # scrape body
report = obs.explain(lg.bfs_level, 0, graph)
print(report.text())                  # per-plan EXPLAIN table
worst = obs.slow_ops()                # slowest plans since enable()
```

Disabled cost is unchanged from plain telemetry — one module-attribute
read per site; enabled cost is a few shard-dict writes per record
(`benchmarks/bench_obs_overhead.py`; the committed `BENCH_PR7.json`
records the disabled guard at ~17 ns and the metrics-on geomean at
~1.2x across the Table-I kernels).  The CI metrics-smoke leg runs the
obs + telemetry suites, the exporter round-trip, a 4-thread Chrome
trace merge (`scripts/export_trace.py --demo --threads 4`), and the
overhead budget.
"""


STREAM_SECTION = """
## Streaming & incremental maintenance

`repro.stream` turns the pending-tuple machinery into a streaming-graph
layer.  The non-blocking update log (`repro.graphblas.updatelog`) that
every `set_element`/`remove_element` already flows through is shared
between `Matrix` and `Vector`; with `A.track_deltas(True)` each
assembled `wait()` additionally emits a **`DeltaBatch`** — the window's
insertions, deletions, and the exact entries they displaced — and
`A.deltas_since(epoch)` returns the contiguous chain of batches between
two adjacency epochs (or `None` when a bulk mutation broke the chain).
A batch exposes `new_edges()` / `overwritten_edges()` /
`removed_edges()` / `touched_rows()` and renders as a hypersparse
matrix via `as_matrix()`.

* **`GraphStream(n, kind=, window=, width=)`** — timestamped edge-batch
  ingestion (`ingest(src, dst, ts, weights=None)`, timestamps must be
  non-decreasing; `flush()` closes the open window at end-of-stream).
  `window="tumbling"` accumulates the graph and uses windows as batch
  boundaries; `window="sliding"` keeps only edges with timestamps in
  the trailing `width` horizon, so window closes also *remove* expired
  edges (a coordinate expires only when no in-horizon event still
  asserts it).  Under an active governor `ExecutionContext` with a
  memory budget, over-budget windows are **chunked, not rejected**:
  the update log is applied in budget-sized slices, each settled by
  its own `wait()`, and the delta chain stays contiguous.  Every close
  records `stream_edges_total` / `stream_windows_total` /
  `stream_window_assembly_seconds` / `stream_edges_per_second` in
  `repro.obs` and wraps assembly in a `stream.window` telemetry span —
  `obs.explain` stamps plans executed inside it with a `win` column.
* **Incremental maintainers** — each caches one algorithm's result plus
  the epoch it was computed at; `update()` advances it from the delta
  chain and falls back to the from-scratch algorithm (its parity
  oracle) when the chain is broken or the delta violates its
  assumptions, counting `recomputes`:
  * `DynamicPageRank(graph, damping=, tol=)` — carries ranks *and* the
    L1 residual across windows; a window adjusts the residual only at
    vertices whose out-links changed, then runs batched
    Gauss–Southwell push sweeps until `‖r‖₁ ≤ tol`.  Parity contract:
    `‖p − p*‖₁ ≤ 2·tol/(1−damping)` against the from-scratch
    `pagerank` (which also accepts `init=` for plain warm restarts).
  * `IncrementalComponents(graph)` — insertions can only merge
    components, so labels advance via a min-label union-find
    (`components.merge_labels`); windows with physical deletions
    recompute with FastSV.  **Exact** parity.
  * `IncrementalTriangles(graph)` — per-delta wedge counting
    (`triangles.triangle_count_delta`, reverse-undo on the final
    adjacency, so the sum telescopes to the exact count difference).
    **Exact** parity.
* **Graph cache patching** — `lagraph.Graph` cached properties
  (`out_degree`, `in_degree`, `AT`, `nself`) are epoch-checked and
  *patched forward* through the delta chain instead of recomputed; the
  old staleness footgun (mutating `A` without `delete_cached()`) is
  gone.
* **Log-depth gauges** — with `obs.enable()`,
  `graphblas_pending_tuples` / `graphblas_zombies` report unassembled
  log depth across live matrices and vectors.

```python
from repro.stream import (GraphStream, DynamicPageRank,
                          IncrementalComponents, IncrementalTriangles)

st = GraphStream(n, window="sliding", width=60.0)
pr, cc = DynamicPageRank(st.graph), IncrementalComponents(st.graph)
for win in st.ingest(src, dst, timestamps):
    ranks, sweeps = pr.update()          # O(delta) residual push
    labels = cc.update()                 # union-find or FastSV fallback
    print(win.index, win.edges_per_s, len(win.deltas))
```

`benchmarks/bench_stream_ingest.py` is the acceptance harness: an
RMAT-14 tumbling stream where every window is parity-asserted against
the from-scratch algorithms while both sides are timed (the committed
`BENCH_PR8.json` records a 5.8x median combined speedup and a 32 MiB
peak-RSS delta under the 64 MiB governor envelope); the CI
`stream-smoke` leg replays it at scale 11 plus the stream, update-log
property, and graph-cache suites.
"""


SERVE_SECTION = '''
## Serving

`repro.serve` is a long-lived, in-process, multi-tenant serving layer:
one `GraphServer` owns a set of named graphs, publishes immutable
copy-on-write snapshots of each, and answers concurrent algorithm
queries over a worker pool while staying up through faults, overload,
and misbehaving backends.

```python
from repro.serve import GraphServer

with GraphServer(workers=4) as srv:
    srv.add_graph("social", n=1 << 20)          # or graph=, or stream=
    srv.ingest("social", src, dst)
    srv.publish("social")                        # atomic snapshot swap

    ranks = srv.query("pagerank", graph="social")            # sync
    t = srv.submit("bfs", graph="social", source=0,          # async
                   tenant="alice")
    levels = t.result(timeout=30)                # ticket: outcome,
    print(t.backend, t.tier, t.exec_s)           # backend, tier, timings
```

**Snapshots.** `publish()` flushes the graph's ingest window and swaps
in a new immutable snapshot under a monotone epoch; queries pin the
epoch current at submit time (`ticket.snapshot`), so a query computes
exactly what a direct call on that snapshot computes — bit-for-bit,
regardless of concurrent ingest and republication
(`tests/serve/test_snapshot_property.py` drives random interleavings
over all four storage formats, plus real writer/reader threads).

**Tenancy and admission.** The bounded admission queue sheds instead of
queueing unboundedly: at capacity each tenant is held to its fair share
(`capacity // active_tenants`), and `register_tenant` attaches a
`TenantPolicy` (per-request `memory_budget`, `deadline_s`, retry
`attempts`, a hard `max_queue` cap, `degrade=False` to opt out of
degraded tiers).  Rejection raises `Overloaded` with a machine-readable
`reason` (`queue_full` / `tenant_quota` / `tenant_limit` /
`deadline_watermark`).  Every request executes under its own governor
`ExecutionContext` built from the tenant policy, so budgets, deadlines,
and cancellation compose with the whole engine stack (tiling, spill,
checkpoint).

**Failure taxonomy.**  Serving failures map onto the engine's two-tier
error model: *caller errors* (`InvalidValue` for an unknown algorithm
or graph, `DeadlineExceeded`, `Cancelled`) are terminal and re-raised
from `ticket.result()` as-is; *execution faults* (`OutOfMemory`,
`BudgetExceeded`, backend exceptions) are absorbed by the resilience
ladder below and only surface — wrapped in `QueryFailed`, with the
original exception as `__cause__` — when every rung is exhausted.

**The resilience ladder**, outermost to innermost:

1. **retry with seeded backoff** — transient faults re-run on the same
   backend under `serve.backoff.Backoff` (capped exponential, seeded
   jitter; the same class drives the governor's kernel-level
   `RetryPolicy`); a `BudgetExceeded` retry re-runs with the governor's
   spill path forced on.
2. **per-backend circuit breakers** — a backend whose retries exhaust
   repeatedly trips open after `breaker_threshold` consecutive
   failures and is skipped outright; after `breaker_reset_s` a single
   half-open probe slot re-admits it, and `breaker_probes` probe
   successes close it again.
3. **failover** — the query falls through the backend chain
   (`backend="optimized"`, then `fallbacks=("reference", "scipy")`),
   still returning the exact answer.
4. **degradation tiers** — queue pressure walks `full` → `lite`
   (performance engine off) → `reference` (reference backend first) at
   the `lite_watermark` / `reference_watermark` load fractions;
   results stay bit-identical because every tier runs the same
   validated kernels.  Past that, admission sheds (`Overloaded`).

**Operations.**  `health()` / `ready()` / `stats()` report liveness,
tier, breaker states, and outcome counts; `drain()` finishes queued
work and refuses new submits (`ServerClosed`); serve metrics
(`serve_requests_total`, `serve_request_seconds`, `serve_shed_total`,
`serve_retries_total`, `serve_breaker_transitions_total`,
`serve_queue_depth`, `serve_inflight`, `serve_breaker_state`,
`serve_tier`, ...) land in the `repro.obs` registry for Prometheus
exposition.  Defaults come from `ServeConfig`, overridable per server
(constructor), process-wide (`capi.GxB_Serve_set` / `GxB_Serve_get`),
or from `GRAPHBLAS_SERVE_WORKERS` / `_QUEUE_DEPTH` / `_DEADLINE_S` /
`_BUDGET` / `_BREAKER_THRESHOLD` / `_BREAKER_RESET_S`.

`benchmarks/bench_serve.py` is the acceptance harness: 10k
mixed-tenant queries over an RMAT snapshot where every answer is
checked against a direct call, interleaving fault-free and
fault-injected rounds (the committed `BENCH_PR9.json` records the
chaos goodput ratio, p50/p99 latencies, shed/retry/breaker counts, and
the peak-RSS delta under the governor envelope); the CI `serve-smoke`
leg replays it at scale 11 plus the `tests/serve` suite under a 64 MB
budget and 60 s deadline.
'''


def main() -> None:
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w", encoding="utf-8") as f:
        f.write("# API reference\n\n")
        f.write(
            "Generated by `scripts/gen_api_docs.py` from the public API's\n"
            "docstrings — regenerate after changing any exported surface.\n"
        )
        f.write(RESILIENCE_SECTION)
        f.write(BACKENDS_SECTION)
        f.write(COMPILED_SECTION)
        f.write(TELEMETRY_SECTION)
        f.write(GOVERNOR_SECTION)
        f.write(TILED_SECTION)
        f.write(ENGINE_SECTION)
        f.write(OBS_SECTION)
        f.write(STREAM_SECTION)
        f.write(SERVE_SECTION)
        render_module(f, repro.graphblas, "repro.graphblas")
        render_module(f, repro.graphblas.engine, "repro.graphblas.engine")
        render_module(f, repro.graphblas.backends, "repro.graphblas.backends")
        render_module(f, repro.graphblas.compiled, "repro.graphblas.compiled")
        render_module(f, repro.graphblas.plan, "repro.graphblas.plan")
        render_module(f, repro.graphblas.capi, "repro.graphblas.capi")
        render_module(f, repro.graphblas.governor, "repro.graphblas.governor")
        render_module(f, repro.graphblas.tiled, "repro.graphblas.tiled")
        render_module(f, repro.graphblas.envutil, "repro.graphblas.envutil")
        render_module(f, repro.graphblas.faults, "repro.graphblas.faults")
        render_module(f, repro.graphblas.telemetry, "repro.graphblas.telemetry")
        render_module(f, repro.graphblas.validate, "repro.graphblas.validate")
        render_module(f, repro.obs, "repro.obs")
        render_module(f, repro.serve, "repro.serve")
        render_module(f, repro.stream, "repro.stream")
        render_module(f, repro.lagraph, "repro.lagraph")
        render_module(f, repro.pygb, "repro.pygb")
        render_module(f, repro.io, "repro.io")
        render_module(f, repro.generators, "repro.generators")
        render_module(f, repro.harness, "repro.harness")
    print(f"wrote {os.path.relpath(OUT)}")


if __name__ == "__main__":
    main()
