#!/usr/bin/env sh
# Run the fault-injection / transactional-guarantee suite.
#
# The resilience tests live in tests/resilience and carry the `resilience`
# pytest marker (applied automatically by their conftest).  They inject
# faults at every registered point (see repro.graphblas.faults.POINTS)
# into the Table-I operations and the LAGraph algorithm suite, then prove
# that operands are bit-identical, still validate, and that a retry
# matches the dense reference oracle.
#
# Usage:  scripts/run_resilience.sh [extra pytest args]
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python -m pytest -m resilience tests/resilience -q "$@"
