#!/usr/bin/env python3
"""Differential cross-check: run LAGraph algorithms with runtime verification.

Executes BFS, SSSP (Bellman-Ford), and triangle counting on an RMAT graph
under the ``differential`` kernel backend: every Table-I operation whose
dense replay fits the verification budget is re-executed on the
spec-literal reference engine and compared; oversized operations are
executed on the optimized engine only and reported as skipped.

The exit code is non-zero iff any divergence was observed (a divergence
also raises immediately, pinpointing the first diverging operation).

Run:  python scripts/run_differential_check.py --scale 14
      python scripts/run_differential_check.py --scale 10 --budget $((1<<24))
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.generators import rmat_graph
from repro.graphblas.backends import backend
from repro.graphblas.backends.differential import DEFAULT_BUDGET, DifferentialBackend
from repro.graphblas.errors import BackendDivergence, BudgetExceeded
from repro.lagraph import bfs_level, sssp, triangle_count


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14,
                    help="RMAT scale: 2**scale vertices (default 14)")
    ap.add_argument("--edge-factor", type=int, default=8)
    ap.add_argument("--budget", type=int, default=None,
                    help=f"verification budget in dense cells "
                         f"(default GRAPHBLAS_DIFF_BUDGET or {DEFAULT_BUDGET})")
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--strict", action="store_true",
                    help="fail (exit 1) instead of skipping operations whose "
                         "dense replay exceeds the verification budget")
    args = ap.parse_args(argv)

    print(f"generating RMAT scale={args.scale} "
          f"({1 << args.scale} vertices, edge factor {args.edge_factor})")
    directed = rmat_graph(args.scale, args.edge_factor, seed=args.seed)
    weighted = rmat_graph(args.scale, args.edge_factor, weighted=True,
                          seed=args.seed + 1)
    undirected = rmat_graph(args.scale, args.edge_factor, kind="undirected",
                            seed=args.seed + 2)

    be = DifferentialBackend(budget=args.budget, strict=args.strict)
    print(f"verification budget: {be.budget} dense cells"
          + (" (strict)" if args.strict else ""))

    workloads = [
        ("bfs_level", lambda: bfs_level(0, directed)),
        ("sssp (bellman-ford)", lambda: sssp(0, weighted, method="bellman-ford")),
        ("triangle_count", lambda: triangle_count(undirected)),
    ]
    failed = False
    for name, fn in workloads:
        before = dict(be.stats)
        t0 = time.perf_counter()
        try:
            with backend(be):
                fn()
        except BackendDivergence as exc:
            failed = True
            print(f"  {name}: DIVERGENCE — {exc}")
            continue
        except BudgetExceeded as exc:
            failed = True
            print(f"  {name}: OVER BUDGET (strict) — {exc}")
            continue
        dt = time.perf_counter() - t0
        v = be.stats["verified"] - before["verified"]
        s = be.stats["skipped"] - before["skipped"]
        print(f"  {name}: {v} ops verified, {s} skipped (over budget) "
              f"[{dt:.2f}s]")

    st = be.stats
    print(f"total: {st['verified']} verified, {st['skipped']} skipped, "
          f"{st['divergences']} divergences")
    if st["verified"] == 0 and not failed:
        print("warning: budget skipped every operation — nothing was verified")
    return 1 if failed or st["divergences"] else 0


if __name__ == "__main__":
    sys.exit(main())
