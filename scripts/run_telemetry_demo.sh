#!/usr/bin/env sh
# Kernel-telemetry demo: BFS + PageRank on an RMAT graph with the burble
# stream on (SuiteSparse GxB_BURBLE-style), then a Chrome trace written to
# /tmp/repro_trace.json (open in chrome://tracing or ui.perfetto.dev).
#
# The burble shows every engine decision as it happens — push/pull
# direction per BFS level with the frontier sparsity behind the switch,
# SpGEMM method selection, zombie/pending assembly — and the trace holds
# the same events on a timeline.
#
# Usage:  scripts/run_telemetry_demo.sh [--scale N] [-o trace.json]
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} exec python scripts/export_trace.py \
    --demo -o "${TRACE_OUT:-/tmp/repro_trace.json}" "$@"
