#!/usr/bin/env python3
"""Export kernel telemetry as Chrome ``trace_event`` JSON.

Two modes:

* ``export_trace.py snapshot.json [-o trace.json]`` — convert a telemetry
  snapshot that was saved with events included (``snapshot(include_events=
  True)``, or a ``<bench>.telemetry.json`` written by ``pytest benchmarks
  --telemetry`` after setting ``include_events``) into a trace file.
* ``export_trace.py --demo [-o trace.json] [--scale N]`` — run BFS +
  PageRank on an RMAT graph with the burble on, print the burble stream,
  and write the captured trace.

The output loads in ``chrome://tracing`` (or https://ui.perfetto.dev):
Table-I operations and algorithm spans appear as duration slices, engine
decisions (push/pull direction, SpGEMM method, assembly) as instant events.

Run:  python scripts/export_trace.py --demo -o /tmp/trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.graphblas import telemetry


def convert(snapshot_path: str, out_path: str) -> int:
    """Snapshot JSON (with an ``events`` list) -> Chrome trace JSON."""
    with open(snapshot_path, "r", encoding="utf-8") as f:
        data = json.load(f)
    # accept both a bare snapshot and the benchmark {"bench", "telemetry"} wrapper
    snap = data.get("telemetry", data)
    events = snap.get("events")
    if events is None:
        print(
            f"error: {snapshot_path} holds no 'events' list — save the "
            "snapshot with include_events=True to make it traceable",
            file=sys.stderr,
        )
        return 2
    trace = {
        "traceEvents": telemetry.chrome_trace_events(events),
        "displayTimeUnit": "ms",
    }
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(trace, f)
    print(f"wrote {len(events)} events to {out_path}")
    return 0


def demo(out_path: str, scale: int) -> int:
    """BFS + PageRank on RMAT with the burble on; write the trace."""
    from repro.generators import rmat_graph
    from repro.lagraph import bfs_level, pagerank

    print(f"# generating RMAT scale {scale} (n={1 << scale}) ...")
    graph = rmat_graph(scale, 8, seed=42, kind="directed")
    print(f"# n={graph.n} edges={graph.nedges}")

    with telemetry.collect(burble=True) as col:
        bfs_level(0, graph)
        pagerank(graph, max_iters=10)
        snap = col.snapshot()
        col.write_chrome_trace(out_path)

    print("\n# snapshot summary")
    for name, st in snap["ops"].items():
        print(f"#   {name:12s} calls={st['calls']:<6d} seconds={st['seconds']:.4f}")
    for kind, count in snap["decisions"].items():
        print(f"#   decision {kind}: {count}")
    print(f"# wrote Chrome trace to {out_path} (open in chrome://tracing)")
    return 0


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("snapshot", nargs="?", help="telemetry snapshot JSON to convert")
    p.add_argument("-o", "--out", default="trace.json", help="output trace path")
    p.add_argument("--demo", action="store_true", help="run the BFS/PageRank demo")
    p.add_argument("--scale", type=int, default=12, help="demo RMAT scale")
    args = p.parse_args(argv)
    if args.demo:
        return demo(args.out, args.scale)
    if not args.snapshot:
        p.error("either a snapshot path or --demo is required")
    return convert(args.snapshot, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
