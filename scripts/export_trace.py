#!/usr/bin/env python3
"""Export kernel telemetry as Chrome ``trace_event`` JSON.

Two modes:

* ``export_trace.py snapshot.json [-o trace.json]`` — convert saved
  telemetry into a trace file.  The input may be a single snapshot that
  was saved with events included (``snapshot(include_events=True)``, or a
  ``<bench>.telemetry.json`` written by ``pytest benchmarks
  --telemetry``), a JSON **list** of such snapshots (one per thread), or
  a ``{"threads": [...]}`` wrapper.  Multi-thread inputs are merged onto
  one timeline with one track per thread (each snapshot carries its
  ``tid`` and ``perf_counter`` origin), instead of flattening every
  thread's events onto a single overlapping row.
* ``export_trace.py --demo [-o trace.json] [--scale N] [--threads T]`` —
  run BFS + PageRank on an RMAT graph and write the captured trace; with
  ``--threads`` > 1 the algorithms run concurrently, one collector per
  worker thread, exercising the merge path.

The output loads in ``chrome://tracing`` (or https://ui.perfetto.dev):
Table-I operations and algorithm spans appear as duration slices, engine
decisions (push/pull direction, SpGEMM method, assembly) as instant
events.

Run:  python scripts/export_trace.py --demo -o /tmp/trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.graphblas import telemetry


def _sources(data) -> list[dict] | None:
    """Normalize input JSON to a list of event-bearing snapshot dicts."""
    if isinstance(data, list):
        snaps = data
    elif isinstance(data, dict) and isinstance(data.get("threads"), list):
        snaps = data["threads"]
    else:
        # a bare snapshot or the benchmark {"bench", "telemetry"} wrapper
        snaps = [data.get("telemetry", data) if isinstance(data, dict) else data]
    out = []
    for snap in snaps:
        if not isinstance(snap, dict) or snap.get("events") is None:
            return None
        out.append(snap)
    return out


def convert(snapshot_path: str, out_path: str) -> int:
    """Snapshot JSON (with ``events``) -> Chrome trace JSON."""
    with open(snapshot_path, "r", encoding="utf-8") as f:
        data = json.load(f)
    sources = _sources(data)
    if sources is None:
        print(
            f"error: {snapshot_path} holds no 'events' list — save the "
            "snapshot with include_events=True to make it traceable",
            file=sys.stderr,
        )
        return 2
    trace = telemetry.chrome_trace_merged(sources)
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(trace, f)
    total = sum(len(s["events"]) for s in sources)
    print(f"wrote {total} events from {len(sources)} thread(s) to {out_path}")
    return 0


def demo(out_path: str, scale: int, threads: int) -> int:
    """BFS + PageRank on RMAT; write the (optionally multi-thread) trace."""
    from repro.generators import rmat_graph
    from repro.lagraph import bfs_level, pagerank

    print(f"# generating RMAT scale {scale} (n={1 << scale}) ...")
    graph = rmat_graph(scale, 8, seed=42, kind="directed")
    print(f"# n={graph.n} edges={graph.nedges}")

    def workload(source: int):
        bfs_level(source % graph.n, graph)
        pagerank(graph, max_iters=10)

    if threads <= 1:
        with telemetry.collect(burble=True) as col:
            workload(0)
            snap = col.snapshot()
            trace = telemetry.chrome_trace_merged([col])
    else:
        import threading

        snaps: list[dict] = []
        lock = threading.Lock()

        def worker(i: int):
            with telemetry.collect() as col:
                workload(i)
                with lock:
                    snaps.append(col.snapshot(include_events=True))

        ts = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        snap = snaps[0]
        trace = telemetry.chrome_trace_merged(snaps)

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(trace, f)

    print("\n# snapshot summary" + (f" (thread 1 of {threads})" if threads > 1 else ""))
    for name, st in snap["ops"].items():
        print(f"#   {name:12s} calls={st['calls']:<6d} seconds={st['seconds']:.4f}")
    for kind, count in snap["decisions"].items():
        print(f"#   decision {kind}: {count}")
    tids = {ev["tid"] for ev in trace["traceEvents"]}
    print(f"# wrote Chrome trace ({len(tids)} track(s)) to {out_path} "
          "(open in chrome://tracing)")
    return 0


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("snapshot", nargs="?", help="telemetry snapshot JSON to convert")
    p.add_argument("-o", "--out", default="trace.json", help="output trace path")
    p.add_argument("--demo", action="store_true", help="run the BFS/PageRank demo")
    p.add_argument("--scale", type=int, default=12, help="demo RMAT scale")
    p.add_argument("--threads", type=int, default=1,
                   help="demo worker threads (one trace track each)")
    args = p.parse_args(argv)
    if args.demo:
        return demo(args.out, args.scale, max(args.threads, 1))
    if not args.snapshot:
        p.error("either a snapshot path or --demo is required")
    return convert(args.snapshot, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
